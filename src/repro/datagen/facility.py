"""Static facility model: racks, nodes, CPUs, and their datasets.

Provides the two static data sources of the case studies:

- the **node/rack layout** ("provided by system administrators",
  §7.1) — which nodes reside on which racks;
- the **CPU specifications** ("collected directly from
  /proc/cpuinfo", §7.1) — including the per-CPU base frequency the
  active-frequency derivation needs. A tiny /proc/cpuinfo-format
  renderer/parser is included so the wrapper path from the paper (a
  Linux device file → tabular data) is exercised for real.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class FacilityConfig:
    """Shape of the simulated cluster (Cab-like defaults, scaled down)."""

    num_racks: int = 20
    nodes_per_rack: int = 8
    sockets_per_node: int = 2
    cores_per_socket: int = 8
    base_frequency_ghz: float = 3.2
    cpu_model: str = "Intel(R) Xeon(R) CPU E5-2667 v3 @ 3.20GHz"
    seed: int = 7

    @property
    def num_nodes(self) -> int:
        return self.num_racks * self.nodes_per_rack

    @property
    def cpus_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket


class Facility:
    """The cluster: deterministic given its config."""

    #: sensor positions on a rack (paper: top, middle, bottom of both
    #: the hot and cold aisles — six sensors per rack)
    RACK_LOCATIONS = ("top", "middle", "bottom")
    AISLES = ("hot", "cold")

    def __init__(self, config: FacilityConfig = FacilityConfig()) -> None:
        self.config = config
        # Small deterministic per-CPU frequency binning variation, as a
        # real spec sheet would show.
        rng = random.Random(config.seed)
        self._cpu_base_freq: Dict[int, float] = {}
        for node in self.nodes():
            step = rng.choice((0.0, 0.0, 0.1))
            self._cpu_base_freq[node] = config.base_frequency_ghz - step

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def racks(self) -> List[int]:
        return list(range(self.config.num_racks))

    def nodes(self) -> List[int]:
        return list(range(self.config.num_nodes))

    def rack_of(self, node: int) -> int:
        return node // self.config.nodes_per_rack

    def nodes_in_rack(self, rack: int) -> List[int]:
        start = rack * self.config.nodes_per_rack
        return list(range(start, start + self.config.nodes_per_rack))

    def cpus(self) -> List[int]:
        return list(range(self.config.cpus_per_node))

    def socket_of(self, cpu: int) -> int:
        return cpu // self.config.cores_per_socket

    def base_frequency(self, node: int) -> float:
        """Rated frequency (GHz) for every CPU of ``node``."""
        return self._cpu_base_freq[node]

    # ------------------------------------------------------------------
    # static datasets
    # ------------------------------------------------------------------

    def node_layout_rows(self) -> List[Dict[str, Any]]:
        """The administrators' node→rack table."""
        return [
            {"node": n, "rack": self.rack_of(n)} for n in self.nodes()
        ]

    def cpu_spec_rows(self) -> List[Dict[str, Any]]:
        """Per-(node, cpu) specification rows, as parsed from
        /proc/cpuinfo on every node."""
        out = []
        for node in self.nodes():
            for cpu in self.cpus():
                out.append(
                    {
                        "nodeid": node,
                        "cpuid": cpu,
                        "socket": self.socket_of(cpu),
                        "base_frequency": self.base_frequency(node),
                    }
                )
        return out

    # ------------------------------------------------------------------
    # /proc/cpuinfo round trip
    # ------------------------------------------------------------------

    def render_cpuinfo(self, node: int) -> str:
        """The node's /proc/cpuinfo content (abbreviated but faithful)."""
        blocks = []
        for cpu in self.cpus():
            blocks.append(
                "\n".join(
                    [
                        f"processor\t: {cpu}",
                        f"model name\t: {self.config.cpu_model}",
                        f"cpu MHz\t\t: {self.base_frequency(node) * 1000.0:.3f}",
                        f"physical id\t: {self.socket_of(cpu)}",
                        f"cpu cores\t: {self.config.cores_per_socket}",
                    ]
                )
            )
        return "\n\n".join(blocks) + "\n"

    @staticmethod
    def parse_cpuinfo(node: int, text: str) -> List[Dict[str, Any]]:
        """Parse /proc/cpuinfo text back into CPU-spec rows."""
        rows: List[Dict[str, Any]] = []
        current: Dict[str, str] = {}
        blocks = [b for b in text.split("\n\n") if b.strip()]
        for block in blocks:
            current = {}
            for line in block.splitlines():
                if ":" not in line:
                    continue
                key, _, val = line.partition(":")
                current[key.strip()] = val.strip()
            if "processor" not in current:
                continue
            rows.append(
                {
                    "nodeid": node,
                    "cpuid": int(current["processor"]),
                    "socket": int(current.get("physical id", 0)),
                    "base_frequency": float(current["cpu MHz"]) / 1000.0,
                }
            )
        return rows
