#!/usr/bin/env python3
"""Case study 2 (paper §7.3): CPU frequency throttling vs node power.

Simulates the second dedicated-access-time session — per-CPU PAPI
counters (instructions, APERF, MPERF) every few seconds, per-socket
IPMI motherboard data (memory traffic, power, thermal margins), and
the static /proc/cpuinfo-derived CPU specifications — while three
mg.C runs and three prime95 runs execute on the instrumented node.

Asking for *active CPU frequency* plus counter *rates* makes the
engine derive the Figure 7 pipeline: turn cumulative counters into
reset-safe rates, join the CPU specs to get each CPU's rated
frequency, compute active frequency as (ΔAPERF/ΔMPERF)×rated, and
relate the CPU-level and node-level streams. The derived data shows
the paper's Figure 6 story: mg.C runs memory-bound at full clock with
a low instruction rate; prime95 retires instructions furiously and
gets aggressively throttled.

Run: python examples/cpu_throttling.py
"""

from repro import ScrubJaySession, TuningProfile
from repro.datagen import generate_dat2


def window_mean(rows, field, start, end):
    vals = [r[field] for r in rows
            if field in r and start <= r["time"].epoch < end]
    return sum(vals) / len(vals) if vals else float("nan")


def main() -> None:
    print("simulating DAT 2: 3× mg.C then 3× prime95 on one node...")
    dat = generate_dat2(run_duration=400.0, gap=100.0,
                        papi_period=3.0, ipmi_period=4.0)

    # counters arrive every ~3 s, so align streams within an 8 s window
    with ScrubJaySession(
        TuningProfile(interpolation_window=8.0)
    ) as sj:
        dat.register(sj)
        print(f"registered datasets: {', '.join(sorted(sj.schemas()))}\n")

        plan = (
            sj.query()
            .across("cpus")
            .values("active frequency", "instructions per time",
                    "memory reads per time", "memory writes per time",
                    "power", "temperature")
            .plan()
        )
        print("derivation sequence (the paper's Figure 7):")
        print(plan.describe())

        rows = sj.execute(plan).collect()
        rated = dat.facility.base_frequency(0)
        print(f"\nderived {len(rows)} rows; rated frequency "
              f"{rated:.2f} GHz\n")

        print(f"{'run':>4} {'workload':>9} {'freq GHz':>9} "
              f"{'instr G/s':>10} {'memR M/s':>9} {'power W':>8} "
              f"{'margin C':>9}")
        for i, job in enumerate(
            sorted(dat.scheduler.jobs, key=lambda j: j.start), 1
        ):
            s, e = job.start + 120.0, job.end  # settled window
            print(
                f"{i:>4} {job.workload.name:>9} "
                f"{window_mean(rows, 'active_frequency', s, e):>9.2f} "
                f"{window_mean(rows, 'instructions_rate', s, e) / 1e9:>10.2f} "
                f"{window_mean(rows, 'mem_reads_rate', s, e) / 1e6:>9.0f} "
                f"{window_mean(rows, 'power', s, e):>8.0f} "
                f"{window_mean(rows, 'thermal_margin', s, e):>9.1f}"
            )

        print(
            "\nreading the table the paper's way: mg.C holds the rated "
            "clock\nwith few instructions retired (memory-bound), while "
            "prime95 runs\nhot — triple the instruction rate, ~30% "
            "frequency loss to\nthrottling, higher socket power, and "
            "thermal margins near the\ntrip point."
        )


if __name__ == "__main__":
    main()
