"""Property-based tests: RDD ops agree with sequential oracles for any
input, partition count, and executor."""

from collections import Counter, defaultdict

from hypothesis import given, settings, strategies as st

from repro.rdd import SJContext

# one shared serial context: cheap, deterministic
_CTX = SJContext(executor="serial")

ints = st.lists(st.integers(-1000, 1000), max_size=200)
parts = st.integers(1, 9)


@given(ints, parts)
def test_map_matches_list_comprehension(data, n):
    r = _CTX.parallelize(data, n).map(lambda x: x * 3 - 1)
    assert r.collect() == [x * 3 - 1 for x in data]


@given(ints, parts)
def test_filter_matches(data, n)  :
    r = _CTX.parallelize(data, n).filter(lambda x: x % 3 == 0)
    assert r.collect() == [x for x in data if x % 3 == 0]


@given(ints, parts)
def test_flatMap_matches(data, n):
    r = _CTX.parallelize(data, n).flatMap(lambda x: [x, -x])
    assert r.collect() == [y for x in data for y in (x, -x)]


@given(ints, parts)
def test_count_and_sum(data, n):
    r = _CTX.parallelize(data, n)
    assert r.count() == len(data)
    assert r.sum() == sum(data)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(-50, 50)),
                max_size=150), parts, parts)
def test_reduceByKey_matches_oracle(pairs, n, out_n):
    r = _CTX.parallelize(pairs, n).reduceByKey(lambda a, b: a + b, out_n)
    want = defaultdict(int)
    for k, v in pairs:
        want[k] += v
    assert dict(r.collect()) == dict(want)


@given(st.lists(st.tuples(st.integers(0, 10), st.text(max_size=4)),
                max_size=100), parts)
def test_groupByKey_matches_oracle(pairs, n):
    r = _CTX.parallelize(pairs, n).groupByKey()
    want = defaultdict(list)
    for k, v in pairs:
        want[k].append(v)
    got = {k: sorted(v) for k, v in r.collect()}
    assert got == {k: sorted(v) for k, v in want.items()}


@given(st.lists(st.tuples(st.integers(0, 8), st.integers()), max_size=60),
       st.lists(st.tuples(st.integers(0, 8), st.integers()), max_size=60),
       parts)
def test_join_matches_nested_loop(a, b, n):
    got = Counter(
        _CTX.parallelize(a, n).join(_CTX.parallelize(b, n)).collect()
    )
    want = Counter(
        (ka, (va, vb)) for ka, va in a for kb, vb in b if ka == kb
    )
    assert got == want


@given(ints, parts)
def test_distinct_matches_set(data, n):
    r = _CTX.parallelize(data, n).distinct()
    assert sorted(r.collect()) == sorted(set(data))


@given(ints, parts, st.booleans())
def test_sortBy_matches_sorted(data, n, ascending):
    r = _CTX.parallelize(data, n).sortBy(lambda x: x, ascending=ascending)
    assert r.collect() == sorted(data, reverse=not ascending)


@given(ints, parts, parts)
def test_repartition_preserves_multiset(data, n, m):
    r = _CTX.parallelize(data, n).repartition(m)
    assert Counter(r.collect()) == Counter(data)
    assert r.getNumPartitions() == m


@given(ints, parts)
@settings(max_examples=25)
def test_union_with_self_doubles(data, n):
    r = _CTX.parallelize(data, n)
    assert Counter(r.union(r).collect()) == Counter(data + data)
