"""Unit tests for the span/tracer core."""

from __future__ import annotations

import threading

import pytest

from repro.obs import NOOP_SPAN, NoopSpan, Span, Tracer


def test_nested_spans_build_a_tree():
    tr = Tracer()
    with tr.span("outer", kind="query") as outer:
        with tr.span("inner", kind="solve") as inner:
            inner.add("things", 3)
        with tr.span("inner2"):
            pass
    assert [c.name for c in outer.children] == ["inner", "inner2"]
    assert outer.children[0].counters == {"things": 3}
    assert tr.roots() == [outer]
    assert tr.last_root() is outer


def test_span_timing_and_duration():
    tr = Tracer()
    with tr.span("timed") as s:
        pass
    assert s.end is not None
    assert s.duration >= 0.0
    open_span = Span("open")
    assert open_span.duration == 0.0


def test_exception_marks_error_status():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("boom") as s:
            raise ValueError("nope")
    assert s.status == "error"
    # the span still completed and was retained as a root
    assert tr.last_root() is s
    assert s.end is not None


def test_disabled_tracer_yields_shared_noop():
    tr = Tracer(enabled=False)
    with tr.span("ignored") as s:
        assert s is NOOP_SPAN
        s.add("x")        # all mutations are no-ops
        s.set("k", "v")
        assert s.child("c") is s
    assert tr.roots() == []
    assert tr.record("late", 0.0, 1.0) is NOOP_SPAN


def test_enabled_flag_is_live():
    tr = Tracer(enabled=False)
    with tr.span("off") as off:
        pass
    tr.enabled = True
    with tr.span("on") as on:
        pass
    assert isinstance(off, NoopSpan)
    assert isinstance(on, Span)
    assert [r.name for r in tr.roots()] == ["on"]


def test_record_retroactive_under_parent_and_as_root():
    tr = Tracer()
    with tr.span("parent") as parent:
        child = tr.record("late-child", 1.0, 2.0, kind="queue")
    assert child in parent.children
    assert child.duration == 1.0
    orphan = tr.record("orphan", 0.0, 0.5)
    assert orphan in tr.roots()


def test_record_explicit_parent_wins_over_current():
    tr = Tracer()
    with tr.span("a") as a:
        with tr.span("b"):
            s = tr.record("r", 0.0, 1.0, parent=a)
    assert s in a.children
    assert all(c.name != "r" for c in a.children[0].children)


def test_thread_local_stacks_do_not_splice():
    tr = Tracer()
    ready = threading.Barrier(2)

    def worker(name):
        ready.wait()
        with tr.span(name):
            with tr.span(f"{name}-inner"):
                pass

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    roots = tr.roots()
    assert sorted(r.name for r in roots) == ["t0", "t1"]
    for r in roots:
        assert [c.name for c in r.children] == [f"{r.name}-inner"]


def test_max_roots_bounds_retention():
    tr = Tracer(max_roots=3)
    for i in range(10):
        with tr.span(f"s{i}"):
            pass
    assert [r.name for r in tr.roots()] == ["s7", "s8", "s9"]
    tr.clear()
    assert tr.roots() == []


def test_find_and_walk():
    root = Span("root")
    a = root.child("a", kind="stage")
    b = a.child("b", kind="task")
    assert root.find("b") is b
    assert root.find("missing") is None
    assert [s.name for s in root.walk()] == ["root", "a", "b"]


def test_to_dict_round_trips_via_json():
    import json

    tr = Tracer()
    with tr.span("q", kind="query", tenant="t1") as q:
        q.add("rows", 5)
        with tr.span("s", kind="stage"):
            pass
    blob = json.loads(json.dumps(q.to_dict()))
    assert blob["name"] == "q"
    assert blob["attrs"] == {"tenant": "t1"}
    assert blob["counters"] == {"rows": 5}
    assert [c["name"] for c in blob["children"]] == ["s"]
