"""End-to-end tracing: span-tree shape across executors, EXPLAIN
ANALYZE row counts, and no-op-tracer result equivalence."""

from __future__ import annotations

import os

import pytest

from repro import Query, ScrubJaySession, Tracer, TuningProfile
from tests.conftest import (
    JOBS_SCHEMA,
    LAYOUT_SCHEMA,
    TEMPS_SCHEMA,
    jobs_rows,
    layout_rows,
    temps_rows,
)

HEAT_QUERY = Query.of(["racks"], ["heat"])


def _traced_session(executor: str) -> ScrubJaySession:
    sj = ScrubJaySession(
        TuningProfile(executor_kind=executor, num_workers=2),
        tracer=Tracer(),
    )
    sj.register_rows(jobs_rows(), JOBS_SCHEMA, "job_queue_log",
                     num_partitions=2)
    sj.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout",
                     num_partitions=2)
    sj.register_rows(temps_rows(), TEMPS_SCHEMA, "rack_temperatures",
                     num_partitions=2)
    return sj


def _shape(root, kinds=("query", "solve", "plan-node", "stage")):
    return [
        (s.kind, s.name) for s in root.walk() if s.kind in kinds
    ]


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_trace_tree_shape_is_executor_independent(executor):
    with _traced_session("serial") as ref, _traced_session(executor) as sj:
        ref.explain(HEAT_QUERY, analyze=True)
        sj.explain(HEAT_QUERY, analyze=True)
        ref_root = ref.ctx.tracer.last_root()
        root = sj.ctx.tracer.last_root()

        assert root.name == "explain-analyze"
        assert _shape(root) == _shape(ref_root)

        # every stage carries task spans, and the per-stage task
        # counts agree with the serial reference
        def stage_tasks(r):
            return [
                (s.name, sorted(c.name for c in s.children
                                if c.kind == "task"))
                for s in r.walk() if s.kind == "stage"
            ]

        assert stage_tasks(root) == stage_tasks(ref_root)

        tasks = [s for s in root.walk() if s.kind == "task"]
        assert tasks
        for t in tasks:
            assert "rows_out" in t.counters
            assert "worker" in t.attrs


def test_process_tasks_report_worker_pids():
    with _traced_session("processes") as sj:
        sj.explain(HEAT_QUERY, analyze=True)
        root = sj.ctx.tracer.last_root()
        workers = {
            t.attrs["worker"]
            for t in root.walk() if t.kind == "task"
        }
        assert workers
        assert os.getpid() not in workers


def test_explain_analyze_row_counts_match_execution():
    with _traced_session("serial") as sj:
        text = sj.explain(HEAT_QUERY, analyze=True)
        root = sj.ctx.tracer.last_root()
        executed = len(sj.ask(HEAT_QUERY).collect())

        # the top-level plan node is the final step of the plan: its
        # measured output is exactly what execution returns
        top = [c for c in root.children if c.kind == "plan-node"]
        assert len(top) == 1
        assert top[0].counters["rows_out"] == executed
        # and every plan node measured an output row count
        for node in root.walk():
            if node.kind == "plan-node":
                assert "rows_out" in node.counters
        assert f"rows={executed}" in text
        assert text.startswith("EXPLAIN ANALYZE")
        assert "solve:" in text


def test_explain_analyze_restores_tracer_state():
    with _traced_session("serial") as sj:
        sj.ctx.tracer.enabled = False
        sj.explain(HEAT_QUERY, analyze=True)
        assert sj.ctx.tracer.enabled is False
        # the analyze run itself was traced
        assert sj.ctx.tracer.last_root().name == "explain-analyze"


def test_noop_tracer_results_identical():
    with _traced_session("serial") as traced, ScrubJaySession() as plain:
        plain.register_rows(jobs_rows(), JOBS_SCHEMA, "job_queue_log",
                            num_partitions=2)
        plain.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout",
                            num_partitions=2)
        plain.register_rows(temps_rows(), TEMPS_SCHEMA,
                            "rack_temperatures", num_partitions=2)
        a = traced.ask(HEAT_QUERY)
        b = plain.ask(HEAT_QUERY)
        assert sorted(map(repr, a.collect())) == sorted(
            map(repr, b.collect())
        )
        assert a.plan.operations() == b.plan.operations()
        # default sessions trace nothing and return trace-less answers
        assert b.trace is None
        assert plain.ctx.tracer.roots() == []
        assert a.trace is not None


def test_ask_trace_covers_solve_and_execute():
    with _traced_session("serial") as sj:
        answer = sj.ask(HEAT_QUERY)
        root = answer.trace
        assert root.name == "query"
        assert root.find("solve") is not None
        plan_nodes = [s for s in root.walk() if s.kind == "plan-node"]
        assert plan_nodes
        # execute() (the two-step spelling) wraps the run in its own span
        replay = sj.execute(answer.plan)
        assert replay.trace.name == "execute"


def test_solve_counters_published():
    # the two-source query forces the engine through subset
    # combination, so every search counter moves
    q = Query.of(["jobs", "racks"], ["applications", "heat"])
    with _traced_session("serial") as sj:
        sj.plan(q)
        m = sj.ctx.metrics
        assert m.counter("engine.solves") == 1
        assert m.counter("engine.solve.candidates_explored") > 0
        assert m.counter("engine.solve.subsets_examined") > 0
        assert sj.engine.last_solve_stats["candidates_explored"] > 0
        assert m.gauge("engine.solve.max_subset_size") >= 1
