"""Vectorized kernels over :class:`~repro.columnar.batch.ColumnBatch`.

Every kernel is a batch-level re-statement of an existing row-path
operator, and each one is bound by the same contract the adaptive
execution layer already enforces for physical plan choices: *identical
results* to its row counterpart, edge cases included. The deliberate
mirrors:

- masks reproduce the exact semantics of
  :meth:`repro.sources.predicate.EqTerm.matches` /
  :meth:`~repro.sources.predicate.RangeTerm.matches` — a missing
  field is ``None`` for equality and an automatic fail for ranges,
  NaN passes every range bound (both IEEE comparisons are False),
  unorderable values fail ranges via the same TypeError rule;
- ``filter_range_mask`` mirrors ``FilterRange.keep`` instead, which
  (unlike ``RangeTerm``) lets a TypeError propagate;
- dictionary-encoded columns evaluate each predicate once per
  *distinct* value and map the verdicts through the codes — the
  payoff of dictionary encoding.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.columnar.batch import Column, ColumnBatch

__all__ = [
    "predicate_mask",
    "apply_predicate",
    "filter_equals_mask",
    "filter_range_mask",
    "select_fields",
    "rename_field",
    "build_hash_index",
    "hash_join_probe",
    "group_aggregate_partial",
]


# ----------------------------------------------------------------------
# predicate masks (pushdown terms)
# ----------------------------------------------------------------------


def _per_distinct(col: Column, verdict: Callable[[Any], bool]) -> List[int]:
    """Evaluate a per-value verdict once per dictionary entry, then
    broadcast through the codes."""
    table = [1 if verdict(v) else 0 for v in col.dictionary]
    data, validity = col.data, col.validity
    null = 1 if verdict(None) else 0
    return [table[c] if v else null for c, v in zip(data, validity)]


def _term_mask(batch: ColumnBatch, term: Any) -> List[int]:
    """Row-exact mask for one EqTerm/RangeTerm: mirrors
    ``term.matches(row)`` where a null slot means the row lacks the
    field."""
    col = batch.cols.get(term.column)
    op = getattr(term, "op", None)
    if col is None:
        # every row misses the column: Eq matches only value None,
        # Range never matches
        hit = 1 if (op == "eq" and term.value is None) else 0
        return [hit] * batch.num_rows
    if op == "eq":
        value = term.value
        if col.kind == "dict":
            return _per_distinct(col, lambda v: v == value)
        return [
            1 if ((x if v else None) == value) else 0
            for x, v in zip(col.data, col.validity)
        ]
    if op == "range":
        low, high = term.low, term.high
        if col.kind in ("f", "q"):
            # numeric fast path; NaN: both comparisons False → passes
            return [
                1 if (
                    v
                    and not (low is not None and x < low)
                    and not (high is not None and x >= high)
                ) else 0
                for x, v in zip(col.data, col.validity)
            ]
        if col.kind == "dict":
            return _per_distinct(
                col,
                lambda v: v is not None
                and term.matches({term.column: v}),
            )
        column = term.column
        return [
            1 if (v and term.matches({column: x})) else 0
            for x, v in zip(col.data, col.validity)
        ]
    # unknown term type: fall back to the row truth per element
    column = term.column
    return [
        1 if term.matches({column: x} if v else {}) else 0
        for x, v in zip(batch.column_values(term.column), col.validity)
    ]


def predicate_mask(batch: ColumnBatch, predicate: Any) -> List[int]:
    """Conjunction mask for a ColumnPredicate (1 = row matches)."""
    mask: Optional[List[int]] = None
    for term in predicate.terms:
        tm = _term_mask(batch, term)
        if mask is None:
            mask = tm
        else:
            mask = [a & b for a, b in zip(mask, tm)]
    return mask if mask is not None else [1] * batch.num_rows


def apply_predicate(batch: ColumnBatch, predicate: Any) -> ColumnBatch:
    if predicate is None or not getattr(predicate, "terms", None):
        return batch
    return batch.filter(predicate_mask(batch, predicate))


# ----------------------------------------------------------------------
# filter / project / rename transformations
# ----------------------------------------------------------------------


def filter_equals_mask(
    batch: ColumnBatch, field: str, value: Any
) -> List[int]:
    """``row.get(field) == value`` per row (FilterEquals semantics)."""
    col = batch.cols.get(field)
    if col is None:
        return [1 if (None == value) else 0] * batch.num_rows  # noqa: E711
    if col.kind == "dict":
        return _per_distinct(col, lambda v: v == value)
    return [
        1 if ((x if v else None) == value) else 0
        for x, v in zip(col.data, col.validity)
    ]


def filter_range_mask(
    batch: ColumnBatch,
    field: str,
    low: Optional[float],
    high: Optional[float],
) -> List[int]:
    """``FilterRange.keep`` per row: missing field fails; datetimes
    compare by ``.epoch``; a TypeError from an unorderable value
    propagates, exactly as the row path would raise it."""
    col = batch.cols.get(field)
    if col is None:
        return [0] * batch.num_rows
    if col.kind in ("f", "q"):
        return [
            1 if (
                v
                and not (low is not None and x < low)
                and not (high is not None and x >= high)
            ) else 0
            for x, v in zip(col.data, col.validity)
        ]
    out: List[int] = []
    for x, v in zip(col.data, col.validity):
        if not v:
            out.append(0)
            continue
        if col.kind == "dict":
            x = col.dictionary[x]
        epoch = getattr(x, "epoch", x)
        keep = not (low is not None and epoch < low) and not (
            high is not None and epoch >= high
        )
        out.append(1 if keep else 0)
    return out


def select_fields(batch: ColumnBatch, fields: Sequence[str]) -> ColumnBatch:
    """Projection + drop of rows left empty (SelectFields semantics:
    ``map(project).filter(bool)``)."""
    return batch.project(fields).drop_all_null_rows()


def rename_field(batch: ColumnBatch, field: str, to: str) -> ColumnBatch:
    """RenameField semantics: rows missing the field keep any existing
    ``to`` value; rows holding it overwrite ``to``."""
    src = batch.cols.get(field)
    if src is None:
        return batch
    old = batch.cols.get(to)
    if old is not None:
        # per-row merge: the renamed value wins where present
        merged = [
            s if sv else (o if ov else None)
            for s, sv, o, ov in zip(
                src.values(), src.validity, old.values(), old.validity
            )
        ]
        from repro.columnar.batch import _encode_column

        col = _encode_column(
            merged, sum(1 for m in merged if m is not None)
        )
        out = {
            k: c
            for k, c in batch.cols.items()
            if k not in (field, to)
        }
        out[to] = col
        return ColumnBatch(out, batch.num_rows)
    return batch.rename(field, to)


# ----------------------------------------------------------------------
# hash join (build / probe over encoded key columns)
# ----------------------------------------------------------------------


def build_hash_index(
    batch: ColumnBatch, key_fields: Sequence[str]
) -> Dict[Tuple, List[int]]:
    """Key tuple → row indices of the build side."""
    index: Dict[Tuple, List[int]] = {}
    for i, key in enumerate(batch.key_tuples(key_fields)):
        index.setdefault(key, []).append(i)
    return index


def hash_join_probe(
    left: ColumnBatch,
    left_key_fields: Sequence[str],
    build: ColumnBatch,
    index: Dict[Tuple, List[int]],
    rename: Dict[str, str],
) -> Optional[ColumnBatch]:
    """Probe one left batch against a built right index and merge.

    Output columns are the left batch's columns plus every right
    column named in ``rename`` under its output name — the columnar
    restatement of ``out = dict(lrow); out[rename[f]] = rrow[f]``.
    Returns None when nothing matched.
    """
    keys = left.key_tuples(left_key_fields)
    if all(len(hits) == 1 for hits in index.values()):
        # unique build keys (the lookup-table case): probe via a flat
        # dict in one C-level map; when every row matches, the left
        # side needs no gather at all
        flat = {k: hits[0] for k, hits in index.items()}
        probed = list(map(flat.get, keys))
        if None in probed:
            l_idx = [i for i, j in enumerate(probed) if j is not None]
            if not l_idx:
                return None
            r_idx = list(map(probed.__getitem__, l_idx))
            out = left.take(l_idx)
        else:
            r_idx = probed
            out = left
    else:
        l_idx: List[int] = []
        r_idx: List[int] = []
        for i, key in enumerate(keys):
            hits = index.get(key)
            if hits:
                for j in hits:
                    l_idx.append(i)
                    r_idx.append(j)
        if not l_idx:
            return None
        out = left.take(l_idx)
    cols = dict(out.cols)
    for f, name in rename.items():
        col = build.cols.get(f)
        if col is not None:
            cols[name] = col.take(r_idx)
    return ColumnBatch(cols, len(r_idx))


# ----------------------------------------------------------------------
# groupby-aggregate
# ----------------------------------------------------------------------


def group_aggregate_partial(
    elements: Sequence[Any],
    group_fields: Sequence[str],
    value_field: str,
    zero: Any,
    seq: Callable[[Any, Any], Any],
) -> Dict[Tuple, Any]:
    """Per-partition partial aggregation over batches (and any stray
    rows), skipping rows missing the value or any group field — the
    exact filter of :func:`repro.analysis.aggregate.group_aggregate`.
    """
    acc: Dict[Tuple, Any] = {}
    gf = list(group_fields)
    for x in elements:
        if isinstance(x, ColumnBatch):
            vcol = x.cols.get(value_field)
            if vcol is None or not x.num_rows:
                continue
            gcols = [x.cols.get(f) for f in gf]
            if any(c is None for c in gcols):
                continue
            keys = x.key_tuples(gf)
            gvalid = [c.validity for c in gcols]
            values = vcol.values()
            vvalid = vcol.validity
            for i in range(x.num_rows):
                if not vvalid[i] or not all(v[i] for v in gvalid):
                    continue
                k = keys[i]
                acc[k] = seq(acc.get(k, zero), values[i])
        else:  # a plain row dict
            if value_field not in x or not all(f in x for f in gf):
                continue
            k = tuple(x.get(f) for f in gf)
            acc[k] = seq(acc.get(k, zero), x[value_field])
    return acc
