"""Quantity arithmetic/comparison with automatic conversion."""

import pytest

from repro.errors import UnitError
from repro.units.quantity import Quantity


def test_equality_across_units():
    assert Quantity(1.0, "minutes") == Quantity(60.0, "seconds")
    assert Quantity(0.0, "degrees Celsius") == Quantity(32.0, "degrees Fahrenheit")


def test_comparison_across_units():
    assert Quantity(30.0, "seconds") < Quantity(1.0, "minutes")
    assert Quantity(2.0, "hours") >= Quantity(120.0, "minutes")
    assert Quantity(100.0, "degrees Celsius") > Quantity(100.0, "degrees Fahrenheit")


def test_addition_converts_to_left_units():
    q = Quantity(1.0, "minutes") + Quantity(30.0, "seconds")
    assert q.unit == "minutes"
    assert q.value == pytest.approx(1.5)


def test_subtraction():
    q = Quantity(1.0, "hours") - Quantity(15.0, "minutes")
    assert q.to("minutes").value == pytest.approx(45.0)


def test_scalar_multiply_divide_negate():
    q = Quantity(10.0, "watts")
    assert (q * 3).value == 30.0
    assert (3 * q).value == 30.0
    assert (q / 2).value == 5.0
    assert (-q).value == -10.0


def test_quantity_times_quantity_rejected():
    with pytest.raises(UnitError):
        Quantity(1.0, "watts") * Quantity(2.0, "seconds")
    with pytest.raises(UnitError):
        Quantity(1.0, "watts") / Quantity(2.0, "seconds")


def test_cross_dimension_comparison_rejected():
    with pytest.raises(UnitError):
        Quantity(10.0, "seconds") < Quantity(10.0, "degrees Celsius")


def test_cross_dimension_equality_is_false():
    assert Quantity(10.0, "seconds") != Quantity(10.0, "degrees Celsius")


def test_to_round_trip():
    q = Quantity(37.5, "degrees Celsius")
    assert q.to("degrees Fahrenheit").to("degrees Celsius").value == \
        pytest.approx(37.5)


def test_unknown_unit_rejected():
    with pytest.raises(UnitError):
        Quantity(1.0, "cubits")


def test_hash_consistent_with_equality():
    a = Quantity(1.0, "minutes")
    b = Quantity(60.0, "seconds")
    assert a == b
    assert hash(a) == hash(b)


def test_repr():
    assert "minutes" in repr(Quantity(1.0, "minutes"))
