"""SQL (sqlite3) data wrapper and unwrapper.

The paper's first DAT sources — job-queue logs and OSIsoft PI sensor
feeds — are "continuously monitored and recorded in relational
databases", read through "a common data wrapper to extract column
names from their schemas and convert their rows to named tuples".
This wrapper does the same against sqlite3: column names come from
the live cursor description, values are decoded per field semantics.
"""

from __future__ import annotations

import sqlite3
import warnings
from typing import Any, Dict, List, Optional

from repro.errors import WrapperError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.wrappers.base import DataWrapper, Unwrapper
from repro.wrappers.codec import encode_value


class SQLWrapper(DataWrapper):
    """Deprecated shim over :class:`~repro.sources.sql_source.SQLSource`.

    Materializes every partition on the driver, exactly like the
    original wrapper did — use ``session.ingest().sql(...)`` for lazy,
    rowid-partitioned, pushdown-capable reads.
    """

    def __init__(
        self,
        db_path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        table: Optional[str] = None,
        query: Optional[str] = None,
        name: Optional[str] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        warnings.warn(
            "SQLWrapper is deprecated; use "
            "session.ingest().sql(db_path, schema, table=...) for a "
            "lazy, partitioned scan",
            DeprecationWarning,
            stacklevel=2,
        )
        # deferred: repro.sources imports this package's codec module
        from repro.sources.sql_source import SQLSource

        # the source performs the table-xor-query validation (its
        # SourceError subclasses WrapperError, message unchanged)
        self._source = SQLSource(
            db_path, schema, dictionary, table=table, query=query,
            name=name, num_partitions=1,
        )
        super().__init__(
            schema, dictionary, name or table or "sql", num_partitions
        )
        self.db_path = db_path
        self.table = table
        self.query = query

    def rows(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for i in range(self._source.num_partitions()):
            out.extend(self._source.read_partition(i))
        return out


class SQLUnwrapper(Unwrapper):
    """Write a dataset into a sqlite3 table (replacing it)."""

    def __init__(
        self, db_path: str, table: str, dictionary: SemanticDictionary
    ) -> None:
        self.db_path = db_path
        self.table = table
        self.dictionary = dictionary

    def save(self, dataset: ScrubJayDataset) -> str:
        fields = dataset.schema.fields()
        cols = ", ".join(f'"{f}" TEXT' for f in fields)
        placeholders = ", ".join("?" for _ in fields)
        try:
            with sqlite3.connect(self.db_path) as conn:
                conn.execute(f'DROP TABLE IF EXISTS "{self.table}"')
                conn.execute(f'CREATE TABLE "{self.table}" ({cols})')
                conn.executemany(
                    f'INSERT INTO "{self.table}" VALUES ({placeholders})',
                    (
                        tuple(
                            encode_value(
                                row.get(field),
                                dataset.schema[field],
                                self.dictionary,
                            )
                            for field in fields
                        )
                        for row in dataset.collect()
                    ),
                )
        except sqlite3.Error as exc:
            raise WrapperError(
                f"sqlite error writing {self.db_path}: {exc}"
            ) from exc
        return self.table
