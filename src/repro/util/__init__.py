"""Small shared utilities: stable hashing, JSON helpers, timers."""

from repro.util.hashing import content_hash, stable_json
from repro.util.timer import Timer

__all__ = ["content_hash", "stable_json", "Timer"]
