"""End-to-end extensibility: the separation of concerns in Figure 2.

A *system expert* registers a custom, session-local derivation; a
*performance analyst* then queries the new value dimension with no
knowledge of how it is computed — the engine discovers and applies the
expert's derivation automatically. This is the workflow that produced
DeriveHeat in the paper's §7.2, exercised here with a fresh derivation
the engine has never seen.
"""

from typing import List

import pytest

from repro import (
    DOMAIN,
    VALUE,
    Schema,
    ScrubJaySession,
    SemanticType,
)
from repro.core.derivation import Transformation
from repro.core.dictionary import SemanticDictionary
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema as _Schema, SemanticType as _ST
from repro.units.temporal import Timestamp


class DerivePowerBudgetUse(Transformation):
    """Expert-provided: fraction of a 200 W socket budget in use."""

    op_name = "derive_power_budget_use"
    BUDGET_W = 200.0

    def __init__(self) -> None:
        pass

    def applies(self, schema, dictionary) -> bool:
        return (
            len(schema.fields_for("power", VALUE)) == 1
            and "budget_use" not in schema
        )

    def derive_schema(self, schema, dictionary):
        return schema.with_field(
            "budget_use", _ST(VALUE, "power budget use", "budget fraction")
        )

    def apply(self, dataset, dictionary):
        self._check(dataset, dictionary)
        field = dataset.schema.fields_for("power", VALUE)[0]
        budget = self.BUDGET_W

        def derive(row):
            if field not in row:
                return []
            new = dict(row)
            new["budget_use"] = row[field] / budget
            return [new]

        return dataset.with_rdd(
            dataset.rdd.flatMap(derive),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
        )

    @classmethod
    def instantiations(cls, schema, dictionary) -> List["Transformation"]:
        inst = cls()
        return [inst] if inst.applies(schema, dictionary) else []


POWER_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "watts": SemanticType(VALUE, "power", "watts"),
})

LAYOUT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
})


@pytest.fixture()
def expert_session():
    sj = ScrubJaySession()
    # the expert's two contributions: vocabulary + derivation
    sj.define_dimension("power budget use", continuous=True, ordered=True)
    sj.define_unit("budget fraction", "quantity", "power budget use")
    sj.register_derivation(DerivePowerBudgetUse)
    sj.register_rows(
        [{"node": n, "time": Timestamp(float(t)), "watts": 80.0 + n * 40}
         for n in range(3) for t in range(0, 100, 10)],
        POWER_SCHEMA, "node_power",
    )
    sj.register_rows(
        [{"node": n, "rack": n // 2} for n in range(3)],
        LAYOUT_SCHEMA, "layout",
    )
    yield sj
    sj.close()


def test_engine_discovers_custom_derivation(expert_session):
    sj = expert_session
    plan = sj.query().across("compute nodes").value("power budget use").plan()
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert ops == ["derive_power_budget_use"]
    rows = sj.execute(plan).collect()
    assert rows[0]["budget_use"] == pytest.approx(rows[0]["watts"] / 200.0)


def test_custom_derivation_composes_with_builtins(expert_session):
    sj = expert_session
    # needs a combination AND the custom derivation
    plan = sj.query().across("racks").value("power budget use").plan()
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert "derive_power_budget_use" in ops
    assert "natural_join" in ops
    result = sj.execute(plan)
    assert "racks" in result.schema.domain_dimensions()
    assert result.count() > 0


def test_custom_derivation_serializes_in_session(expert_session, tmp_path):
    sj = expert_session
    plan = sj.query().across("compute nodes").value("power budget use").plan()
    path = str(tmp_path / "plan.json")
    sj.save_plan(plan, path)
    reloaded = sj.load_plan(path)  # session registry knows the op
    assert sj.execute(reloaded).count() == sj.execute(plan).count()


def test_custom_derivation_unknown_to_other_sessions(expert_session,
                                                     tmp_path):
    sj = expert_session
    plan = sj.query().across("compute nodes").value("power budget use").plan()
    path = str(tmp_path / "plan.json")
    sj.save_plan(plan, path)
    from repro.errors import PipelineError

    with ScrubJaySession() as other:
        with pytest.raises(PipelineError, match="unknown derivation"):
            other.load_plan(path)


def test_expert_dictionary_entry_required(expert_session):
    # the derived schema validates against the session dictionary only
    # because the expert defined the new dimension
    sj = expert_session
    plan = sj.query().across("compute nodes").value("power budget use").plan()
    result = sj.execute(plan)
    result.validate(sj.dictionary)
