"""The advanced type system ScrubJay uses to operate on units (§4.2).

Data semantics name the *units* of every field; this package gives
those names behaviour. It provides:

- :class:`~repro.units.registry.Dimension` — an aspect of the data
  (time, temperature, compute-node identity, …), flagged
  continuous/discrete and ordered/unordered, which determines the
  operations ScrubJay may perform (interpolate, compare, match).
- :class:`~repro.units.registry.Unit` and
  :class:`~repro.units.registry.UnitRegistry` — named units attached
  to dimensions, with linear conversions inside a dimension
  (Celsius ↔ Fahrenheit, seconds ↔ minutes) and *composed* units:
  rates (``X per Y``), lists (``list<X>``), and spans.
- :class:`~repro.units.quantity.Quantity` — a value + unit with
  checked arithmetic and conversion.
- :class:`~repro.units.temporal.Timestamp` /
  :class:`~repro.units.temporal.TimeSpan` — the time subspace types,
  including span→stamps explosion used by the *explode continuous*
  transformation.
"""

from repro.units.registry import (
    Dimension,
    Unit,
    UnitRegistry,
    default_registry,
)
from repro.units.quantity import Quantity
from repro.units.temporal import Timestamp, TimeSpan

__all__ = [
    "Dimension",
    "Unit",
    "UnitRegistry",
    "default_registry",
    "Quantity",
    "Timestamp",
    "TimeSpan",
]
