"""Machine-readable benchmark harness for the Figure 3 natural join.

Runs the natural-join benchmark twice per problem size — once with
adaptive execution on (the planner picks a broadcast-hash join for the
small lookup side) and once with the broadcast path disabled (the
classic shuffle join the paper's cluster pays for) — and writes
``benchmarks/results/BENCH_fig3.json``: the measured series, wall-clock
timings, the join strategy each run actually chose, and the full
:class:`~repro.rdd.stats.ExecutionReport` evidence.

Usage::

    PYTHONPATH=src python benchmarks/harness.py            # full series
    PYTHONPATH=src python benchmarks/harness.py --smoke    # CI gate

``--smoke`` runs the smallest size only and exits non-zero if the
adaptive path errors, produces wrong results, or the execution report
is missing its strategy decisions — the cheap CI check that the
optimizer is alive, decoupled from timing noise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_fig3.json")

# allow `python benchmarks/harness.py` without an explicit PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import ScrubJayDataset, SJContext, Tracer, default_dictionary  # noqa: E402
from repro.core.combinations import NaturalJoin  # noqa: E402
from repro.datagen.synthetic import (  # noqa: E402
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.util.benchstats import measure, summarize  # noqa: E402

ROW_COUNTS = [20_000, 40_000, 80_000]
NUM_KEYS = 1024  # the right (lookup) side: always broadcast-sized
PARTITIONS = 20

_DICT = default_dictionary()


def adaptive_timing(sample_fn, cap: int):
    """Adaptive repetition (Mittal et al.'s stopping rule, see
    :mod:`repro.util.benchstats`): keep sampling until the 95% CI is
    tight relative to the mean or ``cap`` repeats have run. A cap of
    1–2 degenerates to plain fixed repetition (smoke mode)."""
    if cap <= 2:
        return summarize([sample_fn() for _ in range(max(1, cap))])
    return measure(
        sample_fn, min_repeats=3, max_repeats=cap, rel_ci=0.05, warmup=0
    )


def run_natural_join(
    num_rows: int,
    num_keys: int = NUM_KEYS,
    partitions: int = PARTITIONS,
    broadcast_threshold: Optional[int] = None,
    repeats: int = 1,
) -> Dict[str, Any]:
    """One measured run; returns the record that lands in the JSON.

    ``broadcast_threshold=None`` leaves the adaptive defaults in place
    (mode ``"adaptive"``); ``0`` disables the broadcast path so the
    join must shuffle (mode ``"forced-shuffle"``). ``repeats`` caps
    the adaptive stopping rule; ``wall_seconds`` is the best sample
    and the full interval statistics land under ``timing`` (with
    ``ci`` bounds).
    """
    left_rows, right_rows = keyed_tables(num_rows, num_keys=num_keys)
    state: Dict[str, Any] = {
        "best": float("inf"), "count": -1, "report": {},
        "joins": [], "shuffled": 0,
    }

    def sample() -> float:
        with SJContext(
            executor="serial",
            default_parallelism=partitions,
            broadcast_threshold=broadcast_threshold,
        ) as ctx:
            left = ScrubJayDataset.from_rows(
                ctx, left_rows, KEYED_LEFT_SCHEMA, "left", partitions
            )
            right = ScrubJayDataset.from_rows(
                ctx, right_rows, KEYED_RIGHT_SCHEMA, "right", partitions
            )
            start = time.perf_counter()
            state["count"] = NaturalJoin().apply(
                left, right, _DICT
            ).count()
            elapsed = time.perf_counter() - start
            if elapsed < state["best"]:
                state["best"] = elapsed
                state["report"] = ctx.report.as_dict()
                state["joins"] = ctx.report.joins()
                state["shuffled"] = ctx.report.shuffle_volume()
        return elapsed

    timing = adaptive_timing(sample, max(1, repeats))
    joins = state["joins"]
    decision = joins[-1] if joins else None
    return {
        "mode": "adaptive" if broadcast_threshold is None
                else "forced-shuffle",
        "rows": num_rows,
        "num_keys": num_keys,
        "partitions": partitions,
        "wall_seconds": timing.best,
        "timing": timing.as_dict(),
        "output_rows": state["count"],
        "join_strategy": decision.strategy if decision else None,
        "strategy_adaptive": decision.adaptive if decision else None,
        "strategy_reason": decision.reason if decision else None,
        "shuffled_pairs": state["shuffled"],
        "report": state["report"],
    }


# Tracing must not tax the untraced path: the gate allows 5% relative
# overhead plus a small absolute slack so sub-second runs don't fail
# on scheduler jitter. Best-of-N on both sides suppresses noise.
OVERHEAD_GATE_PCT = 5.0
OVERHEAD_SLACK_S = 0.015


def run_tracer_overhead(
    num_rows: int,
    num_keys: int = NUM_KEYS,
    partitions: int = PARTITIONS,
    repeats: int = 5,
) -> Dict[str, Any]:
    """Time the fig3 natural join untraced vs with tracing enabled.

    "Untraced" is the default context (its tracer exists but is
    disabled — the no-op path every normal run takes); "traced" flips
    the tracer on, so every stage/task records spans. Returns best-of-
    ``repeats`` wall clocks and the relative overhead.
    """
    left_rows, right_rows = keyed_tables(num_rows, num_keys=num_keys)

    def one(enabled: bool):
        with SJContext(
            executor="serial",
            default_parallelism=partitions,
            tracer=Tracer(enabled=enabled),
        ) as ctx:
            left = ScrubJayDataset.from_rows(
                ctx, left_rows, KEYED_LEFT_SCHEMA, "left", partitions
            )
            right = ScrubJayDataset.from_rows(
                ctx, right_rows, KEYED_RIGHT_SCHEMA, "right", partitions
            )
            start = time.perf_counter()
            count = NaturalJoin().apply(left, right, _DICT).count()
            elapsed = time.perf_counter() - start
            spans = sum(
                1 for root in ctx.tracer.roots() for _ in root.walk()
            )
        return elapsed, count, spans

    best_untraced = best_traced = float("inf")
    count_untraced = count_traced = -1
    spans = 0
    for _ in range(max(1, repeats)):
        # alternate to spread cache/allocator drift across both sides
        elapsed, count_untraced, _ = one(False)
        best_untraced = min(best_untraced, elapsed)
        elapsed, count_traced, spans = one(True)
        best_traced = min(best_traced, elapsed)
    overhead_pct = (
        (best_traced - best_untraced) / best_untraced * 100.0
        if best_untraced > 0 else 0.0
    )
    return {
        "rows": num_rows,
        "partitions": partitions,
        "repeats": max(1, repeats),
        "untraced_seconds": best_untraced,
        "traced_seconds": best_traced,
        "overhead_pct": overhead_pct,
        "gate_pct": OVERHEAD_GATE_PCT,
        "slack_seconds": OVERHEAD_SLACK_S,
        "spans_recorded": spans,
        "output_rows_match": count_untraced == count_traced,
    }


def run_comparison(
    row_counts: Sequence[int] = ROW_COUNTS, repeats: int = 1
) -> Dict[str, Any]:
    """Adaptive vs forced-shuffle across ``row_counts``; the payload
    for ``BENCH_fig3.json``."""
    runs: List[Dict[str, Any]] = []
    speedups: Dict[str, float] = {}
    for n in row_counts:
        adaptive = run_natural_join(n, repeats=repeats)
        forced = run_natural_join(
            n, broadcast_threshold=0, repeats=repeats
        )
        runs.extend([adaptive, forced])
        if adaptive["wall_seconds"] > 0:
            speedups[str(n)] = (
                forced["wall_seconds"] / adaptive["wall_seconds"]
            )
    return {
        "figure": "BENCH_fig3",
        "benchmark": "natural_join_broadcast_vs_shuffle",
        "description": (
            "Fig 3a natural join, adaptive (broadcast-hash selected "
            "from statistics) vs forced-shuffle, serial executor; "
            "adaptive repetition (95%% CI stopping rule, cap %d), "
            "wall_seconds is the best sample and `timing.ci` the "
            "interval" % max(1, repeats)
        ),
        "row_counts": list(row_counts),
        "runs": runs,
        "speedups": speedups,
    }


def write_json(payload: Dict[str, Any], path: str = JSON_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=False)
        f.write("\n")
    return path


def check_smoke(payload: Dict[str, Any]) -> List[str]:
    """The CI gate: failures as a list of human-readable messages."""
    problems: List[str] = []
    adaptive = [r for r in payload["runs"] if r["mode"] == "adaptive"]
    forced = [r for r in payload["runs"]
              if r["mode"] == "forced-shuffle"]
    if not adaptive or not forced:
        return ["harness produced no runs"]
    for r in adaptive:
        if r["output_rows"] != r["rows"]:
            problems.append(
                f"adaptive run at {r['rows']} rows returned "
                f"{r['output_rows']} joined rows (expected {r['rows']})"
            )
        if not r["report"].get("decisions"):
            problems.append(
                f"adaptive run at {r['rows']} rows recorded no "
                f"strategy decisions in its ExecutionReport"
            )
        if r["join_strategy"] != "broadcast" or not r["strategy_adaptive"]:
            problems.append(
                f"adaptive run at {r['rows']} rows chose "
                f"{r['join_strategy']!r} (adaptive="
                f"{r['strategy_adaptive']}); expected an adaptively "
                f"selected broadcast join"
            )
    for r in forced:
        if r["output_rows"] != r["rows"]:
            problems.append(
                f"forced-shuffle run at {r['rows']} rows returned "
                f"{r['output_rows']} joined rows (expected {r['rows']})"
            )
        if r["join_strategy"] != "shuffle":
            problems.append(
                f"forced-shuffle run at {r['rows']} rows chose "
                f"{r['join_strategy']!r}; expected shuffle"
            )
    overhead = payload.get("tracer_overhead")
    if overhead is not None:
        problems.extend(check_tracer_overhead(overhead))
    return problems


def check_tracer_overhead(o: Dict[str, Any]) -> List[str]:
    """Gate the tracing tax: traced must stay within ``gate_pct`` of
    untraced (plus absolute slack), record spans, and agree on rows."""
    problems: List[str] = []
    if not o["output_rows_match"]:
        problems.append(
            "traced and untraced runs disagree on joined row counts"
        )
    if o["spans_recorded"] <= 0:
        problems.append("traced run recorded no spans")
    limit = (
        o["untraced_seconds"] * (1 + o["gate_pct"] / 100.0)
        + o["slack_seconds"]
    )
    if o["traced_seconds"] > limit:
        problems.append(
            f"tracing overhead {o['overhead_pct']:.1f}% exceeds the "
            f"{o['gate_pct']:.0f}% gate (untraced "
            f"{o['untraced_seconds']:.4f}s, traced "
            f"{o['traced_seconds']:.4f}s, limit {limit:.4f}s)"
        )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smallest size only; exit non-zero on adaptive-path "
             "errors or missing report decisions",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repeat cap per configuration (the adaptive stopping "
             "rule may finish earlier once the CI is tight)",
    )
    parser.add_argument(
        "--output", default=JSON_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        row_counts = [5_000]
        repeats = args.repeats or 1
    else:
        row_counts = ROW_COUNTS
        repeats = args.repeats or 10

    payload = run_comparison(row_counts, repeats=repeats)
    payload["smoke"] = bool(args.smoke)
    payload["tracer_overhead"] = run_tracer_overhead(
        row_counts[0], repeats=max(5, repeats)
    )
    path = write_json(payload, args.output)

    for r in payload["runs"]:
        print(
            f"{r['mode']:>14}  {r['rows']:>7} rows  "
            f"{r['wall_seconds']:.4f} s  strategy={r['join_strategy']}"
            f" adaptive={r['strategy_adaptive']}"
        )
    for n, s in payload["speedups"].items():
        print(f"speedup at {n} rows: {s:.2f}x (shuffle / adaptive)")
    o = payload["tracer_overhead"]
    print(
        f"tracer overhead at {o['rows']} rows: untraced "
        f"{o['untraced_seconds']:.4f}s, traced "
        f"{o['traced_seconds']:.4f}s ({o['overhead_pct']:+.1f}%, "
        f"{o['spans_recorded']} spans)"
    )
    print(f"wrote {path}")

    problems = check_smoke(payload)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
