"""Streaming refresh benchmark: incremental vs full replay.

The claim the streaming subsystem makes: after a small append (<= 5%
of the standing dataset), refreshing a standing-query answer through
:class:`~repro.stream.DeltaPlan` delta execution costs O(delta) — far
less than replaying the whole derivation at the new watermark. This
benchmark measures both sides on the same subscription and writes
machine-readable evidence to ``benchmarks/results/BENCH_stream.json``:

- **incremental refresh** — ``QueryService.advance`` with a ~5% batch
  of appended rows: tail + scoped cache invalidation + delta refresh
  of the standing natural-join answer;
- **full replay** — the same plan executed from scratch with every
  feed input pinned at the identical watermarks (what every refresh
  would cost without delta execution);
- **correctness** — the refreshed standing answer must be
  multiset-identical to a fresh query over the final row set, and
  every refresh must actually have taken the delta path (asserted via
  the subscription's refresh counters, not assumed).

Timing uses the shared CI-interval machinery
(:mod:`repro.util.benchstats`), so the speedup gate compares interval
means, not single noisy runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py          # full
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke  # CI

Acceptance: incremental refresh >= 5x faster than full replay (>= 2x
under ``--smoke``, where CI boxes are noisy), identical answers, all
refreshes on the delta path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_stream.json")

# allow `python benchmarks/bench_stream.py` without PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import ScrubJaySession  # noqa: E402
from repro.datagen.synthetic import (  # noqa: E402
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import QueryService  # noqa: E402
from repro.util.benchstats import measure  # noqa: E402

JOIN_QUERY = (["compute nodes", "jobs"], ["power", "temperature"])


def make_feed_session(rows: int, keys: int) -> ScrubJaySession:
    sj = ScrubJaySession()
    left, right = keyed_tables(rows, num_keys=keys)
    sj.ingest().feed(KEYED_LEFT_SCHEMA, rows=left).tail("samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    return sj


def delta_rows(start: int, n: int, keys: int) -> List[Dict[str, Any]]:
    return [
        {
            "node": (start + i) % keys,
            "sample": 10_000_000 + start + i,
            "metric_a": float(start + i),
        }
        for i in range(n)
    ]


def _row_multiset(rows: List[Dict[str, Any]]):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items()))
        for row in rows
    )


def run_refresh_phase(
    rows: int, keys: int, delta: int, repeats: int
) -> Dict[str, Any]:
    session = make_feed_session(rows, keys)
    domains, values = JOIN_QUERY
    cursor = [0]
    try:
        with QueryService(session, num_workers=1) as svc:
            sub = svc.subscribe(domains, values)

            def one_incremental() -> float:
                batch = delta_rows(cursor[0], delta, keys)
                cursor[0] += delta
                t0 = time.perf_counter()
                svc.advance("samples", rows=batch)
                return time.perf_counter() - t0

            incr = measure(
                one_incremental, min_repeats=3,
                max_repeats=max(3, repeats), warmup=1,
            )
            advances = 1 + len(incr.samples)  # warmup + measured

            # full replay at the very same watermarks the standing
            # answer sits at — the cost every refresh would pay
            # without delta execution
            marks = dict(sub.watermarks)
            replay_out: List[Any] = []

            def one_replay() -> float:
                t0 = time.perf_counter()
                result = sub.delta_plan.execute_full(
                    svc._pinned_catalog(marks), session.dictionary
                )
                out = result.collect()
                elapsed = time.perf_counter() - t0
                replay_out[:] = [out]
                return elapsed

            replay = measure(
                one_replay, min_repeats=3,
                max_repeats=max(3, repeats), warmup=1,
            )

            standing = sub.current()
            fresh = session.ask(domains, values).collect()
            answers_identical = (
                _row_multiset(standing.rows) == _row_multiset(fresh)
                == _row_multiset(replay_out[0])
            )
            streams = svc.snapshot().streams
            phase = {
                "base_rows": rows,
                "keys": keys,
                "delta_rows": delta,
                "delta_fraction": delta / rows,
                "advances": advances,
                "final_rows": rows + cursor[0],
                "incremental_s": {
                    "mean": incr.mean,
                    "ci_lo": incr.ci_low,
                    "ci_hi": incr.ci_high,
                    "samples": len(incr.samples),
                    "converged": incr.converged,
                },
                "replay_s": {
                    "mean": replay.mean,
                    "ci_lo": replay.ci_low,
                    "ci_hi": replay.ci_high,
                    "samples": len(replay.samples),
                    "converged": replay.converged,
                },
                "speedup": (
                    replay.mean / incr.mean if incr.mean > 0 else None
                ),
                "answers_identical": answers_identical,
                "delta_refreshes": sub.delta_refreshes,
                "replay_refreshes": sub.replay_refreshes,
                "all_refreshes_incremental": (
                    sub.delta_refreshes == advances
                    and sub.replay_refreshes == 0
                ),
                "streams": streams,
            }
    finally:
        session.close()
    return phase


def run_all(smoke: bool) -> Dict[str, Any]:
    if smoke:
        rows, keys, delta, repeats = 4_000, 64, 200, 5
        bar = 2.0
    else:
        rows, keys, delta, repeats = 20_000, 64, 1_000, 10
        bar = 5.0
    return {
        "figure": "BENCH_stream",
        "benchmark": "stream_refresh",
        "description": (
            "standing-query refresh after a <= 5% append: incremental "
            "delta execution vs full replay at identical watermarks, "
            "multiset-identical answers required"
        ),
        "smoke": smoke,
        "speedup_bar": bar,
        "refresh": run_refresh_phase(rows, keys, delta, repeats),
    }


def check(payload: Dict[str, Any]) -> List[str]:
    problems: List[str] = []
    ph = payload["refresh"]
    bar = payload["speedup_bar"]
    if not ph["answers_identical"]:
        problems.append(
            "standing answer diverged from the fresh replay answer"
        )
    if not ph["all_refreshes_incremental"]:
        problems.append(
            f"not every refresh took the delta path "
            f"(delta={ph['delta_refreshes']}, "
            f"replay={ph['replay_refreshes']}, "
            f"advances={ph['advances']})"
        )
    speedup = ph["speedup"]
    if speedup is None or speedup < bar:
        problems.append(
            f"incremental refresh is only {speedup!r}x faster than "
            f"full replay (acceptance bar: >= {bar}x)"
        )
    return problems


def write_json(payload: Dict[str, Any], path: str = JSON_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes and a relaxed 2x bar; exit non-zero on "
        "acceptance failures",
    )
    parser.add_argument(
        "--output", default=JSON_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    payload = run_all(smoke=args.smoke)
    path = write_json(payload, args.output)

    ph = payload["refresh"]
    print(
        f"base {ph['base_rows']} rows, delta {ph['delta_rows']} "
        f"({ph['delta_fraction']:.1%} per refresh)"
    )
    print(
        f"incremental {ph['incremental_s']['mean']*1e3:8.2f} ms   "
        f"replay {ph['replay_s']['mean']*1e3:8.2f} ms   "
        f"speedup {ph['speedup']:.1f}x "
        f"(bar {payload['speedup_bar']}x)"
    )
    print(
        f"refreshes: delta={ph['delta_refreshes']} "
        f"replay={ph['replay_refreshes']} "
        f"identical={ph['answers_identical']}"
    )
    print(f"wrote {path}")

    problems = check(payload)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
