"""Executor behaviour: all three kinds, ordering, errors, shutdown."""

import pytest

from repro.errors import ExecutorError
from repro.rdd.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.rdd.partition import Partition


def _parts(n=4, size=5):
    return [Partition(i, list(range(i * size, (i + 1) * size)))
            for i in range(n)]


@pytest.mark.parametrize("kind", ["serial", "threads", "processes"])
def test_run_partition_tasks_applies_fn_in_order(kind):
    ex = make_executor(kind, 2)
    try:
        out = ex.run_partition_tasks(
            lambda i, items: [x * 10 + i for x in items], _parts()
        )
        assert [p.index for p in out] == [0, 1, 2, 3]
        assert out[1].data == [x * 10 + 1 for x in range(5, 10)]
    finally:
        ex.shutdown()


@pytest.mark.parametrize("kind", ["serial", "threads", "processes"])
def test_closures_over_local_state(kind):
    ex = make_executor(kind, 2)
    try:
        offset = 100
        out = ex.run_partition_tasks(
            lambda _i, items: [x + offset for x in items], _parts(2, 2)
        )
        assert out[0].data == [100, 101]
    finally:
        ex.shutdown()


def test_make_executor_rejects_unknown_kind():
    with pytest.raises(ExecutorError):
        make_executor("gpu")


def test_serial_executor_reports_one_worker():
    assert SerialExecutor().num_workers == 1


def test_thread_executor_worker_count():
    ex = ThreadExecutor(3)
    try:
        assert ex.num_workers == 3
    finally:
        ex.shutdown()


def test_process_executor_worker_count_and_reuse():
    ex = ProcessExecutor(2)
    try:
        assert ex.num_workers == 2
        # two successive stages reuse the pool
        for _ in range(2):
            out = ex.run_partition_tasks(
                lambda _i, items: [x + 1 for x in items], _parts(2, 3)
            )
            assert out[0].data == [1, 2, 3]
    finally:
        ex.shutdown()


@pytest.mark.parametrize("kind", ["serial", "threads", "processes"])
def test_task_exception_propagates(kind):
    ex = make_executor(kind, 2)

    def boom(_i, _items):
        raise RuntimeError("task failed")

    try:
        with pytest.raises(RuntimeError, match="task failed"):
            ex.run_partition_tasks(boom, _parts(2, 2))
    finally:
        ex.shutdown()


def test_shutdown_is_idempotent():
    ex = ThreadExecutor(1)
    ex.shutdown()
    ex.shutdown()


def test_thread_executor_first_failure_wins_and_cancels_rest():
    # Regression: failures used to surface in submission order only,
    # and queued tasks kept running after the stage was already dead.
    import time

    executed = []

    def task(i, items):
        if i == 0:
            raise RuntimeError("boom-0")
        time.sleep(0.05)
        executed.append(i)
        return items

    ex = ThreadExecutor(1)
    try:
        with pytest.raises(RuntimeError, match="boom-0") as ei:
            ex.run_partition_tasks(task, _parts(6, 1))
    finally:
        ex.shutdown()
    assert ei.value.partition_index == 0  # failing task identified
    assert len(executed) < 5  # outstanding queued tasks were cancelled


def test_thread_executor_chains_partition_index_into_error():
    def task(i, items):
        raise RuntimeError(f"boom-{i}")

    ex = ThreadExecutor(4)
    try:
        with pytest.raises(RuntimeError) as ei:
            ex.run_partition_tasks(task, _parts(4, 1))
    finally:
        ex.shutdown()
    index = ei.value.partition_index
    assert index in (0, 1, 2, 3)
    assert str(ei.value) == f"boom-{index}"  # error matches its task
