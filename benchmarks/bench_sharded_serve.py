"""Sharded serve-tier benchmark: prune-aware scale-out QPS.

Measures the throughput of ``session.serve(shards=N)`` on a
partition-prunable workload — eq-filtered queries over a dataset
hash-sharded on the filtered key — at 1 shard vs 4 shards, and writes
``benchmarks/results/BENCH_sharded.json``.

The point being demonstrated is *routing*, not parallelism: this
harness may run on a single core, where process fan-out alone buys
nothing. Each eq-filtered query can only match rows on the one shard
that owns its key's hash, so the router's
``partition_may_match``-based pruning dispatches it to exactly 1 of N
shards, which scans 1/N of the rows — the fleet answers ~N× the
queries per second even with every shard sharing one core. The gate
requires ≥3× at 4 shards (smoke mode relaxes it — CI boxes are noisy
and small — but still requires a real win and exact answer
equivalence).

Timing uses the adaptive stopping rule of
:mod:`repro.util.benchstats`: batches repeat until the 95% CI on the
batch time is tight or the cap is hit, and the CI bounds land in the
JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded_serve.py           # full
    PYTHONPATH=src python benchmarks/bench_sharded_serve.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_sharded.json")

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import ScrubJaySession  # noqa: E402
from repro.core.query import FilterTerm  # noqa: E402
from repro.datagen.synthetic import (  # noqa: E402
    KEYED_LEFT_SCHEMA,
    keyed_tables,
)
from repro.util.benchstats import summarize  # noqa: E402

DOMAINS = ["compute nodes"]
VALUES = ["power"]


def row_multiset(rows: List[Dict[str, Any]]):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items()))
        for row in rows
    )


def _filters(key: int):
    return (FilterTerm("compute nodes", "eq", value=key),)


def make_fleet(rows, shards: int):
    """A session + ShardRouter over ``shards`` processes, with the
    samples table hash-sharded on its key column. Result caches are
    minimized on both tiers so the measured phase scatters and scans
    instead of replaying memoized answers."""
    sj = ScrubJaySession()
    sj.register_rows(rows, KEYED_LEFT_SCHEMA, name="samples")
    router = sj.serve(
        shards=shards,
        shard_on={"samples": ["node"]},
        num_workers=1,
        result_cache_entries=1,
        shard_service={"result_cache_entries": 1, "num_workers": 1},
    )
    return sj, router


def _batch_time(router, num_keys: int, batch: int) -> float:
    start = time.perf_counter()
    for i in range(batch):
        k = (i * 7) % num_keys
        router.query(DOMAINS, VALUES, filters=_filters(k))
    return time.perf_counter() - start


def bench_interleaved(
    routers: Dict[int, Any],
    num_keys: int,
    batch: int,
    repeat_cap: int,
    rel_ci: float = 0.05,
) -> Dict[int, Any]:
    """Time batches of cache-busting eq-filtered queries against every
    fleet, *interleaved* round-robin rather than one fleet at a time.

    On a shared box the machine's speed drifts over the seconds a
    benchmark takes; measuring fleet A completely before fleet B folds
    that drift straight into the A/B ratio. Interleaving gives every
    fleet a sample from each window of machine state, so drift cancels
    out of the ratio. Sampling stops when every fleet's 95% CI is
    tight (the benchstats stopping rule) or at ``repeat_cap``.
    """
    samples: Dict[int, List[float]] = {n: [] for n in routers}
    for n, router in routers.items():  # warmup batch per fleet
        _batch_time(router, num_keys, batch)
    while True:
        for n, router in routers.items():
            samples[n].append(_batch_time(router, num_keys, batch))
        done = len(next(iter(samples.values())))
        if done >= max(1, repeat_cap):
            break
        if done >= 3 and repeat_cap > 2:
            stats = {n: summarize(s) for n, s in samples.items()}
            if all(t.rel_halfwidth <= rel_ci for t in stats.values()):
                for t in stats.values():
                    t.converged = True
                return {n: stats[n] for n in routers}
    return {n: summarize(s) for n, s in samples.items()}


def run(
    rows: int,
    num_keys: int,
    batch: int,
    repeat_cap: int,
    shard_counts: Sequence[int] = (1, 4),
) -> Dict[str, Any]:
    left, _ = keyed_tables(rows, num_keys=num_keys)
    fleets: Dict[int, Dict[str, Any]] = {}
    answers: Dict[int, Dict[int, Any]] = {}
    live: Dict[int, Any] = {}
    sessions: Dict[int, Any] = {}
    try:
        for n in shard_counts:
            sessions[n], live[n] = make_fleet(left, n)
            # warm the plan caches (one query per distinct key — each
            # filter value is its own plan-cache entry) and record the
            # answer multisets for the equivalence check
            answers[n] = {
                k: row_multiset(
                    live[n].query(
                        DOMAINS, VALUES, filters=_filters(k)
                    ).collect()
                )
                for k in range(num_keys)
            }
        timings = bench_interleaved(live, num_keys, batch, repeat_cap)
        for n in shard_counts:
            timing = timings[n]
            router = live[n]
            snap = router.snapshot()
            fleets[n] = {
                "qps": batch / timing.mean,
                "qps_best": batch / timing.best,
                # time CI inverts into a qps CI (high time -> low qps)
                "qps_ci": [
                    batch / timing.ci_high
                    if timing.ci_high > 0 else None,
                    batch / timing.ci_low
                    if timing.ci_low > 0 else None,
                ],
                "batch": batch,
                "timing": timing.as_dict(),
                "routing": snap.shards.get("routing", {}),
                "router_latency_s": snap.latency_s,
                # one aggregate sanity answer per fleet: the
                # scatter-gather partial-merge path must agree across
                # shard counts too
                "aggregate": {
                    str(k): v
                    for k, v in sorted(router.aggregate(
                        DOMAINS, VALUES,
                        group_by=["node"], value_field="metric_a",
                        how="mean",
                    ).items())
                },
            }
    finally:
        for n in live:
            live[n].close()
        for n in sessions:
            sessions[n].close()

    base = shard_counts[0]
    mismatched = [
        k for k in answers[base]
        if any(answers[n][k] != answers[base][k]
               for n in shard_counts[1:])
    ]
    # merging per-shard partial sums reorders float additions, so the
    # grouped means may differ from the single-shard answer at machine
    # epsilon; anything beyond a tight relative tolerance is a bug
    aggregates_match = all(
        fleets[n]["aggregate"].keys() == fleets[base]["aggregate"].keys()
        and all(
            math.isclose(v, fleets[base]["aggregate"][k], rel_tol=1e-9)
            for k, v in fleets[n]["aggregate"].items()
        )
        for n in shard_counts[1:]
    )
    speedups = {
        str(n): fleets[n]["qps"] / fleets[base]["qps"]
        for n in shard_counts
        if fleets[base]["qps"] > 0
    }
    return {
        "figure": "BENCH_sharded",
        "benchmark": "sharded_serve_prune_aware_qps",
        "description": (
            "eq-filtered queries over a hash-sharded dataset; the "
            "router prunes to the one owning shard per query, so N "
            "shards scan 1/N rows each — qps scales without extra "
            "cores. CI bounds from the adaptive stopping rule "
            "(repro.util.benchstats)."
        ),
        "rows": rows,
        "num_keys": num_keys,
        "shard_counts": list(shard_counts),
        "fleets": {str(n): fleets[n] for n in shard_counts},
        "speedups": speedups,
        "answers_match": not mismatched,
        "mismatched_keys": mismatched[:10],
        "aggregates_match": aggregates_match,
    }


def check_gate(payload: Dict[str, Any], min_speedup: float) -> List[str]:
    problems: List[str] = []
    if not payload["answers_match"]:
        problems.append(
            "sharded fleet answers diverge from the 1-shard fleet at "
            f"keys {payload['mismatched_keys']}"
        )
    if not payload["aggregates_match"]:
        problems.append(
            "scatter-gathered aggregates diverge across shard counts"
        )
    top = str(max(payload["shard_counts"]))
    speedup = payload["speedups"].get(top, 0.0)
    if speedup < min_speedup:
        problems.append(
            f"{top}-shard fleet reached only {speedup:.2f}x the "
            f"1-shard qps (gate: {min_speedup:.1f}x)"
        )
    routing = payload["fleets"][top].get("routing", {})
    if routing.get("pruned", 0) <= 0:
        problems.append(
            "routing pruned no shard dispatches — prune-aware routing "
            "is not engaging on an eq-filtered workload"
        )
    return problems


def write_json(payload: Dict[str, Any], path: str = JSON_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload and a relaxed speedup gate (CI)",
    )
    parser.add_argument("--output", default=JSON_PATH)
    args = parser.parse_args(argv)

    if args.smoke:
        rows, num_keys, batch, cap, gate = 6_000, 32, 12, 2, 1.5
    else:
        rows, num_keys, batch, cap, gate = 48_000, 192, 16, 20, 3.0

    payload = run(rows, num_keys, batch, cap)
    payload["smoke"] = bool(args.smoke)
    payload["gate_speedup"] = gate
    path = write_json(payload, args.output)

    for n in payload["shard_counts"]:
        f = payload["fleets"][str(n)]
        lo, hi = f["qps_ci"]
        print(
            f"{n} shard(s): {f['qps']:.1f} qps "
            f"(ci [{lo:.1f}, {hi:.1f}], "
            f"{f['timing']['repeats']} batches, "
            f"converged={f['timing']['converged']}) "
            f"routing={f['routing']}"
        )
    top = str(max(payload["shard_counts"]))
    print(
        f"speedup: {payload['speedups'][top]:.2f}x "
        f"(gate {gate:.1f}x), answers_match={payload['answers_match']}"
    )
    print(f"wrote {path}")

    problems = check_gate(payload, gate)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
