"""Synthetic HPC facility: the stand-in for the paper's Cab cluster.

The paper evaluates ScrubJay on data collected at LLNL during two
dedicated-access-time (DAT) sessions: SLURM job-queue logs, OSIsoft PI
rack sensors, a node/rack layout table, and — in the second DAT —
IPMI, LDMS and PAPI counter streams plus static CPU specifications.
None of that data is public, so this package simulates the facility:

- :mod:`repro.datagen.facility` — racks, nodes, sockets, CPUs, and the
  static layout / CPU-specification datasets;
- :mod:`repro.datagen.workloads` — behavioural models of the paper's
  applications (AMG's steadily rising heat; mg.C memory-bound at full
  frequency with low instruction rate; prime95 compute-bound with
  aggressive thermal throttling);
- :mod:`repro.datagen.scheduler` — a SLURM-like scheduler producing
  job-queue logs and the node→job timeline the sensors react to;
- :mod:`repro.datagen.sensors` — 2-minute rack temperature (hot/cold
  aisle × top/middle/bottom), humidity and power feeds;
- :mod:`repro.datagen.counters` — 1–3 s PAPI/IPMI/LDMS cumulative
  counter streams with arbitrary resets;
- :mod:`repro.datagen.dat` — one-call builders for the two DAT
  datasets, with schemas and dictionary entries included;
- :mod:`repro.datagen.synthetic` — shapeless keyed/timestamped tables
  for the Figure 3 join-scaling benchmarks.

The substitution preserves what the case studies actually exercise:
the schemas, the granularity mismatches (2-minute sensors vs. 1–3 s
counters vs. per-job spans), and planted behavioural signatures that
the derived datasets must recover.
"""

from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.workloads import WorkloadModel, WORKLOADS
from repro.datagen.scheduler import Job, JobScheduler, ScheduleConfig
from repro.datagen.dat import DAT1, DAT2, generate_dat1, generate_dat2

__all__ = [
    "Facility",
    "FacilityConfig",
    "WorkloadModel",
    "WORKLOADS",
    "Job",
    "JobScheduler",
    "ScheduleConfig",
    "DAT1",
    "DAT2",
    "generate_dat1",
    "generate_dat2",
]
