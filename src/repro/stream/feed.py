"""Feed handles: tailing an appendable source into a session dataset.

A :class:`Feed` owns one dataset's streaming state: the **watermark**
— the source offset up to which rows have been observed and folded
into the session. Watermarks are monotonic and always sit on committed
record boundaries (the append-capability contract of
:meth:`~repro.sources.base.DataSource.append_scan`), which yields the
exactly-once-per-watermark guarantee: a row is delivered by exactly
one ``advance`` interval, never split, never repeated.

Each advance bumps the dataset's per-session *data version* — the
serve layer keys result caches on it and refreshes subscriptions from
it — and publishes ``feed.watermark`` / ``feed.lag_rows`` gauges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FeedError


@dataclass
class FeedAdvance:
    """The outcome of one ``Feed.advance()``: the rows committed in
    ``[since, watermark)`` and the boundaries themselves."""

    name: str
    since: int
    watermark: int
    rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def rows_added(self) -> int:
        return len(self.rows)

    @property
    def advanced(self) -> bool:
        return self.watermark != self.since

    def __repr__(self) -> str:
        return (
            f"FeedAdvance({self.name!r}, {self.since}->{self.watermark},"
            f" +{len(self.rows)} rows)"
        )


class Feed:
    """A live dataset: an appendable source tailed into the catalog.

    Created by ``session.ingest()....tail(name)``. The handle is
    driver-side and thread-safe; the watermark only ever moves
    forward (a source that shrank raises
    :class:`~repro.errors.FeedRewoundError` from ``advance``).
    """

    def __init__(self, session, dataset, source, name: str) -> None:
        self.session = session
        self.dataset = dataset
        self.source = source
        self.name = name
        self._lock = threading.RLock()
        # everything committed at creation is the starting watermark:
        # it is already visible to plain scans of the dataset
        self.watermark: int = source.current_offset()
        self.rows_ingested = 0
        self._gauge(self.watermark, 0)

    # -- metrics -------------------------------------------------------

    @property
    def _metrics(self):
        return self.session.ctx.metrics

    def _gauge(self, watermark: int, lag_rows: int) -> None:
        labels = {"feed": self.name}
        self._metrics.set_gauge("feed.watermark", watermark,
                                labels=labels)
        self._metrics.set_gauge("feed.lag_rows", lag_rows,
                                labels=labels)

    # -- producing -----------------------------------------------------

    def push(self, rows: List[Dict[str, Any]]) -> FeedAdvance:
        """Push rows into a push-capable source (a
        :class:`~repro.sources.feed_source.FeedSource`) and advance
        over them in one step."""
        push = getattr(self.source, "push", None)
        if push is None:
            raise FeedError(
                f"feed {self.name!r} is tailing a "
                f"{type(self.source).__name__}, which has no push "
                "endpoint; append to the backing source instead and "
                "call advance()"
            )
        until = push(rows)
        return self.advance(until)

    # -- tailing -------------------------------------------------------

    def lag_rows(self) -> int:
        """Committed rows past the watermark, not yet advanced over
        (decodes the pending slice; also refreshes the lag gauge)."""
        with self._lock:
            rows, _ = self.source.append_scan(self.watermark, None)
            self._gauge(self.watermark, len(rows))
            return len(rows)

    def poll(self) -> FeedAdvance:
        """Alias for :meth:`advance` — tail whatever is committed."""
        return self.advance()

    def advance(self, until: Optional[int] = None) -> FeedAdvance:
        """Fold newly committed rows into the session.

        Scans ``[watermark, until)`` (``until=None`` = everything
        committed), moves the watermark to the boundary actually
        reached, bumps the dataset's data version so dependent caches
        churn, and refreshes the source's scan layout so subsequent
        plain queries see the new rows. Returns the
        :class:`FeedAdvance` (empty when nothing new was committed).
        """
        with self._lock:
            since = self.watermark
            rows, new = self.source.append_scan(since, until)
            if new < since:
                raise FeedError(
                    f"feed {self.name!r}: append_scan moved backwards "
                    f"({since} -> {new})"
                )
            if new != since:
                self.source.refresh()
                self.watermark = new
                self.rows_ingested += len(rows)
                self.session._bump_data_version(self.name)
                # materialized rollups reading this feed fold the
                # delta in (repro.metrics.rollup); shard sessions
                # and other hosts without the hook skip it
                refresh = getattr(
                    self.session, "_refresh_rollups", None
                )
                if refresh is not None:
                    refresh(self.name)
            self._gauge(self.watermark, 0)
            return FeedAdvance(self.name, since, new, rows)

    def bounded_source(self, offset: Optional[int] = None):
        """A frozen snapshot source at ``offset`` (default: the
        current watermark) — what pinned-watermark execution scans."""
        with self._lock:
            return self.source.bounded(
                self.watermark if offset is None else offset
            )

    def data_version(self) -> int:
        return self.session.data_version(self.name)

    def __repr__(self) -> str:
        return (
            f"Feed({self.name!r}, watermark={self.watermark}, "
            f"ingested={self.rows_ingested})"
        )
