"""Unknown wire ops come back typed: an ``UnsupportedOpError``
response naming the op and the server's supported list — and the
client maps both it and the legacy pre-streaming ``ProtocolError``
string to the same typed exception, so a new client degrades
gracefully against a pinned v2 fleet that predates the streaming
ops."""

from __future__ import annotations

import json
import socketserver
import threading

import pytest

from repro.serve import (
    InProcessClient,
    PROTOCOL_VERSION,
    QueryClient,
    QueryService,
    UnsupportedOpError,
)
from repro.serve.wire import SUPPORTED_OPS, _raise_on_error, dispatch

from tests.serve.conftest import JOIN_DOMAINS, JOIN_VALUES


@pytest.fixture()
def service(serve_session):
    svc = QueryService(serve_session, num_workers=1, max_queue=16)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# modern server: the typed response
# ----------------------------------------------------------------------


def test_unknown_op_response_names_op_and_supported_list(service):
    resp = dispatch(service, {"op": "frobnicate"})
    assert resp["ok"] is False
    assert resp["error"] == "UnsupportedOpError"
    assert resp["op"] == "frobnicate"
    assert resp["supported"] == list(SUPPORTED_OPS)
    assert "frobnicate" in resp["message"]
    # the message tells the operator what the server *can* do
    assert "subscribe" in resp["message"]


def test_client_raises_typed_error_with_op_and_supported(service):
    local = InProcessClient(service)
    with pytest.raises(UnsupportedOpError) as exc_info:
        _raise_on_error(local.request({"op": "frobnicate"}))
    exc = exc_info.value
    assert exc.op == "frobnicate"
    assert "subscribe" in exc.supported
    assert "query" in exc.supported


def test_streaming_ops_are_advertised(service):
    for op in ("subscribe", "updates", "unsubscribe", "advance"):
        assert op in SUPPORTED_OPS


# ----------------------------------------------------------------------
# pinned v2 server (pre-streaming): the legacy mapping
# ----------------------------------------------------------------------

#: the op set a v2 server shipped before the streaming ops landed
_PINNED_V2_OPS = (
    "hello", "ping", "metrics", "sync", "trace", "register", "drop",
    "define_dimension", "define_unit", "query", "explain", "aggregate",
)


class _PinnedV2Handler(socketserver.StreamRequestHandler):
    """A frozen replica of the pre-streaming server's dispatch edge:
    same protocol version, but streaming ops are *unknown* and answered
    with the legacy untyped ``ProtocolError`` string."""

    def handle(self):
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            req = json.loads(line.decode("utf-8"))
            op = req.get("op")
            if op == "hello":
                resp = {"ok": True, "version": PROTOCOL_VERSION}
            elif op == "ping":
                resp = {"ok": True, "pong": True}
            elif op in _PINNED_V2_OPS:  # pragma: no cover - not reached
                resp = {"ok": False, "error": "ServiceError",
                        "message": "stub"}
            else:
                resp = {
                    "ok": False,
                    "error": "ProtocolError",
                    "message": f"unknown op {op!r}",
                }
            self.wfile.write(
                (json.dumps(resp) + "\n").encode("utf-8")
            )
            self.wfile.flush()


@pytest.fixture()
def pinned_v2_server():
    srv = socketserver.ThreadingTCPServer(
        ("127.0.0.1", 0), _PinnedV2Handler
    )
    srv.daemon_threads = True
    t = threading.Thread(target=srv.serve_forever, daemon=True)
    t.start()
    try:
        yield srv.server_address
    finally:
        srv.shutdown()
        srv.server_close()
        t.join(5.0)


def test_new_client_against_pinned_v2_raises_unsupported(
    pinned_v2_server,
):
    host, port = pinned_v2_server
    with QueryClient(host, port) as client:
        # handshake agrees (same protocol version) ...
        assert client.ping() is True
        # ... but every streaming op maps to the typed exception
        with pytest.raises(UnsupportedOpError) as exc_info:
            client.subscribe(JOIN_DOMAINS, JOIN_VALUES)
        assert "unknown op" in str(exc_info.value)
        # a legacy response carries no capability list
        assert exc_info.value.supported == ()

        with pytest.raises(UnsupportedOpError):
            client.updates("sub-1")
        with pytest.raises(UnsupportedOpError):
            client.unsubscribe("sub-1")
        with pytest.raises(UnsupportedOpError):
            client.advance("samples")


def test_pinned_v2_failure_does_not_kill_the_connection(
    pinned_v2_server,
):
    host, port = pinned_v2_server
    with QueryClient(host, port) as client:
        with pytest.raises(UnsupportedOpError):
            client.advance("samples")
        # graceful degradation: the connection still answers old ops
        assert client.ping() is True
