"""Textual codec: every unit kind, round trips, error handling."""

import pytest

from repro.core.semantics import domain, value
from repro.errors import WrapperError
from repro.units.temporal import Timestamp, TimeSpan
from repro.wrappers.codec import decode_value, encode_value


def _round_trip(v, sem, d):
    return decode_value(encode_value(v, sem, d), sem, d)


def test_quantity(dictionary):
    sem = value("temperature", "degrees Celsius")
    assert decode_value("21.5", sem, dictionary) == 21.5
    assert _round_trip(21.5, sem, dictionary) == 21.5


def test_rate(dictionary):
    sem = value("event count per time", "count per second")
    assert decode_value("1e6", sem, dictionary) == 1e6


def test_count(dictionary):
    sem = value("event count", "count")
    assert decode_value("42", sem, dictionary) == 42
    assert decode_value("4.2e1", sem, dictionary) == 42
    assert isinstance(decode_value("42", sem, dictionary), int)


def test_identifier_numeric_and_text(dictionary):
    sem = domain("compute nodes", "identifier")
    assert decode_value("17", sem, dictionary) == 17
    assert decode_value("cab-17", sem, dictionary) == "cab-17"
    assert _round_trip(17, sem, dictionary) == 17
    assert _round_trip("cab-17", sem, dictionary) == "cab-17"


def test_label(dictionary):
    sem = value("applications", "label")
    assert decode_value(" AMG ", sem, dictionary) == "AMG"


def test_datetime_epoch_and_iso(dictionary):
    sem = domain("time", "datetime")
    assert decode_value("123.5", sem, dictionary) == Timestamp(123.5)
    iso = Timestamp.from_iso("2017-03-27T16:43:27")
    assert decode_value("2017-03-27T16:43:27", sem, dictionary) == iso
    assert _round_trip(Timestamp(99.25), sem, dictionary) == Timestamp(99.25)


def test_timespan(dictionary):
    sem = domain("time", "timespan")
    assert decode_value("10.0..60.0", sem, dictionary) == TimeSpan(10.0, 60.0)
    assert _round_trip(TimeSpan(0.5, 9.5), sem, dictionary) == \
        TimeSpan(0.5, 9.5)


def test_list_of_identifiers(dictionary):
    sem = domain("compute nodes", "list<identifier>")
    assert decode_value("1;2;3", sem, dictionary) == [1, 2, 3]
    assert _round_trip([4, 5], sem, dictionary) == [4, 5]
    assert decode_value("", sem, dictionary) is None


def test_empty_and_none_decode_to_none(dictionary):
    sem = value("power", "watts")
    assert decode_value("", sem, dictionary) is None
    assert decode_value(None, sem, dictionary) is None
    assert encode_value(None, sem, dictionary) == ""


def test_decode_garbage_raises(dictionary):
    with pytest.raises(WrapperError):
        decode_value("hot", value("power", "watts"), dictionary)
    with pytest.raises(WrapperError):
        decode_value("abc", domain("time", "datetime"), dictionary)


def test_encode_wrong_type_raises(dictionary):
    with pytest.raises(WrapperError):
        encode_value(3.0, domain("time", "datetime"), dictionary)
    with pytest.raises(WrapperError):
        encode_value("x", domain("time", "timespan"), dictionary)
