"""PlanCache: memoization of the derivation-engine search (§5.2).

The engine's schema-only search is fast relative to execution but far
from free — multi-dataset queries walk a combinatorial subset lattice
— and it is fully determined by (catalog schemas, dictionary version,
registered ops, normalized query). The serve layer therefore memoizes
whole solved plans under that semantic key (see
:mod:`repro.serve.keys`), so a repeated logical query skips the search
entirely.

Three properties matter under concurrent load:

- **single-flight**: when N clients miss on the same cold key at
  once, exactly one runs the search; the rest block on it and share
  the plan. Without this, a thundering herd of identical searches
  serializes on the engine lock and each pays full price.
- **negative caching**: :class:`~repro.errors.NoSolutionError` is as
  deterministic as a solution (same schemas, same bounds, same
  outcome), so "no solution" is cached too and re-raised on hit —
  a misconfigured client hammering an unsatisfiable query costs one
  search, not one per request.
- **invalidation by keying**: the key embeds the session state
  fingerprint, so registering/dropping a dataset or defining a new
  keyword naturally makes old entries unreachable. ``clear()`` exists
  for explicit flushes; the LRU bound garbage-collects unreachable
  generations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.pipeline import DerivationPlan
from repro.errors import NoSolutionError


def _copy_error(exc: BaseException) -> BaseException:
    """A detached equal of ``exc`` — no traceback, no shared state."""
    try:
        fresh = type(exc)(*exc.args)
        fresh.__dict__.update(exc.__dict__)
    except Exception:  # exotic __init__ signature: fall back to copy
        import copy

        fresh = copy.copy(exc)
    fresh.__traceback__ = None
    fresh.__cause__ = None
    fresh.__context__ = None
    return fresh


class PlanCache:
    """Bounded in-memory LRU of solved (or provably unsolvable) plans."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        # key -> ("plan", DerivationPlan) | ("error", NoSolutionError)
        self._entries: "OrderedDict[str, Tuple[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        # single-flight: key -> Event set once the solver finished
        self._inflight: Dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.negative_hits = 0

    # ------------------------------------------------------------------

    def get_or_solve(
        self,
        key: str,
        solver: Callable[[], DerivationPlan],
    ) -> DerivationPlan:
        """Return the cached plan for ``key``, running ``solver`` on a
        miss (at most once per key across concurrent callers).

        Re-raises a cached :class:`NoSolutionError` on negative hits.
        Solver errors other than ``NoSolutionError`` (e.g. malformed
        queries) are not cached.
        """
        while True:
            with self._lock:
                hit = self._entries.get(key)
                if hit is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    kind, payload = hit
                    if kind == "error":
                        self.negative_hits += 1
                        # Raise a fresh copy: re-raising one shared
                        # instance from many threads races on its
                        # __traceback__ and chains frames forever.
                        raise _copy_error(payload)
                    return payload
                waiter = self._inflight.get(key)
                if waiter is None:
                    # We are the solving thread for this key.
                    self._inflight[key] = threading.Event()
                    self.misses += 1
                    break
            # Another thread is already searching: wait and re-check.
            waiter.wait()

        try:
            plan = solver()
        except NoSolutionError as exc:
            # Cache a detached copy so the stored entry does not pin
            # the solver's stack frames via exc.__traceback__.
            self._store(key, ("error", _copy_error(exc)))
            raise
        except BaseException:
            # Non-deterministic/invalid failures: drop the in-flight
            # marker so the next caller retries the search.
            self._release(key)
            raise
        else:
            self._store(key, ("plan", plan))
            return plan

    def _store(self, key: str, entry: Tuple[str, Any]) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._wake(key)

    def _release(self, key: str) -> None:
        with self._lock:
            self._wake(key)

    def _wake(self, key: str) -> None:
        event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------

    def peek(self, key: str) -> Optional[DerivationPlan]:
        """The cached plan, without recency bump or solve (None when
        absent or negative)."""
        with self._lock:
            hit = self._entries.get(key)
            if hit is None or hit[0] != "plan":
                return None
            return hit[1]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "negative_hits": self.negative_hits,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else None,
                "entries": len(self._entries),
            }
