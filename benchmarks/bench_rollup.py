"""Rollup-routing benchmark: materialized rollup vs raw aggregation.

The claim the metrics layer makes: once a rollup is materialized at a
grain that divides the query's grain, answering the metric query from
the rollup's pre-aggregated partial state (a handful of per-bucket
partials re-aggregated to the coarser grain) costs far less than
re-scanning the raw relation and re-aggregating every row. This
benchmark measures both routes on the *same session, same query, same
data* and writes machine-readable evidence to
``benchmarks/results/BENCH_rollup.json``:

- **raw route** — ``session.ask`` on the metric query before any
  rollup exists: base-relation solve + execute + per-row partial
  aggregation (``decision.route == "raw"``, asserted not assumed);
- **rollup route** — the identical query after
  ``session.rollup("power_15m", ...)`` registers a 15-minute rollup:
  the planner routes to it and re-aggregates its stored partials up
  to the query's 1-hour grain (``decision.route == "rollup"``);
- **correctness** — both routes must produce the same group set with
  values equal within ``math.isclose`` (the two routes sum in
  different orders, so last-ULP float drift is expected and allowed).

Timing uses the shared CI-interval machinery
(:mod:`repro.util.benchstats`), so the speedup gate compares interval
means, not single noisy runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_rollup.py          # full
    PYTHONPATH=src python benchmarks/bench_rollup.py --smoke  # CI

Acceptance: the rollup route >= 5x faster than the raw route (>= 2x
under ``--smoke``, where CI boxes are noisy), identical answers, and
both routing decisions confirmed via :class:`RollupDecision`.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_rollup.json")

# allow `python benchmarks/bench_rollup.py` without PYTHONPATH
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import Grain, Measure, Query, Schema, ScrubJaySession  # noqa: E402
from repro.core.semantics import domain, value  # noqa: E402
from repro.units.temporal import Timestamp  # noqa: E402
from repro.util.benchstats import measure  # noqa: E402

RACK_POWER_SCHEMA = Schema({
    "rack": domain("racks", "identifier"),
    "time": domain("time", "datetime"),
    "power": value("power", "watts"),
})

STEP_S = 30.0  # one sample per rack every 30 seconds


def power_rows(racks: int, samples: int) -> List[Dict[str, Any]]:
    return [
        {"rack": r, "time": Timestamp(i * STEP_S),
         "power": 100.0 + 10.0 * r + (i % 11)}
        for r in range(racks)
        for i in range(samples)
    ]


def metric_query() -> Query:
    return Query.of(
        ["time", "racks"], ["power"],
        measures=[Measure("power", "mean")],
        per=["racks"], grain=Grain.of("1h"),
    )


def groups_identical(a: Dict, b: Dict) -> bool:
    if set(a) != set(b):
        return False
    for k in a:
        ga, gb = a[k], b[k]
        if set(ga) != set(gb):
            return False
        for m in ga:
            if not math.isclose(
                ga[m], gb[m], rel_tol=1e-9, abs_tol=1e-9
            ):
                return False
    return True


def run_route_phase(
    racks: int, samples: int, repeats: int
) -> Dict[str, Any]:
    sj = ScrubJaySession()
    try:
        sj.register_rows(
            power_rows(racks, samples), RACK_POWER_SCHEMA,
            name="rack_power",
        )
        q = metric_query()

        # raw route: no rollup registered yet, every ask re-scans
        # and re-aggregates the base relation
        raw_out: List[Any] = []

        def one_raw() -> float:
            t0 = time.perf_counter()
            ans = sj.ask(q)
            groups = dict(ans.groups)
            elapsed = time.perf_counter() - t0
            raw_out[:] = [(groups, ans.decision)]
            return elapsed

        raw = measure(
            one_raw, min_repeats=3,
            max_repeats=max(3, repeats), warmup=1,
        )
        raw_groups, raw_decision = raw_out[0]

        # materialize a 15m rollup (one-time cost, recorded but not
        # part of the per-query timing), then re-ask the same 1h
        # query: the planner re-aggregates the stored 15m partials
        t0 = time.perf_counter()
        rollup = sj.rollup(
            "power_15m",
            Query.of(
                ["time", "racks"], ["power"],
                measures=[Measure("power", "mean")],
                per=["racks"], grain=Grain.of("15m"),
            ),
        )
        materialize_s = time.perf_counter() - t0
        routed_out: List[Any] = []

        def one_routed() -> float:
            t0 = time.perf_counter()
            ans = sj.ask(q)
            groups = dict(ans.groups)
            elapsed = time.perf_counter() - t0
            routed_out[:] = [(groups, ans.decision)]
            return elapsed

        routed = measure(
            one_routed, min_repeats=3,
            max_repeats=max(3, repeats), warmup=1,
        )
        routed_groups, routed_decision = routed_out[0]

        return {
            "racks": racks,
            "samples_per_rack": samples,
            "rows": racks * samples,
            "rollup_grain_s": 900.0,
            "query_grain_s": 3600.0,
            "rollup_buckets": len(rollup.state.get("power_mean", {})),
            "query_groups": len(raw_groups),
            "materialize_s": materialize_s,
            "raw_s": {
                "mean": raw.mean,
                "ci_lo": raw.ci_low,
                "ci_hi": raw.ci_high,
                "samples": len(raw.samples),
                "converged": raw.converged,
            },
            "rollup_s": {
                "mean": routed.mean,
                "ci_lo": routed.ci_low,
                "ci_hi": routed.ci_high,
                "samples": len(routed.samples),
                "converged": routed.converged,
            },
            "speedup": (
                raw.mean / routed.mean if routed.mean > 0 else None
            ),
            "answers_identical": groups_identical(
                raw_groups, routed_groups
            ),
            "raw_decision": raw_decision.as_dict(),
            "rollup_decision": routed_decision.as_dict(),
        }
    finally:
        sj.close()


def run_all(smoke: bool) -> Dict[str, Any]:
    if smoke:
        racks, samples, repeats = 8, 720, 5  # 5,760 rows / 6 hours
        bar = 2.0
    else:
        racks, samples, repeats = 16, 2_880, 10  # 46,080 rows / 24 h
        bar = 5.0
    return {
        "figure": "BENCH_rollup",
        "benchmark": "rollup_routing",
        "description": (
            "metric query (mean power per rack at 1h grain) answered "
            "by re-aggregating a materialized 15m rollup's partials "
            "vs re-scanning raw rows; identical answers required"
        ),
        "smoke": smoke,
        "speedup_bar": bar,
        "route": run_route_phase(racks, samples, repeats),
    }


def check(payload: Dict[str, Any]) -> List[str]:
    problems: List[str] = []
    ph = payload["route"]
    bar = payload["speedup_bar"]
    if not ph["answers_identical"]:
        problems.append(
            "rollup-route answer diverged from the raw-route answer"
        )
    if ph["raw_decision"]["route"] != "raw":
        problems.append(
            f"pre-rollup query did not take the raw route "
            f"({ph['raw_decision']})"
        )
    if ph["rollup_decision"]["route"] != "rollup" or \
            ph["rollup_decision"]["rollup"] != "power_15m":
        problems.append(
            f"post-rollup query did not route through power_15m "
            f"({ph['rollup_decision']})"
        )
    speedup = ph["speedup"]
    if speedup is None or speedup < bar:
        problems.append(
            f"rollup route is only {speedup!r}x faster than the raw "
            f"route (acceptance bar: >= {bar}x)"
        )
    return problems


def write_json(payload: Dict[str, Any], path: str = JSON_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes and a relaxed 2x bar; exit non-zero on "
        "acceptance failures",
    )
    parser.add_argument(
        "--output", default=JSON_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    payload = run_all(smoke=args.smoke)
    path = write_json(payload, args.output)

    ph = payload["route"]
    print(
        f"{ph['rows']} rows, {ph['rollup_buckets']} rollup partials, "
        f"{ph['query_groups']} answer groups"
    )
    print(
        f"raw {ph['raw_s']['mean']*1e3:8.2f} ms   "
        f"rollup {ph['rollup_s']['mean']*1e3:8.2f} ms   "
        f"speedup {ph['speedup']:.1f}x "
        f"(bar {payload['speedup_bar']}x)"
    )
    print(f"wrote {path}")

    problems = check(payload)
    for p in problems:
        print(f"ACCEPTANCE FAIL: {p}")
    if args.smoke:
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
