"""Unwrapper base class.

The eager *wrapper* half of this package (``DataWrapper`` and its
format subclasses) is gone: ingestion goes through
:mod:`repro.sources` (``session.ingest().csv/sql/table/rows``), which
reads lazily, partitions, and supports pushdown. Unwrappers remain —
converting a dataset back into a storage format has no lazy
equivalent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.core.dataset import ScrubJayDataset


class Unwrapper(ABC):
    """Converts a dataset back into a storage format (paper §5.4)."""

    @abstractmethod
    def save(self, dataset: ScrubJayDataset) -> Any:
        """Persist the dataset; returns a format-specific handle
        (path, table name, …)."""
