"""Shared serve-layer fixtures: a session whose catalog needs a real
cross-dataset combination, so plan-cache hits actually skip a
non-trivial §5.2 search."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)

#: the two-dataset join query every serve test reuses
JOIN_DOMAINS = ["compute nodes", "jobs"]
JOIN_VALUES = ["power", "temperature"]

#: single-dataset projection query (cheap, hot-path)
HOT_DOMAINS = ["compute nodes"]
HOT_VALUES = ["temperature"]


def make_session(executor="serial", rows=200, keys=16, **kwargs):
    sj = ScrubJaySession(TuningProfile(executor_kind=executor, **kwargs))
    left, right = keyed_tables(rows, num_keys=keys)
    sj.register_rows(left, KEYED_LEFT_SCHEMA, name="samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    return sj


@pytest.fixture()
def serve_session():
    sj = make_session()
    yield sj
    sj.close()


def row_multiset(rows):
    """Order-insensitive row comparison key."""
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )
