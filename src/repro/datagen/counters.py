"""High-fidelity node/CPU counter streams: PAPI, IPMI, and LDMS.

Models the second DAT's data sources (§7.3): performance data sampled
on one- to three-second intervals, recorded as *cumulative counts*
that "reset at some arbitrary interval, making their absolute values
irrelevant by themselves" — the property that forces the rate
derivation. Specifically:

- **PAPI** per-(node, cpu) samples: cumulative instruction, APERF and
  MPERF counts. MPERF increments at the rated frequency, APERF at the
  active frequency, so ``ΔAPERF/ΔMPERF × rated`` recovers the active
  frequency — including prime95's throttling sag;
- **IPMI** per-(node, socket) samples: cumulative memory read/write
  counts plus instantaneous socket power and thermal margin;
- **LDMS** per-node samples: CPU utilization, free memory and a
  cumulative context-switch count (ingested into the NoSQL store in
  the examples).

Counters reset to zero at random (per stream) to exercise the
reset-safety of ``derive_rate``; sample times jitter slightly so the
granularity mismatch between feeds is genuine.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.datagen.facility import Facility
from repro.datagen.scheduler import JobScheduler
from repro.datagen.workloads import IDLE
from repro.units.temporal import Timestamp


class CounterSimulator:
    """Generates the counter datasets of DAT 2."""

    #: probability that a cumulative counter stream resets at a sample
    RESET_PROBABILITY = 0.002

    def __init__(
        self,
        facility: Facility,
        scheduler: JobScheduler,
        seed: int = 31,
    ) -> None:
        self.facility = facility
        self.scheduler = scheduler
        self.seed = seed

    # ------------------------------------------------------------------

    def _sample_times(
        self, start: float, duration: float, period: float, rng: random.Random
    ) -> Iterator[float]:
        t = start
        while t < start + duration:
            yield t + rng.uniform(-0.1 * period, 0.1 * period)
            t += period

    def _workload_at(self, node: int, t: float):
        job = self.scheduler.job_at(node, t)
        if job is None:
            return IDLE, 0.0
        return job.workload, t - job.start

    # ------------------------------------------------------------------

    def papi_rows(
        self,
        nodes: Optional[Sequence[int]] = None,
        start: float = 0.0,
        duration: float = 1800.0,
        period: float = 2.0,
    ) -> List[Dict[str, Any]]:
        """Cumulative per-CPU counters: instructions, APERF, MPERF."""
        rng = random.Random(self.seed)
        nodes = list(nodes) if nodes is not None else self.facility.nodes()
        rows: List[Dict[str, Any]] = []
        for node in nodes:
            rated_hz = self.facility.base_frequency(node) * 1e9
            for cpu in self.facility.cpus():
                instr = rng.randrange(10**6)
                aperf = rng.randrange(10**6)
                mperf = rng.randrange(10**6)
                prev_t: Optional[float] = None
                for t in self._sample_times(start, duration, period, rng):
                    if prev_t is not None:
                        dt = t - prev_t
                        model, t_rel = self._workload_at(node, t)
                        ratio = model.frequency_ratio(t_rel)
                        noise = 1.0 + rng.gauss(0.0, 0.02)
                        instr += int(
                            model.instructions_at(t_rel) * dt * noise
                        )
                        mperf += int(rated_hz * dt)
                        aperf += int(rated_hz * ratio * dt * noise)
                        if rng.random() < self.RESET_PROBABILITY:
                            instr = aperf = mperf = 0
                    prev_t = t
                    rows.append(
                        {
                            "nodeid": node,
                            "cpuid": cpu,
                            "time": Timestamp(round(t, 3)),
                            "instructions": instr,
                            "aperf": aperf,
                            "mperf": mperf,
                        }
                    )
        return rows

    def ipmi_rows(
        self,
        nodes: Optional[Sequence[int]] = None,
        start: float = 0.0,
        duration: float = 1800.0,
        period: float = 3.0,
    ) -> List[Dict[str, Any]]:
        """Per-socket motherboard data: cumulative memory traffic,
        instantaneous power and thermal margin."""
        rng = random.Random(self.seed + 1)
        nodes = list(nodes) if nodes is not None else self.facility.nodes()
        sockets = range(self.facility.config.sockets_per_node)
        rows: List[Dict[str, Any]] = []
        for node in nodes:
            for socket in sockets:
                reads = rng.randrange(10**6)
                writes = rng.randrange(10**6)
                prev_t: Optional[float] = None
                for t in self._sample_times(start, duration, period, rng):
                    model, t_rel = self._workload_at(node, t)
                    if prev_t is not None:
                        dt = t - prev_t
                        noise = 1.0 + rng.gauss(0.0, 0.03)
                        reads += int(model.memory_read_rate * dt * noise)
                        writes += int(model.memory_write_rate * dt * noise)
                        if rng.random() < self.RESET_PROBABILITY:
                            reads = writes = 0
                    prev_t = t
                    rows.append(
                        {
                            "nodeid": node,
                            "socket": socket,
                            "time": Timestamp(round(t, 3)),
                            "mem_reads": reads,
                            "mem_writes": writes,
                            "power": round(
                                model.socket_power + rng.gauss(0.0, 2.0), 2
                            ),
                            "thermal_margin": round(
                                model.thermal_margin_at(t_rel)
                                + rng.gauss(0.0, 0.5),
                                2,
                            ),
                        }
                    )
        return rows

    def ldms_rows(
        self,
        nodes: Optional[Sequence[int]] = None,
        start: float = 0.0,
        duration: float = 1800.0,
        period: float = 1.0,
    ) -> List[Dict[str, Any]]:
        """Per-node OS-level metrics (the LDMS stream)."""
        rng = random.Random(self.seed + 2)
        nodes = list(nodes) if nodes is not None else self.facility.nodes()
        rows: List[Dict[str, Any]] = []
        for node in nodes:
            ctx_switches = rng.randrange(10**5)
            prev_t: Optional[float] = None
            for t in self._sample_times(start, duration, period, rng):
                model, _t_rel = self._workload_at(node, t)
                busy = model is not IDLE
                if prev_t is not None:
                    dt = t - prev_t
                    rate = 8000.0 if busy else 300.0
                    ctx_switches += int(rate * dt * (1 + rng.gauss(0, 0.1)))
                    if rng.random() < self.RESET_PROBABILITY:
                        ctx_switches = 0
                prev_t = t
                rows.append(
                    {
                        "nodeid": node,
                        "time": Timestamp(round(t, 3)),
                        "cpu_util": round(
                            min(
                                100.0,
                                max(
                                    0.0,
                                    (92.0 if busy else 3.0)
                                    + rng.gauss(0.0, 3.0),
                                ),
                            ),
                            2,
                        ),
                        "free_memory": round(
                            (20000.0 if busy else 60000.0)
                            + rng.gauss(0.0, 800.0),
                            1,
                        ),
                        "context_switches": ctx_switches,
                    }
                )
        return rows
