"""ColumnBatch representation: encoding, round trips, surgery ops."""

import math
import pickle

from repro.columnar import ColumnBatch, count_rows


def test_row_round_trip_sparse():
    rows = [
        {"a": 1.0, "b": "x"},
        {"a": 2.0},
        {"b": "y", "c": 7},
        {},
    ]
    batch = ColumnBatch.from_rows(rows)
    assert batch.num_rows == 4
    assert batch.to_rows() == rows


def test_kind_selection():
    batch = ColumnBatch.from_rows([
        {"f": 1.5, "q": 3, "s": "node-1", "o": [1, 2], "b": True,
         "m": 1},
        {"f": 2.5, "q": 4, "s": "node-2", "o": [3], "b": False,
         "m": 2.0},
    ])
    assert batch.cols["f"].kind == "f"
    assert batch.cols["q"].kind == "q"
    assert batch.cols["s"].kind == "dict"
    assert batch.cols["o"].kind == "obj"
    # bools and mixed int/float columns must not be coerced
    assert batch.cols["b"].kind == "obj"
    assert batch.cols["m"].kind == "obj"
    assert batch.to_rows()[0]["b"] is True
    assert batch.to_rows()[1]["m"] == 2.0


def test_huge_ints_fall_back_to_obj():
    big = 2 ** 70
    batch = ColumnBatch.from_rows([{"x": big}, {"x": 1}])
    assert batch.cols["x"].kind == "obj"
    assert batch.to_rows()[0]["x"] == big


def test_dictionary_encoding_dedupes():
    rows = [{"app": "AMG" if i % 2 else "LULESH"} for i in range(100)]
    batch = ColumnBatch.from_rows(rows)
    col = batch.cols["app"]
    assert col.kind == "dict"
    assert sorted(col.dictionary) == ["AMG", "LULESH"]
    assert batch.to_rows() == rows


def test_none_values_are_nulls():
    batch = ColumnBatch.from_rows([{"a": None, "b": 1.0}, {"a": 2.0}])
    assert batch.to_rows() == [{"b": 1.0}, {"a": 2.0}]
    assert batch.column_values("a") == [None, 2.0]
    assert batch.column_values("missing") == [None, None]


def test_nan_is_a_value_not_a_null():
    batch = ColumnBatch.from_rows([{"v": float("nan")}])
    out = batch.to_rows()
    assert "v" in out[0] and math.isnan(out[0]["v"])


def test_take_filter_project_rename():
    rows = [{"a": float(i), "s": f"s{i % 2}"} for i in range(6)]
    batch = ColumnBatch.from_rows(rows)
    assert batch.take([5, 0]).to_rows() == [rows[5], rows[0]]
    assert batch.filter([1, 0, 1, 0, 1, 0]).to_rows() == rows[::2]
    assert batch.project(["a"]).columns() == ["a"]
    assert batch.project(["a", "ghost"]).columns() == ["a"]
    renamed = batch.rename("a", "z")
    assert renamed.columns() == ["z", "s"]
    assert renamed.to_rows()[0] == {"z": 0.0, "s": "s0"}


def test_concat_pads_sparse_columns():
    left = ColumnBatch.from_rows([{"a": 1.0}])
    right = ColumnBatch.from_rows([{"b": "x"}])
    merged = ColumnBatch.concat([left, right])
    assert merged.num_rows == 2
    assert merged.to_rows() == [{"a": 1.0}, {"b": "x"}]


def test_concat_edges():
    one = ColumnBatch.from_rows([{"a": 1.0}])
    assert ColumnBatch.concat([one]) is one
    empty = ColumnBatch.concat([])
    assert empty.num_rows == 0 and empty.to_rows() == []


def test_drop_all_null_rows():
    batch = ColumnBatch.from_rows([{"a": 1.0}, {"b": 2.0}])
    kept = batch.project(["a"]).drop_all_null_rows()
    assert kept.to_rows() == [{"a": 1.0}]


def test_key_tuples():
    rows = [{"n": 1, "r": "a"}, {"n": 2}, {"r": "b"}]
    batch = ColumnBatch.from_rows(rows)
    assert batch.key_tuples(["n", "r"]) == [
        (1, "a"), (2, None), (None, "b")
    ]
    assert batch.key_tuples([]) == [(), (), ()]


def test_count_rows_mixed_elements():
    batch = ColumnBatch.from_rows([{"a": 1.0}, {"a": 2.0}])
    assert count_rows([batch, batch]) == 4
    assert count_rows([{"a": 1.0}, {"a": 2.0}]) == 2
    assert count_rows([]) == 0


def test_batches_pickle_round_trip():
    rows = [{"a": float(i), "s": f"s{i}", "q": i} for i in range(5)]
    rows.append({"s": "only"})
    batch = ColumnBatch.from_rows(rows)
    clone = pickle.loads(pickle.dumps(batch))
    assert clone.to_rows() == rows
    assert clone.cols["s"].kind == "dict"


def test_approx_bytes_positive_and_monotonic():
    small = ColumnBatch.from_rows([{"a": 1.0}])
    big = ColumnBatch.from_rows([{"a": float(i)} for i in range(1000)])
    assert 0 < small.approx_bytes() < big.approx_bytes()
