"""§5.2 (implicit): the derivation engine answers queries at
interactive rates, even over catalogs much larger than the case
studies', thanks to schema-only search, pruning, and memoization.
"""

from __future__ import annotations

import pytest

from repro import DerivationEngine, Query, default_dictionary
from repro.core.semantics import Schema, domain, value


def _wide_catalog(num_entities: int = 8):
    """A catalog of 2×N datasets: per-entity sensor streams plus
    layout tables chaining entity i to entity i+1."""
    d = default_dictionary()
    catalog = {}
    for i in range(num_entities):
        d.define_dimension(f"entity{i}", continuous=False, ordered=False)
        d.define_dimension(f"metric{i}", continuous=True, ordered=True)
        d.define_unit(f"metric{i} units", "quantity", f"metric{i}")
        catalog[f"stream{i}"] = Schema({
            "id": domain(f"entity{i}", "identifier"),
            "time": domain("time", "datetime"),
            "value": value(f"metric{i}", f"metric{i} units"),
        })
        if i > 0:
            catalog[f"layout{i}"] = Schema({
                "child": domain(f"entity{i}", "identifier"),
                "parent": domain(f"entity{i - 1}", "identifier"),
            })
    return d, catalog


@pytest.fixture(scope="module")
def wide():
    return _wide_catalog()


def test_neighbor_query_latency(benchmark, wide):
    d, catalog = wide
    engine = DerivationEngine(d)
    q = Query.of(domains=["entity2", "entity3"], values=["metric2"])
    plan = benchmark(engine.solve, catalog, q)
    assert plan is not None
    assert benchmark.stats["mean"] < 0.5


def test_three_dataset_query_latency(benchmark, wide):
    d, catalog = wide
    engine = DerivationEngine(d)
    q = Query.of(domains=["entity4", "entity5"], values=["metric4", "metric5"])
    plan = benchmark(engine.solve, catalog, q)
    assert plan is not None
    assert benchmark.stats["mean"] < 1.0


def test_memoization_speeds_up_repeat_queries(benchmark, wide):
    d, catalog = wide
    from repro.util import Timer

    def run():
        engine = DerivationEngine(d)
        q1 = Query.of(domains=["entity1", "entity2"], values=["metric1"])
        q2 = Query.of(domains=["entity1", "entity2"], values=["metric2"])
        with Timer() as cold:
            engine.solve(catalog, q1)
        with Timer() as warm:
            engine.solve(catalog, q2)  # reuses memoized CombinePair
        return cold.elapsed, warm.elapsed

    cold_s, warm_s = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cold_s"] = cold_s
    benchmark.extra_info["warm_s"] = warm_s
    assert warm_s <= cold_s * 1.5  # never catastrophically slower


def test_no_solution_fails_fast(benchmark, wide):
    d, catalog = wide
    from repro.errors import NoSolutionError

    engine = DerivationEngine(d)
    # entity0 and entity7 are 7 layout hops apart — beyond max_datasets
    q = Query.of(domains=["entity0", "entity7"], values=["metric0"])

    def run():
        with pytest.raises(NoSolutionError):
            engine.solve(catalog, q)

    benchmark.pedantic(run, rounds=1, iterations=1)
    # even exhausting the search stays interactive
    assert benchmark.stats["mean"] < 30.0
