"""Semantic dictionary: keyword authority, synonym/homonym rejection,
schema validation."""

import pytest

from repro.core.dictionary import SemanticDictionary, default_dictionary
from repro.core.semantics import Schema, domain, value
from repro.errors import DictionaryError, SemanticError
from repro.units.registry import UnitRegistry


@pytest.fixture()
def d():
    return default_dictionary()


def test_define_dimension_idempotent(d):
    d.define_dimension("network links", continuous=False, ordered=False)
    d.define_dimension("network links", continuous=False, ordered=False)


def test_homonym_dimension_rejected(d):
    with pytest.raises(DictionaryError, match="homonym"):
        d.define_dimension("time", continuous=False, ordered=False)


def test_homonym_unit_rejected(d):
    with pytest.raises(DictionaryError, match="homonym"):
        d.define_unit("watts", "quantity", "power", scale=5.0)


def test_synonym_unit_rejected(d):
    # "centigrade" would mean exactly what "degrees Celsius" means
    with pytest.raises(DictionaryError, match="synonym"):
        d.define_unit("centigrade", "quantity", "temperature",
                      scale=1.0, offset=0.0)


def test_distinct_quantity_unit_accepted(d):
    d.define_unit("decidegrees", "quantity", "temperature", scale=0.1)
    assert d.convert(100.0, "decidegrees", "degrees Celsius") == \
        pytest.approx(10.0)


def test_same_scale_different_dimension_accepted(d):
    # the paper's example: "t_seconds" vs "d_seconds" must be
    # distinguishable by living on different dimensions
    d.define_dimension("angle", continuous=True, ordered=True)
    d.define_unit("angular seconds", "quantity", "angle", scale=1.0)


def test_generic_units_exempt_from_synonym_check(d):
    d.define_unit("tag", "label")
    d.define_unit("serial", "identifier")


def test_interpolatable(d):
    assert d.interpolatable("time")
    assert not d.interpolatable("compute nodes")
    assert not d.interpolatable("event count")


def test_validate_schema_accepts_known(d):
    d.validate_schema(Schema({
        "node": domain("compute nodes", "identifier"),
        "temp": value("temperature", "degrees Celsius"),
    }))


def test_validate_schema_unknown_dimension(d):
    with pytest.raises(SemanticError, match="unknown dimension"):
        d.validate_schema(Schema({"x": domain("flux", "identifier")}))


def test_validate_schema_unknown_units(d):
    with pytest.raises(SemanticError, match="unknown unit"):
        d.validate_schema(Schema({"x": domain("time", "fortnights")}))


def test_validate_schema_unit_dimension_mismatch(d):
    with pytest.raises(SemanticError, match="lies on dimension"):
        d.validate_schema(
            Schema({"x": value("power", "degrees Celsius")})
        )


def test_validate_schema_generic_unit_any_dimension(d):
    d.validate_schema(Schema({"x": domain("racks", "identifier")}))
    d.validate_schema(Schema({"x": domain("jobs", "identifier")}))


def test_empty_dictionary_knows_nothing():
    d = SemanticDictionary(UnitRegistry())
    assert not d.has_dimension("time")
    with pytest.raises(DictionaryError):
        d.unit("seconds")
