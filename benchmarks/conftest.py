"""Shared benchmark fixtures and the paper-style series recorder.

Every benchmark prints the series it measures (time vs. rows, time vs.
workers, …) in the same shape as the paper's figure and also appends it
to ``benchmarks/results/<figure>.txt`` so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

import os
from typing import List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class SeriesRecorder:
    """Collects (x, y) points per series and renders a small table."""

    def __init__(self, figure: str, x_label: str, y_label: str) -> None:
        self.figure = figure
        self.x_label = x_label
        self.y_label = y_label
        self.rows: List[tuple] = []

    def add(self, x, y, note: str = "") -> None:
        self.rows.append((x, y, note))

    def render(self) -> str:
        lines = [
            f"== {self.figure} ==",
            f"{self.x_label:>16}  {self.y_label:>14}  note",
        ]
        for x, y, note in self.rows:
            lines.append(f"{x!s:>16}  {y:>14.4f}  {note}")
        return "\n".join(lines)

    def flush(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.figure}.txt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render() + "\n")
        print("\n" + self.render())


@pytest.fixture(scope="module")
def recorder_factory():
    recorders: List[SeriesRecorder] = []

    def make(figure: str, x_label: str, y_label: str) -> SeriesRecorder:
        r = SeriesRecorder(figure, x_label, y_label)
        recorders.append(r)
        return r

    yield make
    for r in recorders:
        r.flush()


def assert_roughly_linear(xs: Sequence[float], ys: Sequence[float],
                          tolerance: float = 4.0) -> None:
    """The paper's Figure 3 claim: time grows linearly with rows.

    Checks that time-per-row stays within ``tolerance``× between the
    smallest and largest problem size — superlinear (quadratic) growth
    fails this immediately, constant overhead dominating small sizes
    is tolerated.
    """
    per_row = [y / x for x, y in zip(xs, ys)]
    assert max(per_row) / min(per_row) < tolerance, (
        f"scaling is not linear: per-row costs {per_row}"
    )


@pytest.fixture(scope="session")
def shape():
    """Access to shape assertions from bench modules (conftest is not
    importable as a module from the benchmarks directory)."""
    import types

    return types.SimpleNamespace(assert_roughly_linear=assert_roughly_linear)
