"""Storage-column predicates: the language the scan layer understands.

A :class:`ColumnPredicate` is a conjunction of simple per-column terms
— equality (:class:`EqTerm`) and half-open ranges (:class:`RangeTerm`)
— over *storage column names*, not dimensions. The pushdown rewrite
(:mod:`repro.core.pushdown`) translates dimension-level filter
derivations into these terms; sources and the wide-column store only
ever see the translated form, so they stay ignorant of semantics.

Row semantics deliberately mirror the filter transformations they are
compiled from (``FilterEquals`` / ``FilterRange`` in
:mod:`repro.core.transformations`), so a pushed scan and a
scan-then-filter plan return identical rows:

- ``EqTerm``: keep rows where ``row.get(col) == value`` — a row
  *missing* the column matches only ``value is None``;
- ``RangeTerm``: keep rows where the column is present and
  ``low <= epoch(v) < high`` (datetime values compare by ``.epoch``);
  rows missing the column never match.

Zone-map pruning (:meth:`ColumnPredicate.segment_may_match`) answers
"could ANY row in this segment match?" from per-segment column
min/max/null statistics; it must never return False for a segment that
contains a matching row, so every uncertain case answers True.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _epoch(value: Any) -> Any:
    """Normalize orderable values the way FilterRange does."""
    return getattr(value, "epoch", value)


@dataclass(frozen=True)
class EqTerm:
    """``column == value`` (missing column matches only value None)."""

    column: str
    value: Any

    op = "eq"

    def matches(self, row: Dict[str, Any]) -> bool:
        return row.get(self.column) == self.value

    def to_json_dict(self) -> Dict[str, Any]:
        return {"op": "eq", "column": self.column, "value": self.value}


@dataclass(frozen=True)
class RangeTerm:
    """``low <= epoch(row[column]) < high``; missing column fails."""

    column: str
    low: Optional[float] = None
    high: Optional[float] = None

    op = "range"

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise ValueError("RangeTerm needs low and/or high")

    def matches(self, row: Dict[str, Any]) -> bool:
        if self.column not in row:
            return False
        v = _epoch(row[self.column])
        try:
            if self.low is not None and v < self.low:
                return False
            if self.high is not None and v >= self.high:
                return False
        except TypeError:
            return False  # unorderable stored value can never be in range
        return True

    def to_json_dict(self) -> Dict[str, Any]:
        return {"op": "range", "column": self.column,
                "low": self.low, "high": self.high}


class ColumnPredicate:
    """An immutable conjunction of :class:`EqTerm`/:class:`RangeTerm`.

    ``matches(row)`` is the row-level truth; ``segment_may_match`` and
    ``partition_may_match`` are the conservative pruning oracles used
    by the store and the sources.
    """

    def __init__(self, terms: Sequence[Any]) -> None:
        self.terms: Tuple[Any, ...] = tuple(terms)

    # -- construction --------------------------------------------------

    @staticmethod
    def equals(column: str, value: Any) -> "ColumnPredicate":
        return ColumnPredicate([EqTerm(column, value)])

    @staticmethod
    def range(
        column: str,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> "ColumnPredicate":
        return ColumnPredicate([RangeTerm(column, low, high)])

    def also(self, other: Optional["ColumnPredicate"]) -> "ColumnPredicate":
        """Conjunction with another predicate (None = no-op)."""
        if other is None or not other.terms:
            return self
        return ColumnPredicate(self.terms + other.terms)

    # -- row-level evaluation ------------------------------------------

    def matches(self, row: Dict[str, Any]) -> bool:
        return all(t.matches(row) for t in self.terms)

    def columns(self) -> List[str]:
        seen: List[str] = []
        for t in self.terms:
            if t.column not in seen:
                seen.append(t.column)
        return seen

    # -- pruning oracles -----------------------------------------------

    def segment_may_match(self, zone: Optional[Dict[str, Any]]) -> bool:
        """Could any row of a segment with zone stats ``zone`` match?

        ``zone`` is the per-segment sidecar written by ``Table.flush``:
        ``{"rows": n, "columns": {col: {"min", "max", "nulls", "nans"}}}``
        where min/max cover non-null finite values only. Unknown or
        missing statistics always answer True.
        """
        if not zone:
            return True
        rows = zone.get("rows", 0)
        cols = zone.get("columns") or {}
        for t in self.terms:
            stats = cols.get(t.column)
            if stats is None:
                # the column appears in no row of this segment: an Eq
                # against None still matches (missing == None), every
                # other term fails for all rows.
                if isinstance(t, EqTerm) and t.value is None:
                    continue
                return False
            nulls = stats.get("nulls", 0)
            if isinstance(t, EqTerm) and t.value is None:
                if nulls == 0 and rows > 0:
                    return False  # every row holds a non-null value
                continue
            if isinstance(t, RangeTerm) and nulls >= rows and rows > 0:
                return False  # present only as nulls — range never holds
            if stats.get("nans", 0):
                # NaN/±inf rows sit outside min/max: a NaN passes every
                # RangeTerm at row level (both bound comparisons are
                # False) and ±inf can equal an infinite EqTerm value,
                # so min/max pruning is unsound for this column.
                continue
            lo, hi = stats.get("min"), stats.get("max")
            if lo is None or hi is None:
                continue  # unorderable or untracked column: can't prune
            try:
                if isinstance(t, EqTerm):
                    v = _epoch(t.value)
                    if v < lo or v > hi:
                        return False
                else:
                    if t.low is not None and hi < t.low:
                        return False
                    if t.high is not None and lo >= t.high:
                        return False
            except TypeError:
                continue  # incomparable: stay conservative
        return True

    def partition_may_match(
        self, key_columns: Sequence[str], key: Tuple[Any, ...]
    ) -> bool:
        """Could rows of partition ``key`` (over ``key_columns``) match?"""
        for t in self.terms:
            if t.column not in key_columns:
                continue
            value = key[list(key_columns).index(t.column)]
            if not t.matches({t.column: value}):
                return False
        return True

    def any_partition_may_match(
        self,
        key_columns: Sequence[str],
        keys: Sequence[Tuple[Any, ...]],
    ) -> bool:
        """Could any of a *collection* of partitions match?

        The shard-routing oracle: a shard owning partition keys
        ``keys`` (over ``key_columns``) needs to see a query exactly
        when at least one of its partitions may hold a matching row.
        Conservative like the per-partition form — an empty key set
        means the shard provably holds no rows and is safely skipped,
        but any uncertain key answers True.
        """
        return any(
            self.partition_may_match(key_columns, key) for key in keys
        )

    # -- serialization -------------------------------------------------

    def to_json_dict(self) -> List[Dict[str, Any]]:
        return [t.to_json_dict() for t in self.terms]

    @staticmethod
    def from_json_dict(data: Sequence[Dict[str, Any]]) -> "ColumnPredicate":
        terms: List[Any] = []
        for d in data:
            if d.get("op") == "eq":
                terms.append(EqTerm(d["column"], d.get("value")))
            elif d.get("op") == "range":
                terms.append(RangeTerm(d["column"], d.get("low"),
                                       d.get("high")))
            else:
                raise ValueError(f"unknown predicate term {d!r}")
        return ColumnPredicate(terms)

    # -- dunder --------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnPredicate) and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash(self.terms)

    def __repr__(self) -> str:
        parts = []
        for t in self.terms:
            if isinstance(t, EqTerm):
                parts.append(f"{t.column}=={t.value!r}")
            else:
                lo = "-inf" if t.low is None else repr(t.low)
                hi = "+inf" if t.high is None else repr(t.high)
                parts.append(f"{lo}<={t.column}<{hi}")
        return f"ColumnPredicate({' AND '.join(parts) or 'true'})"
