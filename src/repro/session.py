"""ScrubJaySession: the single entry point for performance analysts.

A session ties together everything the paper's Figure 2 shows around
the query API: the simulated data cluster (an
:class:`~repro.rdd.context.SJContext`), the active semantic
dictionary, the derivation registry (built-ins plus expert-provided
extensions), the catalog of registered datasets, the derivation
engine, and optionally an on-disk derivation cache.

Typical use::

    from repro import ScrubJaySession

    sj = ScrubJaySession()
    sj.register_rows(rows, schema, name="rack_temperatures")
    answer = (sj.query()
              .across("jobs", "racks")
              .values("applications", "heat")
              .ask())
    print(answer.plan.describe())   # the Figure-5-style graph
    answer.collect()                # the result rows

``sj.query()`` with no arguments returns a session-bound
:class:`~repro.core.query.QueryBuilder`; ``ask``/``execute`` return an
:class:`~repro.core.answer.Answer` bundling the result dataset, the
executed plan, and (when tracing is on) the root trace span.
``sj.explain(query, analyze=True)`` executes the plan and renders
per-node runtime statistics — EXPLAIN ANALYZE.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import warnings
from typing import Any, Dict, List, Optional, Sequence, Type, Union

from repro.config import ServeConfig, TuningProfile
from repro.errors import ConfigError, ScrubJayError
from repro.core.answer import Answer
from repro.core.cache import DerivationCache
from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import (
    Derivation,
    DerivationRegistry,
    GLOBAL_REGISTRY,
)
from repro.core.dictionary import SemanticDictionary, default_dictionary
from repro.core.engine import DerivationEngine, EngineConfig
from repro.core.pipeline import DerivationPlan
from repro.core.query import Query, QueryBuilder, ValueSpec
from repro.core.semantics import Schema
from repro.obs.export import render_analyze
from repro.obs.trace import Tracer
from repro.util.hashing import content_hash

# Importing these modules registers ScrubJay's built-in derivations.
import repro.core.transformations  # noqa: F401
import repro.core.combinations  # noqa: F401
import repro.core.domain_derivations  # noqa: F401


#: flat constructor kwargs from the pre-profile era, each folded into
#: the equivalent profile knob by the one-release deprecation shim
_LEGACY_SESSION_KWARGS = (
    "config",
    "cache_dir",
    "cache_max_entries",
    "num_workers",
    "adaptive",
    "broadcast_threshold",
)


class ScrubJaySession:
    """Catalog + dictionary + engine + (optional) cache, in one handle."""

    def __init__(
        self,
        profile: Optional[TuningProfile] = None,
        *,
        ctx=None,
        dictionary: Optional[SemanticDictionary] = None,
        registry: Optional[DerivationRegistry] = None,
        executor=None,
        retry_policy=None,
        tracer: Optional[Tracer] = None,
        **legacy: Any,
    ) -> None:
        """All scalar knobs live on the ``profile`` (a
        :class:`~repro.config.TuningProfile`) — engine search depths,
        adaptive-execution thresholds, cache sizing, executor kind,
        retry budgets, serve-tier defaults, and the self-tuner switch::

            sj = ScrubJaySession(TuningProfile(
                executor_kind="processes", columnar=True,
                cache_dir="/tmp/sj", tuning_enabled=True,
            ))

        Values set on the profile are *user-pinned* — the online tuner
        (enabled via ``tuning.enabled``) never overrides them. When the
        profile has a ``session.cache_dir``, tuned knob values persist
        there and re-load on the next startup.

        Rich objects stay keyword arguments: a ready-made ``ctx``
        (:class:`~repro.rdd.context.SJContext`), ``dictionary``,
        ``registry``, an :class:`~repro.rdd.Executor` *instance* as
        ``executor``, a :class:`~repro.rdd.RetryPolicy` as
        ``retry_policy``, and an enabled :class:`~repro.obs.Tracer`
        as ``tracer``.

        The pre-profile flat kwargs (``cache_dir=``, ``adaptive=``,
        ``broadcast_threshold=``, ...) still work for one release via
        a :class:`DeprecationWarning` shim that folds them into the
        profile."""
        from repro.rdd.context import SJContext

        if profile is not None and not isinstance(profile, TuningProfile):
            # pre-profile signature took a ready-made ctx positionally
            if ctx is not None:
                raise ScrubJayError("pass either ctx or profile first")
            warnings.warn(
                "passing a ctx positionally is deprecated; use "
                "ScrubJaySession(ctx=...) (the first parameter is now "
                "the TuningProfile)",
                DeprecationWarning,
                stacklevel=2,
            )
            ctx, profile = profile, None
        self.profile = profile if profile is not None else TuningProfile()
        if ctx is not None and executor is not None:
            raise ScrubJayError("pass either ctx or executor, not both")
        if isinstance(executor, str):
            warnings.warn(
                "executor=<kind name> is deprecated; set it on the "
                "profile: TuningProfile(executor_kind=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            self.profile.set("executor.kind", executor)
            executor = None
        if legacy:
            self._fold_legacy_kwargs(legacy)
        cache_dir = self.profile.get("session.cache_dir")
        # Re-load persisted tuned knobs *before* the frozen configs are
        # derived, so a restarted session starts where tuning left off.
        self._tuning_path = (
            os.path.join(cache_dir, "tuning_profile.json")
            if cache_dir
            else None
        )
        if self._tuning_path and os.path.exists(self._tuning_path):
            self.profile.load_tuned(self._tuning_path)

        if ctx is not None and executor is not None:
            raise ScrubJayError("pass either ctx or executor, not both")
        if ctx is not None and tracer is not None:
            raise ScrubJayError(
                "pass either ctx or tracer, not both (a ready-made "
                "ctx carries its own tracer)"
            )
        self.ctx = ctx or SJContext(
            executor=executor or self.profile.get("executor.kind"),
            num_workers=self.profile.get("executor.num_workers"),
            retry_policy=retry_policy or self.profile.retry_policy(),
            adaptive=self.profile.adaptive_config(),
            tracer=tracer,
        )
        self.dictionary = dictionary or default_dictionary()
        # Copy the global registry so session-local expert derivations
        # do not leak between sessions.
        self.registry = (registry or GLOBAL_REGISTRY).copy()
        self.engine = DerivationEngine(
            self.dictionary, self.registry, self.profile.engine_config()
        )
        # The engine shares the context's tracer/registry object, so a
        # solve run by the serve layer or by EXPLAIN ANALYZE lands in
        # the same trace tree as the stages it leads to.
        self.engine.tracer = self.ctx.tracer
        self.engine.metrics = self.ctx.metrics
        self.catalog: Dict[str, ScrubJayDataset] = {}
        # Catalog mutation (register/drop) may race with in-flight
        # queries when the session backs a QueryService: the lock makes
        # each mutation atomic and the version counter lets serve-layer
        # caches detect that the *data* changed even when the schema
        # set (and hence state_fingerprint's schema part) did not —
        # e.g. drop + re-register of same-named, same-schema rows.
        self._catalog_lock = threading.RLock()
        self._catalog_version = 0
        # Streaming: datasets tailed as live feeds, plus a per-dataset
        # data version bumped by feed advances. Deliberately separate
        # from catalog_version — an append changes one dataset's rows,
        # not the catalog shape, so only caches keyed on that dataset
        # should churn (see repro.stream).
        self.feeds: Dict[str, Any] = {}
        self._data_versions: Dict[str, int] = {}
        self.cache: Optional[DerivationCache] = (
            DerivationCache(
                cache_dir, self.profile.get("session.cache_max_entries")
            )
            if cache_dir
            else None
        )
        self._cache_dir = cache_dir
        # Materialized rollups (repro.metrics): name -> Rollup handle.
        # The backing wide-column store is created lazily on first
        # session.rollup() — under cache_dir when one was given, else
        # in an owned temp dir removed on close().
        self.rollups: Dict[str, Any] = {}
        self._rollup_store_obj = None
        self._rollup_dir_owned: Optional[str] = None
        # The online tuner (ROADMAP item 5): observes the execution
        # report after each query, adjusts tunable knobs through the
        # profile. The listener below is what makes those writes take
        # effect — the frozen EngineConfig/AdaptiveConfig objects the
        # hot paths read are swapped wholesale on every knob change.
        self.tuner = None
        if self.profile.get("tuning.enabled"):
            from repro.tuning import Tuner

            self.tuner = Tuner(
                self.profile,
                self.ctx.report,
                metrics=self.ctx.metrics,
                store_path=self._tuning_path,
            )
        self._profile_listener = self.profile.on_change(
            self._on_profile_change
        )

    def _fold_legacy_kwargs(self, legacy: Dict[str, Any]) -> None:
        """The one-release deprecation shim: fold pre-profile flat
        kwargs into the profile, warn once per construction."""
        unknown = [k for k in legacy if k not in _LEGACY_SESSION_KWARGS]
        if unknown:
            raise ConfigError(
                f"unknown ScrubJaySession argument(s) "
                f"{', '.join(sorted(unknown))}; scalar knobs go on the "
                f"TuningProfile", knob=sorted(unknown)[0],
            )
        warnings.warn(
            f"flat ScrubJaySession kwargs "
            f"({', '.join(sorted(legacy))}) are deprecated; set them "
            f"on a TuningProfile: ScrubJaySession(TuningProfile(...))",
            DeprecationWarning,
            stacklevel=3,
        )
        cfg = legacy.get("config")
        if cfg is not None:
            defaults = EngineConfig()
            for f in dataclasses.fields(EngineConfig):
                value = getattr(cfg, f.name)
                if value != getattr(defaults, f.name):
                    self.profile.set(f"engine.{f.name}", value)
        adaptive = legacy.get("adaptive")
        if adaptive is not None:
            from repro.rdd.stats import AdaptiveConfig

            defaults = AdaptiveConfig()
            for f in dataclasses.fields(AdaptiveConfig):
                value = getattr(adaptive, f.name)
                if value != getattr(defaults, f.name):
                    self.profile.set(f"adaptive.{f.name}", value)
        simple = {
            "cache_dir": "session.cache_dir",
            "cache_max_entries": "session.cache_max_entries",
            "num_workers": "executor.num_workers",
            "broadcast_threshold": "adaptive.broadcast_threshold_bytes",
        }
        for key, knob in simple.items():
            if legacy.get(key) is not None:
                self.profile.set(knob, legacy[key])

    def _on_profile_change(self, name: str, old: Any, new: Any) -> None:
        """Profile listener: re-derive the frozen config objects the
        engine and context read, so knob writes (user or tuner) take
        effect on the next query."""
        if name.startswith("adaptive."):
            cfg = self.profile.adaptive_config()
            self.ctx.adaptive = cfg
            self.ctx.planner.config = cfg
        elif name.startswith("engine."):
            self.engine.config = self.profile.engine_config()

    def _observe_tuning(self) -> None:
        if self.tuner is not None:
            self.tuner.observe()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------

    def register(
        self, dataset: ScrubJayDataset, name: Optional[str] = None
    ) -> ScrubJayDataset:
        """Validate a dataset against the dictionary and add it to the
        catalog under ``name`` (defaults to the dataset's own name)."""
        name = name or dataset.name
        dataset.validate(self.dictionary)
        with self._catalog_lock:
            if name in self.catalog:
                raise ScrubJayError(f"dataset {name!r} already registered")
            dataset.name = name
            self.catalog[name] = dataset
            self._catalog_version += 1
        return dataset

    def register_rows(
        self,
        rows: List[Dict[str, Any]],
        schema: Schema,
        name: str,
        num_partitions: Optional[int] = None,
    ) -> ScrubJayDataset:
        """Wrap in-memory rows and register them in one step."""
        ds = ScrubJayDataset.from_rows(
            self.ctx, rows, schema, name, num_partitions
        )
        return self.register(ds)

    def ingest(self) -> "IngestBuilder":  # noqa: F821
        """Fluent ingestion of external data as a lazily scanned,
        partitioned dataset (the successor to the wrapper classes)::

            sj.ingest().csv("temps.csv", schema).register("temps")
            sj.ingest().sql("perf.db", schema, table="samples") \\
              .partitions(8).register("samples")

        Each chained call configures one :class:`~repro.sources.base.
        DataSource`; ``register(name)`` (or ``load()``) produces a
        dataset backed by a :class:`~repro.rdd.rdd.ScanRDD`, read
        partition by partition inside workers — and eligible for
        predicate/projection pushdown into the source.
        """
        from repro.sources.ingest import IngestBuilder

        return IngestBuilder(self)

    def drop(self, name: str) -> ScrubJayDataset:
        """Remove a dataset from the catalog (queries already running
        against a snapshot that includes it are unaffected)."""
        with self._catalog_lock:
            try:
                ds = self.catalog.pop(name)
            except KeyError:
                raise ScrubJayError(
                    f"no dataset named {name!r}"
                ) from None
            self._catalog_version += 1
            self.feeds.pop(name, None)
            self._data_versions.pop(name, None)
            return ds

    def dataset(self, name: str) -> ScrubJayDataset:
        with self._catalog_lock:
            try:
                return self.catalog[name]
            except KeyError:
                raise ScrubJayError(f"no dataset named {name!r}") from None

    def schemas(self) -> Dict[str, Schema]:
        with self._catalog_lock:
            return {
                name: ds.schema for name, ds in self.catalog.items()
            }

    def snapshot(self) -> Dict[str, ScrubJayDataset]:
        """A point-in-time copy of the catalog mapping, safe to
        execute against while other threads register/drop datasets."""
        with self._catalog_lock:
            return dict(self.catalog)

    @property
    def catalog_version(self) -> int:
        """Monotonic counter bumped by every register/drop."""
        return self._catalog_version

    # ------------------------------------------------------------------
    # streaming feeds (see repro.stream)
    # ------------------------------------------------------------------

    def feed(self, name: str) -> Any:
        """The :class:`~repro.stream.Feed` tailing dataset ``name``."""
        with self._catalog_lock:
            try:
                return self.feeds[name]
            except KeyError:
                raise ScrubJayError(
                    f"no feed named {name!r}; create one with "
                    "session.ingest()....tail(name)"
                ) from None

    def _register_feed(self, feed: Any) -> None:
        with self._catalog_lock:
            self.feeds[feed.name] = feed
            self._data_versions.setdefault(feed.name, 0)

    def data_version(self, name: str) -> int:
        """Monotonic per-dataset counter bumped by feed advances.

        0 for datasets that never advanced — so result keys computed
        before streaming existed stay byte-identical.
        """
        with self._catalog_lock:
            return self._data_versions.get(name, 0)

    def data_versions(self) -> Dict[str, int]:
        """The non-zero per-dataset data versions (see
        :meth:`data_version`)."""
        with self._catalog_lock:
            return {
                k: v for k, v in self._data_versions.items() if v
            }

    def _bump_data_version(self, name: str) -> int:
        with self._catalog_lock:
            self._data_versions[name] = \
                self._data_versions.get(name, 0) + 1
            return self._data_versions[name]

    def state_fingerprint(self) -> str:
        """Content hash of everything a *plan* depends on: the catalog
        schemas, the dictionary version, and the registered derivation
        ops. Two sessions (or the same session at two instants) with
        equal fingerprints produce identical plans for identical
        queries — the serve-layer PlanCache keys on this.

        Note this deliberately excludes row contents: plans are
        schema-level. Result caching additionally keys on
        :attr:`catalog_version` to track data changes.
        """
        with self._catalog_lock:
            schema_part = {
                name: ds.schema.to_json_dict()
                for name, ds in self.catalog.items()
            }
        return content_hash({
            "schemas": schema_part,
            "dictionary_version": self.dictionary.version,
            "ops": self.registry.op_names(),
        })

    # ------------------------------------------------------------------
    # semantics & derivations
    # ------------------------------------------------------------------

    def define_dimension(
        self, name: str, continuous: bool, ordered: bool,
        description: str = ""
    ):
        return self.dictionary.define_dimension(
            name, continuous, ordered, description
        )

    def define_unit(self, name: str, kind: str,
                    dimension: Optional[str] = None,
                    scale: float = 1.0, offset: float = 0.0):
        return self.dictionary.define_unit(
            name, kind, dimension, scale, offset
        )

    def register_derivation(
        self, cls: Type[Derivation]
    ) -> Type[Derivation]:
        """Register a session-local expert derivation class."""
        return self.registry.register(cls)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def query(self) -> QueryBuilder:
        """A session-bound fluent
        :class:`~repro.core.query.QueryBuilder`::

            plan = sj.query().across("jobs", "racks").value("heat").plan()

        Metric queries add measure terminals::

            ans = (sj.query().measure("power", "p95")
                   .per("racks").grain("1h").ask())

        (The pre-1.0 two-argument form ``query(domains, values)`` was
        removed; use the builder, or :meth:`plan` with a built
        :class:`Query`.)
        """
        return QueryBuilder(self)

    def plan(self, query: Query) -> DerivationPlan:
        """Plan — but do not execute — a derivation sequence for a
        built :class:`Query`."""
        return self.engine.solve(self.schemas(), query)

    def _as_query(
        self,
        query: Union[Query, Sequence[str], None],
        values: Optional[Sequence[ValueSpec]],
        domains: Optional[Sequence[str]] = None,
    ) -> Query:
        """Normalize the accepted query spellings: a built ``Query``,
        an unbuilt :class:`QueryBuilder`, legacy positional
        ``(domains, values)``, or legacy ``domains=``/``values=``
        keywords."""
        if isinstance(query, QueryBuilder):
            return query.build()
        if isinstance(query, Query):
            return query
        if query is not None:
            return Query.of(query, values or ())
        return Query.of(domains or (), values or ())

    def explain(
        self,
        query: Union[Query, Sequence[str], None] = None,
        values: Optional[Sequence[ValueSpec]] = None,
        *,
        domains: Optional[Sequence[str]] = None,
        analyze: bool = False,
    ) -> str:
        """The Figure 5/7-style rendering of the plan for a query.

        With ``analyze=True`` this is EXPLAIN ANALYZE: the plan is
        *executed* (with per-node materialization) under a temporarily
        enabled tracer, and each node renders with its measured row
        count, approximate size, wall time, and derivation-cache
        outcome, prefixed by a summary of the engine's search. The
        resulting trace tree is also retained on ``ctx.tracer`` —
        ``ctx.tracer.last_root()`` returns it for programmatic use.
        """
        q = self._as_query(query, values, domains)
        if analyze:
            return self._explain_analyze(q)
        if q.is_metric:
            from repro.metrics.rollup import choose_rollup

            _, decision = choose_rollup(self.rollups, q)
            plan = self.plan(q.base())
            return "\n".join([plan.describe(), str(decision)])
        return self.plan(q).describe()

    def _explain_analyze(self, q: Query) -> str:
        tracer = self.ctx.tracer
        was_enabled = tracer.enabled
        tracer.enabled = True
        decision = None
        try:
            with tracer.span(
                "explain-analyze", kind="query", query=str(q)
            ) as root:
                if q.is_metric:
                    answer = self._ask_metric(
                        q, tracer=tracer, measure=True
                    )
                    decision = answer.decision
                else:
                    plan = self.engine.solve(self.schemas(), q)
                    plan.execute(
                        self.snapshot(),
                        self.dictionary,
                        self.cache,
                        tracer=tracer,
                        measure=True,
                        columnar=self.engine.config.columnar,
                        columnar_off=self.engine.config.columnar_off_ops,
                    )
                    if self.cache is not None:
                        self.ctx.report.set_cache_stats(
                            self.cache.stats()
                        )
                    self._observe_tuning()
        finally:
            tracer.enabled = was_enabled
        lines = [f"EXPLAIN ANALYZE {q}"]
        if decision is not None:
            lines.append(str(decision))
        # knob adjustments the tuner applied during (or before) this
        # run are part of the explanation: each one is auditable here
        for td in self.ctx.report.tunings():
            lines.append(str(td))
        solve = root.find("solve")
        if solve is not None:
            c = solve.counters
            lines.append(
                f"solve: {solve.duration * 1e3:.1f}ms;"
                f" {int(c.get('candidates_explored', 0))} candidates"
                f" explored ({int(c.get('candidates_pruned', 0))}"
                f" pruned);"
                f" {int(c.get('subsets_examined', 0))} subsets;"
                f" pair-memo {int(c.get('pair_memo_hits', 0))} hits /"
                f" {int(c.get('pair_memo_misses', 0))} misses"
            )
        lines.append(render_analyze(root))
        return "\n".join(lines)

    def execute(self, plan: DerivationPlan) -> Answer:
        """Execute a plan against the registered data.

        Runs against a point-in-time catalog snapshot, so concurrent
        ``register``/``drop`` calls cannot mutate the mapping mid-walk;
        afterwards the derivation-cache counters are published into
        ``ctx.report`` for machine-readable inspection. Returns an
        :class:`Answer` (its unknown attributes delegate to the result
        dataset, so dataset-shaped call sites keep working).
        """
        tracer = self.ctx.tracer
        if tracer.enabled:
            with tracer.span("execute", kind="query") as root:
                dataset = self._run_plan(plan, tracer)
            return Answer(dataset, plan, root)
        return Answer(self._run_plan(plan, None), plan, None)

    def _run_plan(
        self, plan: DerivationPlan, tracer
    ) -> ScrubJayDataset:
        result = plan.execute(
            self.snapshot(), self.dictionary, self.cache, tracer=tracer,
            columnar=self.engine.config.columnar,
            columnar_off=self.engine.config.columnar_off_ops,
        )
        if self.cache is not None:
            self.ctx.report.set_cache_stats(self.cache.stats())
        self._observe_tuning()
        return result

    def ask(
        self,
        query: Union[Query, Sequence[str], None] = None,
        values: Optional[Sequence[ValueSpec]] = None,
        *,
        domains: Optional[Sequence[str]] = None,
    ) -> Answer:
        """Plan and execute in one call; accepts a built
        :class:`Query` or the legacy ``(domains, values)`` spelling.
        Returns an :class:`Answer` whose ``trace`` spans the solve and
        the execution when the session's tracer is enabled.
        """
        q = self._as_query(query, values, domains)
        tracer = self.ctx.tracer
        if q.is_metric:
            if tracer.enabled:
                with tracer.span(
                    "metric-query", kind="query", query=str(q)
                ):
                    return self._ask_metric(q, tracer=tracer)
            return self._ask_metric(q)
        if tracer.enabled:
            with tracer.span("query", kind="query", query=str(q)) as root:
                plan = self.engine.solve(self.schemas(), q)
                dataset = self._run_plan(plan, tracer)
            return Answer(dataset, plan, root)
        plan = self.engine.solve(self.schemas(), q)
        return Answer(self._run_plan(plan, None), plan, None)

    # ------------------------------------------------------------------
    # metric queries & materialized rollups (see repro.metrics)
    # ------------------------------------------------------------------

    def _ask_metric(
        self, q: Query, tracer=None, measure: bool = False
    ) -> "MetricAnswer":  # noqa: F821
        """Answer a metric query: route to the coarsest registered
        rollup that can answer it, else solve + execute the base
        relation and aggregate raw. The route lands on the
        ExecutionReport as a :class:`~repro.rdd.stats.RollupDecision`
        either way."""
        from repro.metrics.compute import (
            MetricAnswer,
            finalize_metric,
            metric_partials,
        )
        from repro.metrics.rollup import choose_rollup

        q.validate(self.dictionary)
        rollup, decision = choose_rollup(self.rollups, q)
        report = getattr(self.ctx, "report", None)
        if report is not None:
            report.add(decision)
        if rollup is not None:
            if tracer is not None and tracer.enabled:
                with tracer.span(
                    "rollup-read", kind="rollup", rollup=rollup.name
                ):
                    groups = rollup.answer(q)
            else:
                groups = rollup.answer(q)
            return MetricAnswer(q, groups, decision=decision)
        plan = self.engine.solve(self.schemas(), q.base())
        dataset = plan.execute(
            self.snapshot(), self.dictionary, self.cache,
            tracer=tracer, measure=measure,
            columnar=self.engine.config.columnar,
            columnar_off=self.engine.config.columnar_off_ops,
        )
        if self.cache is not None and report is not None:
            report.set_cache_stats(self.cache.stats())
        self._observe_tuning()
        parts = metric_partials(dataset, q)
        return MetricAnswer(
            q, finalize_metric(parts, q), decision=decision
        )

    def rollup(self, name: str, query=None) -> "Rollup":  # noqa: F821
        """Materialize (or fetch) a named rollup.

        With a metric ``query`` (a built :class:`Query` or an unbuilt
        :class:`QueryBuilder`): pre-aggregate its measure set at its
        grain into the wide-column store, register the finalized table
        in the catalog, and route future metric queries through it::

            sj.rollup("rack_heat_hourly",
                      sj.query().measure("power", "mean")
                        .per("racks").grain("1h"))

        With no query: return the already-registered handle. Rollups
        refresh incrementally when a feed they read advances.
        """
        from repro.metrics.rollup import Rollup

        if query is None:
            try:
                return self.rollups[name]
            except KeyError:
                raise ScrubJayError(
                    f"no rollup named {name!r}"
                ) from None
        if isinstance(query, QueryBuilder):
            query = query.build()
        if name in self.rollups:
            raise ScrubJayError(f"rollup {name!r} already registered")
        handle = Rollup(self, name, query).materialize()
        self.rollups[name] = handle
        return handle

    def drop_rollup(self, name: str) -> "Rollup":  # noqa: F821
        """Unregister a rollup and drop its catalog dataset."""
        handle = self.rollups.pop(name, None)
        if handle is None:
            raise ScrubJayError(f"no rollup named {name!r}")
        try:
            self.drop(name)
        except ScrubJayError:
            pass
        return handle

    def _rollup_store(self):
        """The lazily created wide-column store backing materialized
        rollup tables."""
        if self._rollup_store_obj is None:
            from repro.store import WideColumnStore

            if self._cache_dir:
                path = os.path.join(self._cache_dir, "rollups")
            else:
                import tempfile

                path = tempfile.mkdtemp(prefix="scrubjay-rollups-")
                self._rollup_dir_owned = path
            self._rollup_store_obj = WideColumnStore(path)
        return self._rollup_store_obj

    def _refresh_rollups(self, name: str) -> None:
        """Feed-advance hook: incrementally refresh every rollup whose
        base plan reads dataset ``name``."""
        for handle in list(self.rollups.values()):
            if name in handle.feed_names:
                handle.refresh()

    # ------------------------------------------------------------------
    # reproducible pipelines
    # ------------------------------------------------------------------

    def save_plan(self, plan: DerivationPlan, path: str) -> None:
        """Serialize a derivation sequence to a shareable JSON file."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(plan.to_json())

    def load_plan(self, path: str) -> DerivationPlan:
        """Re-instantiate a derivation sequence from JSON."""
        with open(path, "r", encoding="utf-8") as f:
            return DerivationPlan.from_json(f.read(), self.registry)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def serve(
        self,
        config: Optional[ServeConfig] = None,
        *,
        shards: Optional[int] = None,
        shard_on=None,
        replication: Optional[int] = None,
        shard_executor: Optional[str] = None,
        shard_num_workers: Optional[int] = None,
        shard_fault=None,
        shard_service=None,
        start_timeout: Optional[float] = None,
        retry_policy=None,
        clock=None,
        **knobs: Any,
    ) -> "QueryService":  # noqa: F821
        """Wrap this session in a concurrent multi-tenant
        :class:`~repro.serve.QueryService` (plan cache → engine →
        result cache → shared executor pool).

        Service settings come from ``config`` (a typed
        :class:`~repro.config.ServeConfig`; defaults to this session's
        profile ``serve.*`` section), optionally overridden by
        per-knob keywords — ``num_workers=``, ``result_ttl=``, ... —
        each validated at this call: an unknown or out-of-bounds knob
        raises :class:`~repro.errors.ConfigError` naming it, instead
        of failing deep inside the service. ``retry_policy`` and
        ``clock`` remain object-valued keywords.

        ``shards=N`` scales the serve tier *out* instead: the session
        is fronted by a :class:`~repro.serve.sharded.ShardRouter` over
        N forked shard processes, with datasets named in ``shard_on``
        hash-partitioned across them and queries scatter-gathered with
        prune-aware routing — see :mod:`repro.serve.sharded`::

            svc = sj.serve(shards=4, shard_on={"samples": ["node"]},
                           replication=2)
        """
        cfg = (config or self.profile.serve_config()).with_overrides(
            **knobs
        )
        service_kwargs: Dict[str, Any] = {"config": cfg}
        if retry_policy is not None:
            service_kwargs["retry_policy"] = retry_policy
        if clock is not None:
            service_kwargs["clock"] = clock
        if shards is not None:
            from repro.serve.sharded import ShardRouter

            shard_kwargs = {
                k: v
                for k, v in {
                    "shard_on": shard_on,
                    "replication": replication,
                    "shard_executor": shard_executor,
                    "shard_num_workers": shard_num_workers,
                    "shard_fault": shard_fault,
                    "shard_service": shard_service,
                    "start_timeout": start_timeout,
                }.items()
                if v is not None
            }
            return ShardRouter(
                self, shards=shards, **shard_kwargs, **service_kwargs
            )
        for key, value in {
            "shard_on": shard_on,
            "replication": replication,
            "shard_executor": shard_executor,
            "shard_num_workers": shard_num_workers,
            "shard_fault": shard_fault,
            "shard_service": shard_service,
            "start_timeout": start_timeout,
        }.items():
            if value is not None:
                raise ConfigError(
                    f"{key}= only applies to sharded serving; pass "
                    f"shards=N", knob=key,
                )
        from repro.serve import QueryService

        return QueryService(self, **service_kwargs)

    # ------------------------------------------------------------------

    def close(self) -> None:
        self.profile.remove_listener(self._profile_listener)
        self.ctx.stop()
        if self._rollup_dir_owned:
            import shutil

            shutil.rmtree(self._rollup_dir_owned, ignore_errors=True)
            self._rollup_dir_owned = None

    def __enter__(self) -> "ScrubJaySession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
