"""Unit tests for the MetricsRegistry."""

from __future__ import annotations

import threading

from repro.obs import MetricsRegistry


def test_counters_inc_and_read():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("a", 2)
    m.inc("b", 5, labels={"op": "join"})
    assert m.counter("a") == 3
    assert m.counter("b", labels={"op": "join"}) == 5
    assert m.counter("b") == 0  # unlabelled series is distinct


def test_label_order_does_not_matter():
    m = MetricsRegistry()
    m.inc("x", labels={"a": "1", "b": "2"})
    m.inc("x", labels={"b": "2", "a": "1"})
    assert m.counter("x", labels={"a": "1", "b": "2"}) == 2


def test_gauges_overwrite():
    m = MetricsRegistry()
    m.set_gauge("depth", 3)
    m.set_gauge("depth", 7)
    assert m.gauge("depth") == 7
    assert m.gauge("missing") is None


def test_histogram_summary():
    m = MetricsRegistry()
    for v in (1.0, 2.0, 3.0):
        m.observe("lat", v)
    s = m.histogram_summary("lat")
    assert s["count"] == 3
    assert s["sum"] == 6.0
    assert s["min"] == 1.0
    assert s["max"] == 3.0
    assert s["mean"] == 2.0
    assert m.histogram_summary("missing") is None


def test_histogram_reservoir_is_bounded():
    m = MetricsRegistry()
    for i in range(5000):
        m.observe("lat", float(i))
    s = m.histogram_summary("lat")
    assert s["count"] == 5000
    assert s["max"] == 4999.0


def test_snapshot_renders_labels_inline():
    m = MetricsRegistry()
    m.inc("rdd.stages", labels={"origin": "map"})
    m.set_gauge("cache.entries", 4)
    m.observe("lat", 0.5)
    snap = m.snapshot()
    assert snap["counters"] == {"rdd.stages{origin=map}": 1}
    assert snap["gauges"] == {"cache.entries": 4}
    assert snap["histograms"]["lat"]["count"] == 1


def test_merge_counts_skips_non_numeric_and_bools():
    m = MetricsRegistry()
    m.merge_counts(
        {"hits": 3, "rate": 0.5, "label": "x", "flag": True},
        prefix="cache.",
    )
    assert m.counter("cache.hits") == 3
    assert m.counter("cache.rate") == 0.5
    assert m.counter("cache.label") == 0
    assert m.counter("cache.flag") == 0


def test_set_gauges_from_is_idempotent():
    m = MetricsRegistry()
    stats = {"hits": 10, "misses": 2}
    m.set_gauges_from(stats, prefix="core.cache.")
    m.set_gauges_from(stats, prefix="core.cache.")  # re-publish snapshot
    assert m.gauge("core.cache.hits") == 10  # not doubled


def test_clear():
    m = MetricsRegistry()
    m.inc("a")
    m.set_gauge("g", 1)
    m.observe("h", 1.0)
    m.clear()
    snap = m.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_concurrent_increments_do_not_lose_updates():
    m = MetricsRegistry()

    def worker():
        for _ in range(1000):
            m.inc("n")

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.counter("n") == 4000
