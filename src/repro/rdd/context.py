"""SJContext: entry point to the distributed dataset engine.

Plays the role of Spark's ``SparkContext``: owns the executor (the
simulated cluster), the scheduler, and the factory methods that create
source RDDs from driver-side collections.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.rdd.executors import Executor, make_executor
from repro.rdd.fault import RetryPolicy
from repro.rdd.partition import split_into_partitions
from repro.rdd.plan import Scheduler
from repro.rdd.rdd import RDD, SourceRDD, UnionRDD
from repro.rdd.stats import AdaptiveConfig, AdaptivePlanner, ExecutionReport


class SJContext:
    """Owns the executor, scheduler, and adaptive planner; creates
    source RDDs.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"threads"``, ``"processes"``,
        ``"simulated"`` — or a ready-built :class:`Executor` instance
        (e.g. a :class:`~repro.rdd.executors.FaultInjectingExecutor`
        wrapping another executor). Process workers simulate cluster
        nodes — use them for the scaling studies; use serial for
        deterministic unit tests.
    num_workers:
        Worker count for thread/process executors (ignored when an
        executor instance is passed).
    default_parallelism:
        Partition count used when an operation does not specify one
        (and adaptive execution is off or cannot decide).
        Defaults to ``2 * num_workers`` (at least 4).
    retry_policy:
        Fault-tolerance budgets (per-task retry, stage replay,
        degradation); defaults to
        :data:`repro.rdd.fault.DEFAULT_RETRY_POLICY`. Ignored when an
        executor instance is passed (the instance carries its own).
    adaptive:
        An :class:`~repro.rdd.stats.AdaptiveConfig` controlling
        statistics-driven execution (broadcast joins, shuffle
        partition sizing, skew splitting). Defaults to enabled with
        Spark-like thresholds.
    broadcast_threshold:
        Convenience override for
        ``adaptive.broadcast_threshold_bytes``: a join side whose
        estimated size is at most this many bytes is broadcast instead
        of shuffled. Set ``0`` to effectively disable broadcast joins
        while keeping the rest of the adaptive machinery on.
    tracer:
        A :class:`~repro.obs.Tracer` shared by every layer touching
        this context (scheduler stages/tasks, derivation engine,
        serve). Defaults to a fresh *disabled* tracer — instrumented
        code then costs one attribute read per site. Flip
        ``ctx.tracer.enabled`` (or pass an enabled tracer) to record
        span trees.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` absorbing the cheap
        always-on counters (stages run, rows, shuffle pairs, cache
        hits, adaptive decisions). Defaults to a fresh registry.
    """

    def __init__(
        self,
        executor: Union[str, Executor] = "serial",
        num_workers: Optional[int] = None,
        default_parallelism: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        broadcast_threshold: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if isinstance(executor, Executor):
            self.executor: Executor = executor
        else:
            self.executor = make_executor(executor, num_workers, retry_policy)
        self.default_parallelism = default_parallelism or max(
            4, 2 * self.executor.num_workers
        )
        self.adaptive = adaptive or AdaptiveConfig()
        if broadcast_threshold is not None:
            self.adaptive = self.adaptive.with_broadcast_threshold(
                broadcast_threshold
            )
        # One tracer/registry object per context, shared (never copied)
        # by the scheduler, engine, and serve layers — flipping
        # tracer.enabled is observed everywhere at once.
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics or MetricsRegistry()
        #: audit trail of every adaptive decision (joins, shuffles)
        self.report = ExecutionReport(metrics=self.metrics)
        self.planner = AdaptivePlanner(self.adaptive, self.report)
        self.scheduler = Scheduler(
            self.executor,
            self.planner,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._stopped = False

    # ------------------------------------------------------------------

    def parallelize(
        self, data: Iterable[Any], num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute a local collection into an RDD."""
        items = list(data)
        n = num_partitions or self.default_parallelism
        n = max(1, min(n, max(1, len(items)))) if items else 1
        return SourceRDD(self, split_into_partitions(items, n))

    def emptyRDD(self) -> RDD:
        return self.parallelize([])

    def union(self, rdds: Sequence[RDD]) -> RDD:
        if not rdds:
            return self.emptyRDD()
        return UnionRDD(self, list(rdds))

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Shut down worker pools. Idempotent."""
        if not self._stopped:
            self.executor.shutdown()
            self._stopped = True

    def __enter__(self) -> "SJContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"SJContext(executor={type(self.executor).__name__}, "
            f"workers={self.executor.num_workers}, "
            f"default_parallelism={self.default_parallelism})"
        )
