"""Protocol version handshake: the ``hello`` op pins the NDJSON wire
version so a mixed-version router/shard fleet fails with one typed,
explanatory error instead of a mid-query decode failure."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolVersionError
from repro.serve import (
    PROTOCOL_VERSION,
    InProcessClient,
    QueryClient,
    QueryServer,
    QueryService,
)
from repro.serve.wire import dispatch

from tests.serve.conftest import HOT_DOMAINS, HOT_VALUES


@pytest.fixture()
def service(serve_session):
    svc = QueryService(serve_session, num_workers=1, max_queue=16)
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    with QueryServer(service) as srv:
        yield srv


def test_hello_agrees_on_current_version(service):
    assert InProcessClient(service).hello() == PROTOCOL_VERSION


def test_hello_mismatch_is_typed_and_names_both_versions(service):
    resp = dispatch(
        service, {"op": "hello", "version": PROTOCOL_VERSION + 1}
    )
    assert resp["ok"] is False
    assert resp["error"] == "ProtocolVersionError"
    assert resp["local"] == PROTOCOL_VERSION
    assert resp["remote"] == PROTOCOL_VERSION + 1
    # the message is what an operator sees in a log line: it must name
    # both versions and say what to do
    assert f"v{PROTOCOL_VERSION}" in resp["message"]
    assert f"v{PROTOCOL_VERSION + 1}" in resp["message"]
    assert "upgrade" in resp["message"]


def test_hello_missing_version_rejected(service):
    resp = dispatch(service, {"op": "hello"})
    assert resp["ok"] is False
    assert resp["error"] == "ProtocolVersionError"


def test_socket_handshake_happens_on_connect(service, server):
    host, port = server.address
    with QueryClient(host, port) as client:
        # handshake already ran in __init__; the connection works
        assert client.ping() is True


def test_stale_client_refused_over_socket(service, server):
    host, port = server.address
    # speak raw: a client announcing a stale version must be refused
    # with the typed error before any query traffic
    with QueryClient(host, port, handshake=False) as client:
        resp = client.request(
            {"op": "hello", "version": PROTOCOL_VERSION + 7}
        )
    assert resp["ok"] is False
    assert resp["error"] == "ProtocolVersionError"
    assert resp["local"] == PROTOCOL_VERSION
    assert resp["remote"] == PROTOCOL_VERSION + 7


def test_socket_client_raises_typed_error_on_mismatch(
    service, server, monkeypatch
):
    host, port = server.address

    # server and client share this interpreter, so patching the module
    # global would move both sides in lockstep; instead pin only the
    # version the client's handshake announces
    def stale_hello(self):
        resp = self.request(
            {"op": "hello", "version": PROTOCOL_VERSION + 7}
        )
        if not resp.get("ok"):
            raise ProtocolVersionError(
                str(resp.get("message", "")),
                local=PROTOCOL_VERSION + 7,
                remote=int(resp.get("local", 0)),
            )
        return int(resp["version"])

    monkeypatch.setattr(QueryClient, "hello", stale_hello)
    with pytest.raises(ProtocolVersionError):
        QueryClient(host, port)


def test_versioned_request_field_checked_on_every_op(service):
    # any request may carry "v"; a mismatched value is refused even on
    # ops that predate the handshake
    ok = dispatch(
        service,
        {"op": "ping", "v": PROTOCOL_VERSION},
    )
    assert ok["ok"] is True
    bad = dispatch(service, {"op": "ping", "v": PROTOCOL_VERSION + 1})
    assert bad["ok"] is False
    assert bad["error"] == "ProtocolVersionError"
    assert bad["local"] == PROTOCOL_VERSION
    assert bad["remote"] == PROTOCOL_VERSION + 1


def test_handshake_false_still_serves_queries(service, server):
    host, port = server.address
    with QueryClient(host, port, handshake=False) as client:
        rows, schema = client.query(HOT_DOMAINS, HOT_VALUES)
        assert rows
        assert schema is not None
