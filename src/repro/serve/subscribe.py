"""Standing-query subscriptions: cached answers that refresh, not expire.

A :class:`Subscription` pins one logical query's answer to explicit
feed **watermarks**. When an upstream feed advances, the serve layer
refreshes the answer — incrementally (delta execution through
:class:`~repro.stream.DeltaPlan`) when the plan allows, by scoped
replay at the new watermarks otherwise — and bumps the subscription's
version so clients can long-poll ``updates(since_version)``.

Consistency contract (the "no mixed-watermark answers" rule): every
answer a subscription ever exposes is exactly ``plan`` evaluated with
*all* feed inputs bounded at the answer's recorded watermarks. Delta
refreshes read appended rows bounded to ``[old, new)`` and pin
unchanged feeds at their old watermark; replays pin everything at the
target. A concurrent writer can therefore never leak
past-the-watermark rows into an answer, and each appended row is
folded in by exactly one refresh interval (exactly-once-per-
watermark).

Refreshes of one subscription are serialized by a per-subscription
lock; reads (``current``/``updates``) are cheap snapshot copies under
a condition variable that also powers ``wait_for(version)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.aggregate import (
    finalize_group_partials,
    merge_group_partials,
)
from repro.errors import SubscriptionError


@dataclass
class SubscriptionUpdate:
    """One consistent view of a subscription's standing answer."""

    sub_id: str
    version: int
    watermarks: Dict[str, int]
    schema: Any = None
    rows: Optional[List[Dict[str, Any]]] = None
    groups: Optional[Dict[Tuple, Any]] = None
    #: False when this update was produced by ``updates(since)`` and
    #: nothing changed since ``since`` (rows/groups omitted then)
    changed: bool = True
    refresh_mode: str = "initial"  # "initial" | "delta" | "replay"

    @property
    def data(self) -> Any:
        return self.groups if self.groups is not None else self.rows


class Subscription:
    """One standing query's live state (serve-layer side)."""

    def __init__(
        self,
        sub_id: str,
        tenant: str,
        query,
        plan,
        delta_plan,
        aggregate,
        feed_names: Tuple[str, ...],
        watermarks: Dict[str, int],
        schema,
        rows: Optional[List[Dict[str, Any]]] = None,
        partials: Optional[Dict[Tuple, Any]] = None,
    ) -> None:
        self.sub_id = sub_id
        self.tenant = tenant
        self.query = query
        self.plan = plan
        self.delta_plan = delta_plan
        self.aggregate = aggregate  # AggregateSpec | None
        self.feed_names = tuple(feed_names)
        self.schema = schema
        self.closed = False
        self.version = 1
        self.watermarks = dict(watermarks)
        self.delta_refreshes = 0
        self.replay_refreshes = 0
        self.last_refresh_mode = "initial"
        self._rows = list(rows) if rows is not None else None
        self._partials = dict(partials) if partials is not None else None
        self._cond = threading.Condition()
        # serializes refresh attempts; reads never take it
        self._refresh_lock = threading.Lock()

    # -- reads ---------------------------------------------------------

    def current(self) -> SubscriptionUpdate:
        """The standing answer at its pinned watermarks."""
        with self._cond:
            return self._snapshot(changed=True)

    def updates(
        self, since_version: int = 0, timeout: Optional[float] = None
    ) -> SubscriptionUpdate:
        """The answer if it changed past ``since_version``; with a
        timeout, long-polls for the change first. An unchanged answer
        comes back with ``changed=False`` and no data attached."""
        with self._cond:
            if timeout is not None and self.version <= since_version:
                self._cond.wait_for(
                    lambda: self.version > since_version or self.closed,
                    timeout,
                )
            if self.version <= since_version:
                return SubscriptionUpdate(
                    self.sub_id, self.version, dict(self.watermarks),
                    schema=self.schema, changed=False,
                    refresh_mode=self.last_refresh_mode,
                )
            return self._snapshot(changed=True)

    def wait_for(
        self, version: int, timeout: Optional[float] = None
    ) -> bool:
        """Block until the subscription reaches ``version``."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.version >= version or self.closed, timeout
            )

    def _snapshot(self, changed: bool) -> SubscriptionUpdate:
        # caller holds self._cond
        groups = None
        rows = None
        if self._partials is not None:
            spec = self.aggregate
            if spec is not None and spec.partial:
                groups = dict(self._partials)
            else:
                groups = finalize_group_partials(
                    dict(self._partials), spec.how if spec else "mean"
                )
        elif self._rows is not None:
            rows = list(self._rows)
        return SubscriptionUpdate(
            self.sub_id, self.version, dict(self.watermarks),
            schema=self.schema, rows=rows, groups=groups,
            changed=changed, refresh_mode=self.last_refresh_mode,
        )

    # -- commits (service side; caller holds _refresh_lock) ------------

    def _commit_delta(
        self,
        watermarks: Dict[str, int],
        rows: Optional[List[Dict[str, Any]]] = None,
        partials: Optional[Dict[Tuple, Any]] = None,
    ) -> None:
        with self._cond:
            if rows is not None:
                if self._rows is None:
                    self._rows = []
                self._rows.extend(rows)
            if partials is not None:
                if self._partials is None:
                    self._partials = {}
                merge_group_partials(
                    self._partials, partials,
                    self.aggregate.how if self.aggregate else "mean",
                )
            self.watermarks = dict(watermarks)
            self.version += 1
            self.delta_refreshes += 1
            self.last_refresh_mode = "delta"
            self._cond.notify_all()

    def _commit_replace(
        self,
        watermarks: Dict[str, int],
        rows: Optional[List[Dict[str, Any]]] = None,
        partials: Optional[Dict[Tuple, Any]] = None,
        mode: str = "replay",
    ) -> None:
        with self._cond:
            if rows is not None:
                self._rows = list(rows)
            if partials is not None:
                self._partials = dict(partials)
            self.watermarks = dict(watermarks)
            self.version += 1
            if mode == "replay":
                self.replay_refreshes += 1
            elif mode == "delta":
                # A gathered refresh (sharded serve tier) replaces the
                # merged answer wholesale even when every shard
                # refreshed incrementally; count it as delta.
                self.delta_refreshes += 1
            self.last_refresh_mode = mode
            self._cond.notify_all()

    def _close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def require_open(self) -> None:
        if self.closed:
            raise SubscriptionError(
                f"subscription {self.sub_id!r} is closed"
            )

    def __repr__(self) -> str:
        return (
            f"Subscription({self.sub_id!r}, tenant={self.tenant!r}, "
            f"v{self.version}, watermarks={self.watermarks}, "
            f"feeds={list(self.feed_names)})"
        )
