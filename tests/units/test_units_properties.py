"""Property tests: conversions round-trip and preserve ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units.registry import default_registry

REG = default_registry()

TIME_UNITS = ["seconds", "milliseconds", "minutes", "hours"]
TEMP_UNITS = ["degrees Celsius", "degrees Fahrenheit", "kelvin"]

values = st.floats(-1e6, 1e6, allow_nan=False)


@given(values, st.sampled_from(TIME_UNITS), st.sampled_from(TIME_UNITS))
def test_time_round_trip(v, u1, u2):
    back = REG.convert(REG.convert(v, u1, u2), u2, u1)
    assert back == pytest.approx(v, rel=1e-9, abs=1e-9)


@given(values, st.sampled_from(TEMP_UNITS), st.sampled_from(TEMP_UNITS))
def test_temperature_round_trip(v, u1, u2):
    back = REG.convert(REG.convert(v, u1, u2), u2, u1)
    assert back == pytest.approx(v, rel=1e-9, abs=1e-6)


@given(values, values, st.sampled_from(TEMP_UNITS), st.sampled_from(TEMP_UNITS))
def test_conversion_preserves_order(a, b, u1, u2):
    ca = REG.convert(a, u1, u2)
    cb = REG.convert(b, u1, u2)
    if a < b:
        assert ca < cb or ca == pytest.approx(cb)


@given(values, st.sampled_from(TIME_UNITS), st.sampled_from(TIME_UNITS),
       st.sampled_from(TIME_UNITS))
def test_conversion_transitive(v, u1, u2, u3):
    direct = REG.convert(v, u1, u3)
    via = REG.convert(REG.convert(v, u1, u2), u2, u3)
    assert via == pytest.approx(direct, rel=1e-9, abs=1e-9)


@given(values, st.sampled_from(TIME_UNITS), st.sampled_from(TEMP_UNITS))
def test_cross_dimension_always_rejected(v, tu, cu):
    with pytest.raises(UnitError):
        REG.convert(v, tu, cu)
