"""Answer: dataset delegation, sizing, and __getattr__ hygiene."""

import pickle

import pytest

from repro.core.answer import Answer


def test_len_and_to_rows(fig5_session):
    answer = (
        fig5_session.query()
        .across("racks", "time")
        .value("temperature")
        .ask()
    )
    rows = answer.to_rows()
    assert rows == answer.collect()
    assert len(answer) == len(rows)
    assert len(answer) > 0


def test_iteration_matches_collect(fig5_session):
    answer = (
        fig5_session.query()
        .across("racks", "time")
        .value("temperature")
        .ask()
    )
    assert list(answer) == answer.collect()


def test_delegates_dataset_attributes(fig5_session):
    answer = (
        fig5_session.query()
        .across("racks", "time")
        .value("temperature")
        .ask()
    )
    # old code written against the bare-dataset return type still works
    assert answer.count() == len(answer)
    assert "rack" in answer.schema


def test_unknown_attribute_raises_attribute_error(fig5_session):
    answer = (
        fig5_session.query()
        .across("racks", "time")
        .value("temperature")
        .ask()
    )
    with pytest.raises(AttributeError):
        answer.no_such_attribute


def test_getattr_before_init_does_not_recurse():
    # __reduce__-style probing touches attributes before __init__ runs;
    # the delegation must answer AttributeError, not recurse forever
    blank = Answer.__new__(Answer)
    with pytest.raises(AttributeError, match="no attribute"):
        blank._dataset
    with pytest.raises(AttributeError, match="no attribute"):
        blank.collect_everything
    # __reduce_ex__ probes dunders before __init__ ran — must not
    # recurse (a plain self._dataset lookup here would loop forever)
    pickle.dumps(blank)
