"""The derivation engine: Algorithm 1 behaviour on the paper's queries."""

import pytest

from repro.core.dictionary import default_dictionary
from repro.core.engine import DerivationEngine, EngineConfig
from repro.core.query import Query
from repro.core.semantics import Schema, domain, value
from repro.errors import NoSolutionError, QueryError

import repro.core.domain_derivations  # noqa: F401 (registers experts)
import repro.core.transformations  # noqa: F401
import repro.core.combinations  # noqa: F401


@pytest.fixture()
def d():
    dd = default_dictionary()
    for dim in ("aperf events", "mperf events", "instructions",
                "memory reads", "memory writes"):
        dd.define_dimension(dim, continuous=False, ordered=True)
    return dd


@pytest.fixture()
def engine(d):
    return DerivationEngine(d)


FIG5_CATALOG = {
    "job_queue_log": Schema({
        "job_id": domain("jobs", "identifier"),
        "job_name": value("applications", "label"),
        "nodelist": domain("compute nodes", "list<identifier>"),
        "elapsed": value("time", "seconds"),
        "timespan": domain("time", "timespan"),
    }),
    "node_layout": Schema({
        "node": domain("compute nodes", "identifier"),
        "rack": domain("racks", "identifier"),
    }),
    "rack_temperatures": Schema({
        "rack": domain("racks", "identifier"),
        "location": domain("rack locations", "label"),
        "aisle": domain("aisles", "label"),
        "time": domain("time", "datetime"),
        "temp": value("temperature", "degrees Celsius"),
    }),
}

FIG7_CATALOG = {
    "papi": Schema({
        "nodeid": domain("compute nodes", "identifier"),
        "cpuid": domain("cpus", "identifier"),
        "time": domain("time", "datetime"),
        "instructions": value("instructions", "count"),
        "aperf": value("aperf events", "count"),
        "mperf": value("mperf events", "count"),
    }),
    "cpu_specs": Schema({
        "nodeid": domain("compute nodes", "identifier"),
        "cpuid": domain("cpus", "identifier"),
        "base_frequency": value("rated frequency", "rated gigahertz"),
    }),
    "ipmi": Schema({
        "nodeid": domain("compute nodes", "identifier"),
        "socket": domain("sockets", "identifier"),
        "time": domain("time", "datetime"),
        "mem_reads": value("memory reads", "count"),
        "mem_writes": value("memory writes", "count"),
    }),
}


def test_fig5_plan_operations(engine):
    plan = engine.solve(
        FIG5_CATALOG, Query.of(["jobs", "racks"], ["applications", "heat"])
    )
    ops = sorted(op for op in plan.operations() if not op.startswith("load"))
    assert ops == sorted([
        "explode_discrete", "explode_continuous", "natural_join",
        "derive_heat", "interpolation_join",
    ])
    assert plan.num_steps() == 5


def test_fig5_plan_satisfies_query_schema(engine, d):
    # execute the plan symbolically by walking derive_schema
    plan = engine.solve(
        FIG5_CATALOG, Query.of(["jobs", "racks"], ["applications", "heat"])
    )
    # loads appear for all three datasets
    loads = {op for op in plan.operations() if op.startswith("load")}
    assert loads == {"load:job_queue_log", "load:node_layout",
                     "load:rack_temperatures"}


def test_fig7_plan_operations(engine):
    plan = engine.solve(
        FIG7_CATALOG,
        Query.of(["cpus"], ["active frequency", "instructions per time",
                            "memory reads per time"]),
    )
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert ops.count("derive_rate") == 2
    assert "derive_active_frequency" in ops
    joins = [op for op in ops if op.endswith("_join")]
    assert len(joins) == 2
    assert plan.num_steps() == 5


def test_single_dataset_query_trivial(engine):
    plan = engine.solve(
        FIG5_CATALOG, Query.of(["racks"], ["temperature"])
    )
    assert plan.num_steps() == 0
    assert plan.operations() == ["load:rack_temperatures"]


def test_single_dataset_with_transformation(engine):
    plan = engine.solve(FIG5_CATALOG, Query.of(["racks"], ["heat"]))
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert ops == ["derive_heat"]


def test_missing_domain_dimension_is_no_solution(engine):
    with pytest.raises(NoSolutionError, match="domain dimension"):
        engine.solve(
            FIG5_CATALOG, Query.of(["filesystems"], ["temperature"])
        )


def test_underivable_value_is_no_solution(engine):
    with pytest.raises(NoSolutionError):
        engine.solve(FIG5_CATALOG, Query.of(["racks"], ["power"]))


def test_empty_catalog_is_no_solution(engine):
    with pytest.raises(NoSolutionError):
        engine.solve({}, Query.of(["racks"], ["heat"]))


def test_invalid_query_dimension_rejected(engine):
    with pytest.raises(QueryError):
        engine.solve(FIG5_CATALOG, Query.of(["hovercraft"], ["heat"]))


def test_requested_units_conversion_appended(engine):
    plan = engine.solve(
        FIG5_CATALOG,
        Query.of(["racks"], [("temperature", "degrees Fahrenheit")]),
    )
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert ops == ["convert_units"]


def test_requested_units_exact_match_no_conversion(engine):
    plan = engine.solve(
        FIG5_CATALOG,
        Query.of(["racks"], [("temperature", "degrees Celsius")]),
    )
    assert plan.num_steps() == 0


def test_unconvertible_units_no_solution(engine):
    with pytest.raises((NoSolutionError, QueryError)):
        engine.solve(
            FIG5_CATALOG, Query.of(["racks"], [("temperature", "watts")])
        )


def test_prefers_fewer_datasets(engine):
    # applications over jobs alone must not pull in layout/temps
    plan = engine.solve(FIG5_CATALOG, Query.of(["jobs"], ["applications"]))
    loads = [op for op in plan.operations() if op.startswith("load")]
    assert loads == ["load:job_queue_log"]


def test_shortest_plan_preferred(engine):
    # nodes × temperature: layout ⋈ temps suffices (1 combination); the
    # engine must not add the job log
    plan = engine.solve(
        FIG5_CATALOG, Query.of(["compute nodes", "racks"], ["temperature"])
    )
    loads = {op for op in plan.operations() if op.startswith("load")}
    assert loads == {"load:node_layout", "load:rack_temperatures"}
    assert plan.num_steps() == 1


def test_pair_memoization_reused_across_queries(engine):
    engine.solve(FIG5_CATALOG, Query.of(["jobs", "racks"],
                                        ["applications", "heat"]))
    memo_size = len(engine._pair_memo)
    assert memo_size > 0
    engine.solve(FIG5_CATALOG, Query.of(["jobs", "racks"],
                                        ["applications", "temperature"]))
    # second query reuses (at least) the previously memoized pairs
    assert len(engine._pair_memo) >= memo_size


def test_max_datasets_bound_respected(d):
    engine = DerivationEngine(d, config=EngineConfig(max_datasets=2))
    with pytest.raises(NoSolutionError):
        engine.solve(
            FIG5_CATALOG, Query.of(["jobs", "racks"],
                                   ["applications", "heat"])
        )


def test_engine_config_window_propagates(d):
    engine = DerivationEngine(
        d, config=EngineConfig(interpolation_window=7.5)
    )
    plan = engine.solve(
        FIG5_CATALOG, Query.of(["jobs", "racks"], ["applications", "heat"])
    )
    text = plan.describe()
    assert "window=7.5" in text


def test_explain_renders_graph(engine):
    text = engine.explain(
        FIG5_CATALOG, Query.of(["jobs", "racks"], ["applications", "heat"])
    )
    assert "Load[job_queue_log]" in text
    assert "interpolation_join" in text


def test_interactive_rates(engine):
    """The paper claims solutions 'at interactive rates' (§5.2)."""
    import time

    t0 = time.perf_counter()
    engine.solve(FIG5_CATALOG, Query.of(["jobs", "racks"],
                                        ["applications", "heat"]))
    engine.solve(FIG7_CATALOG, Query.of(
        ["cpus"], ["active frequency", "instructions per time"]
    ))
    assert time.perf_counter() - t0 < 2.0
