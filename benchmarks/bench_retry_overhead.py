"""Fault-tolerance overhead on the Figure 3a natural-join workload.

The retry layer must be effectively free when nothing fails: the task
wrapper is a try/except around the whole partition function, and
:func:`repro.rdd.fault.make_retrying_task` skips even that when the
policy's budget is one attempt. This benchmark runs the Fig 3a
natural join (zero injected faults) twice per round — once under the
default retry policy, once with retry disabled — interleaved so cache
warmth and machine noise hit both variants alike, and asserts the
fault-tolerant engine stays within 5% of the bare one.
"""

from __future__ import annotations

import time

from repro import SJContext, ScrubJayDataset, default_dictionary
from repro.core.combinations import NaturalJoin
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.rdd.fault import DEFAULT_RETRY_POLICY, no_retry_policy

ROWS = 20_000
PARTITIONS = 8
ROUNDS = 3
MAX_OVERHEAD = 1.05

_DICT = default_dictionary()


def _run_join(left_rows, right_rows, retry_policy):
    with SJContext(
        executor="serial", retry_policy=retry_policy,
        default_parallelism=PARTITIONS,
    ) as ctx:
        left = ScrubJayDataset.from_rows(
            ctx, left_rows, KEYED_LEFT_SCHEMA, "left", PARTITIONS
        )
        right = ScrubJayDataset.from_rows(
            ctx, right_rows, KEYED_RIGHT_SCHEMA, "right", PARTITIONS
        )
        start = time.perf_counter()
        count = NaturalJoin().apply(left, right, _DICT).count()
        return time.perf_counter() - start, count


def test_retry_overhead_under_5_percent(benchmark, recorder_factory):
    recorder = recorder_factory(
        "retry_overhead_natural_join", "variant", "seconds"
    )
    left, right = keyed_tables(ROWS, num_keys=1024)

    with_retry, without_retry = [], []
    for _ in range(ROUNDS):  # interleaved: noise hits both alike
        t, count = _run_join(left, right, DEFAULT_RETRY_POLICY)
        assert count == ROWS
        with_retry.append(t)
        t, count = _run_join(left, right, no_retry_policy())
        assert count == ROWS
        without_retry.append(t)

    # min-of-rounds: the least-noisy observation of each variant
    best_with, best_without = min(with_retry), min(without_retry)
    ratio = best_with / best_without
    recorder.add("no_retry", best_without, f"{ROWS} rows, min of {ROUNDS}")
    recorder.add("default_retry", best_with, f"overhead x{ratio:.3f}")

    benchmark.pedantic(
        _run_join, args=(left, right, DEFAULT_RETRY_POLICY),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["overhead_ratio"] = ratio
    assert ratio < MAX_OVERHEAD, (
        f"zero-fault retry overhead {ratio:.3f}x exceeds "
        f"{MAX_OVERHEAD}x on the Fig 3a natural join"
    )
