"""Predicate/projection pushdown: plan rewriting and the central
property — a pushed scan returns exactly what scan-then-filter would."""

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.core.pipeline import DerivationPlan, ScanNode
from repro.core.semantics import Schema, domain, value
from repro.errors import QueryError
from repro.store import WideColumnStore
from repro.units.temporal import Timestamp

from tests.conftest import (
    LAYOUT_SCHEMA,
    TEMPS_SCHEMA,
    layout_rows,
    temps_rows,
)


def key(row):
    return tuple(sorted((k, repr(v)) for k, v in row.items()))


def rows_of(answer):
    return sorted(answer.to_rows(), key=key)


def make_session(pushdown=True, ctx=None, **kwargs):
    sj = ScrubJaySession(
        TuningProfile(pushdown=pushdown, **kwargs), ctx=ctx
    )
    sj.ingest().rows(temps_rows(), TEMPS_SCHEMA).partitions(4) \
        .register("rack_temperatures")
    sj.ingest().rows(layout_rows(), LAYOUT_SCHEMA).register("node_layout")
    return sj


def scan_nodes(plan):
    out = []

    def walk(node):
        if isinstance(node, ScanNode):
            out.append(node)
        for c in node.children():
            walk(c)

    walk(plan.root)
    return out


# ----------------------------------------------------------------------
# plan rewriting
# ----------------------------------------------------------------------

def test_filters_collapse_into_scan_node():
    sj = make_session()
    plan = (
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=17)
        .where("time", below=Timestamp(300.0))
        .plan()
    )
    scans = scan_nodes(plan)
    assert len(scans) == 1
    pred = scans[0].predicate
    assert pred is not None
    ops = sorted(t.op for t in pred.terms)
    assert ops == ["eq", "range"]
    cols = {t.column for t in pred.terms}
    assert cols == {"rack", "time"}
    # no residual filter nodes survive for fully-pushable predicates
    assert all("filter" not in op for op in plan.operations())
    sj.close()


def test_pushdown_disabled_keeps_filter_nodes():
    sj = make_session(pushdown=False)
    plan = (
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=17)
        .plan()
    )
    assert not scan_nodes(plan)
    assert any("filter" in op for op in plan.operations())
    sj.close()


def test_plan_json_round_trip_preserves_scan():
    sj = make_session()
    plan = (
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=17)
        .plan()
    )
    back = DerivationPlan.from_json(plan.to_json(), sj.registry)
    assert scan_nodes(back)
    assert scan_nodes(back)[0].predicate == scan_nodes(plan)[0].predicate
    assert back.fingerprint() == plan.fingerprint()
    before = rows_of(sj.execute(plan))
    assert rows_of(sj.execute(back)) == before
    sj.close()


def test_filter_on_unknown_dimension_rejected():
    sj = make_session()
    with pytest.raises(QueryError, match="does not appear"):
        (
            sj.query()
            .across("racks", "time")
            .value("temperature")
            .where("power", at_least=5.0)
            .plan()
        )
    sj.close()


# ----------------------------------------------------------------------
# the central property: pushed ≡ unpushed
# ----------------------------------------------------------------------

FILTER_CASES = [
    # (filter kwargs applied via .where(dimension, ...))
    [("racks", {"equals": 17})],
    [("time", {"between": (Timestamp(120.0), Timestamp(500.0))})],
    [("racks", {"equals": 17}), ("time", {"below": Timestamp(300.0)})],
    [("temperature", {"at_least": 22.0})],
    [("aisles", {"equals": "hot"})],  # non-indexed, plain label column
    [("racks", {"equals": 99})],  # selects nothing
]


@pytest.mark.parametrize("filters", FILTER_CASES)
def test_pushed_equals_unpushed_single_dataset(filters):
    answers = []
    for pushdown in (True, False):
        sj = make_session(pushdown=pushdown)
        q = sj.query().across("racks", "time").value("temperature")
        for dim, kwargs in filters:
            q = q.where(dim, **kwargs)
        answers.append(rows_of(q.ask()))
        sj.close()
    assert answers[0] == answers[1]


def test_pushed_equals_unpushed_through_join():
    # compute nodes × time needs node_layout ⋈ rack_temperatures; the
    # rack/time restrictions must travel through the join to the scans
    answers = []
    for pushdown in (True, False):
        sj = make_session(pushdown=pushdown)
        answers.append(rows_of(
            sj.query()
            .across("compute nodes", "time")
            .value("temperature")
            .where("compute nodes", equals=2)
            .where("time", below=Timestamp(360.0))
            .ask()
        ))
        sj.close()
    assert answers[0] == answers[1]
    assert answers[0]  # join result is non-empty


@pytest.mark.parametrize("which", ["thread", "process"])
def test_pushed_equals_unpushed_across_executors(
    which, thread_ctx, process_ctx
):
    ctx = thread_ctx if which == "thread" else process_ctx
    shared = make_session(pushdown=True, ctx=ctx)
    serial = make_session(pushdown=False)
    q = lambda sj: rows_of(  # noqa: E731
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=18)
        .where("time", at_least=Timestamp(240.0))
        .ask()
    )
    try:
        assert q(shared) == q(serial)
    finally:
        serial.close()  # shared ctx belongs to the session fixture


def test_projection_disabled_same_results():
    base = make_session()
    noproj = ScrubJaySession(
        TuningProfile(pushdown=True, projection=False)
    )
    noproj.ingest().rows(temps_rows(), TEMPS_SCHEMA) \
        .register("rack_temperatures")
    q = lambda sj: rows_of(  # noqa: E731
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=17)
        .ask()
    )
    assert q(base) == q(noproj)
    base.close()
    noproj.close()


# ----------------------------------------------------------------------
# store-backed scans: zone maps, empty/all-null segments
# ----------------------------------------------------------------------

STORE_SCHEMA = Schema({
    "rack": domain("racks", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})


def store_session(tmp_path, rows, pushdown=True, memtable_limit=10):
    store = WideColumnStore(str(tmp_path / f"store-{pushdown}"))
    t = store.create_table(
        "facility", "temps", ["rack"], ["time"],
        memtable_limit=memtable_limit,
    )
    t.insert_many(rows)
    t.flush()
    sj = ScrubJaySession(TuningProfile(pushdown=pushdown))
    sj.ingest().table(store, "facility", "temps", STORE_SCHEMA) \
        .register("rack_temperatures")
    return sj


def banded_rows(n=60):
    return [
        {"rack": i % 3, "time": Timestamp(float(i)), "temp": 20.0 + i % 9}
        for i in range(n)
    ]


def test_store_scan_pushed_equals_unpushed(tmp_path):
    rows = banded_rows()
    ask = lambda sj: rows_of(  # noqa: E731
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=1)
        .where("time", between=(Timestamp(10.0), Timestamp(30.0)))
        .ask()
    )
    pushed = store_session(tmp_path, rows, pushdown=True)
    plain = store_session(tmp_path, rows, pushdown=False)
    assert ask(pushed) == ask(plain)
    pushed.close()
    plain.close()


def test_store_scan_reads_fewer_rows_than_stored(tmp_path):
    rows = banded_rows(90)
    sj = store_session(tmp_path, rows, pushdown=True, memtable_limit=15)
    answer = (
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=1)
        .where("time", below=Timestamp(15.0))
        .ask()
    )
    assert len(answer) == 5
    labels = {"source": "rack_temperatures"}
    rows_read = sj.ctx.metrics.counter("scan.rows_read", labels)
    assert 0 < rows_read < len(rows) * 0.2
    assert sj.ctx.metrics.counter("scan.partitions_pruned", labels) == 2
    sj.close()


def test_store_all_null_column_segments(tmp_path):
    # one flush leaves temp entirely absent → all-null zone stats;
    # predicates on temp must still return exactly the matching rows
    rows = [{"rack": 0, "time": Timestamp(float(i))} for i in range(10)]
    rows += [
        {"rack": 0, "time": Timestamp(float(10 + i)), "temp": 21.0 + i}
        for i in range(10)
    ]
    ask = lambda sj: rows_of(  # noqa: E731
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("temperature", at_least=25.0)
        .ask()
    )
    pushed = store_session(tmp_path, rows, memtable_limit=10)
    plain = store_session(tmp_path, rows, pushdown=False, memtable_limit=10)
    assert ask(pushed) == ask(plain)
    assert ask(pushed)  # some rows do match
    pushed.close()
    plain.close()


def test_store_predicate_matching_no_rows(tmp_path):
    sj = store_session(tmp_path, banded_rows(30))
    answer = (
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=77)
        .ask()
    )
    assert len(answer) == 0
    sj.close()


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE surfaces the scan counters (acceptance criterion)
# ----------------------------------------------------------------------

def test_explain_analyze_reports_scan_counters(tmp_path):
    rows = banded_rows(90)
    sj = store_session(tmp_path, rows, memtable_limit=15)
    text = (
        sj.query()
        .across("racks", "time")
        .value("temperature")
        .where("racks", equals=1)
        .where("time", below=Timestamp(15.0))
        .explain(analyze=True)
    )
    assert "scan.rows_read" in text
    assert "scan.partitions_pruned" in text
    sj.close()
