"""Scoped result-cache invalidation: a feed advance evicts exactly the
entries whose plans read the appended dataset — unrelated tenants'
entries survive (the regression the old drop/re-register path failed:
it bumped catalog_version and orphaned everything)."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import QueryService, ResultCache

from tests.serve.conftest import (
    HOT_DOMAINS,
    HOT_VALUES,
    JOIN_DOMAINS,
    JOIN_VALUES,
    row_multiset,
)


# ----------------------------------------------------------------------
# unit level
# ----------------------------------------------------------------------


def test_invalidate_evicts_only_dependents(serve_session):
    cache = ResultCache(max_entries=8)
    ds = serve_session.dataset("samples")
    other = serve_session.dataset("lookup")
    cache.put("k-join", ds, datasets=["samples", "lookup"])
    cache.put("k-hot", other, datasets=["lookup"])
    cache.put("k-untagged", other)  # legacy entry, no dependency info

    assert cache.invalidate_dataset("samples") == 1
    assert cache.get("k-join", serve_session.ctx) is None
    # unrelated entries survive
    survivor = cache.get("k-hot", serve_session.ctx)
    assert survivor is not None
    assert row_multiset(survivor.collect()) == row_multiset(other.collect())
    assert cache.get("k-untagged", serve_session.ctx) is not None
    assert cache.stats()["invalidations"] == 1


def test_invalidate_unknown_dataset_is_free(serve_session):
    cache = ResultCache()
    cache.put("k", serve_session.dataset("samples"), datasets=["samples"])
    assert cache.invalidate_dataset("nothere") == 0
    assert cache.get("k", serve_session.ctx) is not None


def test_eviction_cleans_the_dependency_index(serve_session):
    cache = ResultCache(max_entries=1)
    ds = serve_session.dataset("samples")
    cache.put("k1", ds, datasets=["samples"])
    cache.put("k2", ds, datasets=["samples"])  # LRU-evicts k1
    # invalidation only counts the surviving dependent
    assert cache.invalidate_dataset("samples") == 1


def test_reput_under_same_key_replaces_dependencies(serve_session):
    cache = ResultCache(max_entries=4)
    ds = serve_session.dataset("samples")
    cache.put("k", ds, datasets=["samples"])
    cache.put("k", ds, datasets=["lookup"])
    assert cache.invalidate_dataset("samples") == 0
    assert cache.invalidate_dataset("lookup") == 1


# ----------------------------------------------------------------------
# service level: the advance path
# ----------------------------------------------------------------------


@pytest.fixture()
def feed_service():
    sj = ScrubJaySession()
    left, right = keyed_tables(100, num_keys=8)
    sj.ingest().feed(KEYED_LEFT_SCHEMA, rows=left).tail("samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    svc = QueryService(sj, num_workers=1)
    yield svc, sj
    svc.close()
    sj.close()


def test_advance_evicts_dependents_and_spares_the_rest(feed_service):
    svc, sj = feed_service
    # warm two cached answers: one reads the feed, one does not
    svc.query(JOIN_DOMAINS, JOIN_VALUES)
    svc.query(HOT_DOMAINS, HOT_VALUES)
    base_hits = svc.result_cache.stats()["hits"]

    out = svc.advance("samples", rows=[
        {"node": 1, "sample": 10_000, "metric_a": 1.0}
    ])
    assert out["evicted"] == 1  # the join answer, nothing else

    # the unrelated entry still serves from cache...
    svc.query(HOT_DOMAINS, HOT_VALUES)
    assert svc.result_cache.stats()["hits"] == base_hits + 1

    # ...and the dependent entry recomputes to the fresh answer
    recomputed = svc.query(JOIN_DOMAINS, JOIN_VALUES)
    assert row_multiset(recomputed.collect()) == row_multiset(
        sj.ask(JOIN_DOMAINS, JOIN_VALUES).collect()
    )
