"""Grouped aggregation and time-series extraction on datasets.

Implemented as RDD aggregations so they distribute like everything
else; results are small and returned driver-side.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.columnar import kernels
from repro.errors import SemanticError
from repro.core.dataset import ScrubJayDataset

def _percentile(values: Sequence[float], q: float) -> Any:
    """Linear-interpolation percentile (numpy's default method) over
    an unsorted sequence; None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


#: built-in aggregators: name -> (zero, seq, finalize).
#: p50/p95 partials are tuples of the raw values (merge = concatenate)
#: — exact, but *not* re-aggregatable once finalized, which is why the
#: metrics layer treats them as non-decomposable for rollup routing.
_AGGREGATORS: Dict[str, Tuple[Any, Callable, Callable]] = {
    "mean": ((0.0, 0), lambda a, x: (a[0] + x, a[1] + 1),
             lambda a: a[0] / a[1] if a[1] else None),
    "sum": (0.0, lambda a, x: a + x, lambda a: a),
    "min": (None, lambda a, x: x if a is None or x < a else a, lambda a: a),
    "max": (None, lambda a, x: x if a is None or x > a else a, lambda a: a),
    "count": (0, lambda a, _x: a + 1, lambda a: a),
    "p50": ((), lambda a, x: a + (x,), lambda a: _percentile(a, 0.50)),
    "p95": ((), lambda a, x: a + (x,), lambda a: _percentile(a, 0.95)),
}

#: aggregators whose *finalized* values (or fixed-size partials) can be
#: re-aggregated from coarser pre-computed partials. p50/p95 are
#: excluded: their only exact partial is the full value list.
DECOMPOSABLE_AGGS = frozenset({"mean", "sum", "min", "max", "count"})


def group_aggregate_partials(
    dataset: ScrubJayDataset,
    group_fields: Sequence[str],
    value_field: str,
    how: str = "mean",
) -> Dict[Tuple, Any]:
    """Per-dataset *unfinalized* aggregation state, mergeable across
    datasets.

    The distributable half of :func:`group_aggregate`: a sharded serve
    tier computes partials on each shard's slice, merges them with
    :func:`merge_group_partials`, and finalizes once driver-side with
    :func:`finalize_group_partials` — the same split the columnar
    :func:`~repro.columnar.kernels.group_aggregate_partial` kernel
    already makes per partition. ``mean`` partials are ``(sum, count)``
    tuples; the other aggregators' partials are their own values.
    """
    for f in list(group_fields) + [value_field]:
        if f not in dataset.schema:
            raise SemanticError(f"dataset has no field {f!r}")
    try:
        zero, seq, _finalize = _AGGREGATORS[how]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {how!r}; expected one of "
            f"{sorted(_AGGREGATORS)}"
        ) from None
    gf = list(group_fields)

    if getattr(dataset, "batched", False):
        # Columnar path: partial aggregation per partition over the
        # batches (no shuffle at all — partials are tiny), merged
        # driver-side with the same merge the row path shuffles with.
        partials = dataset.rdd.mapPartitions(
            lambda items: [
                kernels.group_aggregate_partial(
                    items, gf, value_field, zero, seq
                )
            ]
        ).collect()
        acc: Dict[Tuple, Any] = {}
        for part in partials:
            merge_group_partials(acc, part, how)
        return acc

    def key(row):
        return tuple(row.get(f) for f in gf)

    pairs = (
        dataset.rdd.filter(
            lambda row: value_field in row
            and all(f in row for f in gf)
        )
        .map(lambda row: (key(row), row[value_field]))
        .aggregateByKey(zero, seq, _merge_for(how))
        .collect()
    )
    return dict(pairs)


def merge_group_partials(
    acc: Dict[Tuple, Any], part: Dict[Tuple, Any], how: str
) -> Dict[Tuple, Any]:
    """Merge one partial-aggregation state into ``acc`` (in place)."""
    merge = _merge_for(how)
    for k, v in part.items():
        acc[k] = merge(acc[k], v) if k in acc else v
    return acc


def finalize_group_partials(
    acc: Dict[Tuple, Any], how: str
) -> Dict[Tuple, Any]:
    """Turn merged partial state into final aggregate values."""
    _zero, _seq, finalize = _AGGREGATORS[how]
    return {k: finalize(v) for k, v in acc.items()}


def group_aggregate(
    dataset: ScrubJayDataset,
    group_fields: Sequence[str],
    value_field: str,
    how: str = "mean",
) -> Dict[Tuple, Any]:
    """Aggregate ``value_field`` per distinct ``group_fields`` tuple.

    ``how`` is one of mean/sum/min/max/count/p50/p95. Rows missing any
    group or value field are skipped. Returns ``{group_tuple:
    aggregate}``.
    """
    return finalize_group_partials(
        group_aggregate_partials(dataset, group_fields, value_field, how),
        how,
    )


def _merge_for(how: str) -> Callable:
    if how == "mean":
        return lambda a, b: (a[0] + b[0], a[1] + b[1])
    if how == "sum" or how == "count":
        return lambda a, b: a + b
    if how in ("p50", "p95"):
        # partials are value tuples; wire decode may hand back lists
        return lambda a, b: tuple(a) + tuple(b)
    if how == "min":
        return lambda a, b: b if a is None else (a if b is None or a < b else b)
    return lambda a, b: b if a is None else (a if b is None or a > b else b)


def time_series(
    dataset: ScrubJayDataset,
    group_fields: Sequence[str],
    time_field: str,
    value_field: str,
) -> Dict[Tuple, List[Tuple[float, Any]]]:
    """Per-group (epoch, value) series sorted by time — the shape the
    paper's Figure 4/6 plots are drawn from."""
    for f in list(group_fields) + [time_field, value_field]:
        if f not in dataset.schema:
            raise SemanticError(f"dataset has no field {f!r}")
    gf = list(group_fields)
    rdd = dataset.rdd
    if getattr(dataset, "batched", False):
        from repro.columnar import ColumnBatch

        rdd = rdd.mapPartitions(
            lambda items: [
                row
                for item in items
                for row in (
                    item.to_rows()
                    if isinstance(item, ColumnBatch)
                    else [item]
                )
            ]
        )
    pairs = (
        rdd.filter(
            lambda row: value_field in row and time_field in row
            and all(f in row for f in gf)
        )
        .map(
            lambda row: (
                tuple(row.get(f) for f in gf),
                (row[time_field].epoch, row[value_field]),
            )
        )
        .groupByKey()
        .collect()
    )
    return {k: sorted(v) for k, v in pairs}
