"""Standing-query subscriptions: initial answers, delta refreshes,
executor equivalence, aggregates, long-polling, and the
no-mixed-watermark rule under a concurrent writer."""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.analysis.aggregate import (
    finalize_group_partials,
    group_aggregate_partials,
)
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import (
    AggregateSpec,
    InProcessClient,
    QueryClient,
    QueryServer,
    QueryService,
    SubscriptionError,
)

from tests.serve.conftest import (
    JOIN_DOMAINS,
    JOIN_VALUES,
    row_multiset,
)

ROWS, KEYS = 120, 8


def delta_rows(start, n, keys=KEYS):
    return [
        {
            "node": (start + i) % keys,
            "sample": 10_000 + start + i,
            "metric_a": float(start + i),
        }
        for i in range(n)
    ]


def make_feed_session(executor="serial", **kwargs):
    sj = ScrubJaySession(TuningProfile(executor_kind=executor, **kwargs))
    left, right = keyed_tables(ROWS, num_keys=KEYS)
    sj.ingest().feed(KEYED_LEFT_SCHEMA, rows=left).tail("samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    return sj


@pytest.fixture()
def feed_service():
    sj = make_feed_session()
    svc = QueryService(sj, num_workers=2, max_queue=16)
    yield svc, sj
    svc.close()
    sj.close()


def _fresh_answer(sj):
    return sj.ask(JOIN_DOMAINS, JOIN_VALUES).collect()


# ----------------------------------------------------------------------
# lifecycle and the initial answer
# ----------------------------------------------------------------------


def test_subscribe_initial_answer_matches_query(feed_service):
    svc, sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    upd = sub.current()
    assert upd.version == 1
    assert upd.refresh_mode == "initial"
    assert upd.watermarks == {"samples": ROWS}
    assert row_multiset(upd.rows) == row_multiset(_fresh_answer(sj))
    assert svc.subscription(sub.sub_id) is sub
    assert sub in svc.subscriptions()


def test_unsubscribe_closes_and_forgets(feed_service):
    svc, _sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    assert svc.unsubscribe(sub.sub_id) is True
    assert svc.unsubscribe(sub.sub_id) is False
    assert sub.closed
    with pytest.raises(SubscriptionError):
        svc.subscription(sub.sub_id)
    with pytest.raises(SubscriptionError):
        sub.require_open()


def test_advance_unknown_feed_is_typed(feed_service):
    svc, _sj = feed_service
    with pytest.raises(SubscriptionError):
        svc.advance("lookup")  # registered, but not a feed
    with pytest.raises(SubscriptionError):
        svc.advance("nothere")


# ----------------------------------------------------------------------
# refreshes
# ----------------------------------------------------------------------


def test_advance_refreshes_incrementally(feed_service):
    svc, sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    out = svc.advance("samples", rows=delta_rows(0, 6))
    assert out["rows_added"] == 6
    assert out["watermark"] == ROWS + 6
    assert out["subscriptions_refreshed"] == 1
    upd = sub.current()
    assert upd.version == 2
    assert upd.refresh_mode == "delta"
    assert upd.watermarks == {"samples": ROWS + 6}
    assert sub.delta_refreshes == 1 and sub.replay_refreshes == 0
    assert row_multiset(upd.rows) == row_multiset(_fresh_answer(sj))


def test_empty_advance_refreshes_nothing(feed_service):
    svc, _sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    out = svc.advance("samples")
    assert out["rows_added"] == 0
    assert out["subscriptions_refreshed"] == 0
    assert sub.current().version == 1


def test_repeated_advances_stay_exact(feed_service):
    svc, sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    for batch in range(4):
        svc.advance("samples", rows=delta_rows(batch * 5, 5))
    upd = sub.current()
    assert upd.version == 5
    assert sub.delta_refreshes == 4
    assert row_multiset(upd.rows) == row_multiset(_fresh_answer(sj))


def test_streams_snapshot_reports_feed_state(feed_service):
    svc, _sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    svc.advance("samples", rows=delta_rows(0, 5))
    streams = svc.snapshot().streams
    assert streams["subscriptions"] == 1
    assert streams["refresh_delta"] == 1
    assert streams["refresh_rows"] >= 5
    feed_state = streams["feeds"]["samples"]
    assert feed_state["watermark"] == ROWS + 5
    assert feed_state["data_version"] == 1
    assert sub.current().watermarks["samples"] == ROWS + 5


# ----------------------------------------------------------------------
# executor equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_subscription_answers_equivalent_across_executors(executor):
    kwargs = {"num_workers": 2} if executor != "serial" else {}
    sj = make_feed_session(executor=executor, **kwargs)
    svc = QueryService(sj, num_workers=1)
    try:
        sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
        svc.advance("samples", rows=delta_rows(0, 7))
        svc.advance("samples", rows=delta_rows(7, 7))
        upd = sub.current()
        # ground truth computed on a separate serial session over the
        # identical final row set
        ref = make_feed_session()
        try:
            ref.feed("samples").push(delta_rows(0, 7))
            ref.feed("samples").push(delta_rows(7, 7))
            want = row_multiset(_fresh_answer(ref))
        finally:
            ref.close()
        assert row_multiset(upd.rows) == want
        assert upd.refresh_mode == "delta"
    finally:
        svc.close()
        sj.close()


# ----------------------------------------------------------------------
# aggregate subscriptions
# ----------------------------------------------------------------------


def test_aggregate_subscription_merges_partials(feed_service):
    svc, sj = feed_service
    spec = AggregateSpec(
        group_by=("node",), value_field="metric_b", how="mean"
    )
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES, aggregate=spec)
    svc.advance("samples", rows=delta_rows(0, 9))
    got = sub.current().groups
    want = finalize_group_partials(
        group_aggregate_partials(
            sj.ask(JOIN_DOMAINS, JOIN_VALUES).dataset,
            ["node"], "metric_b", "mean",
        ),
        "mean",
    )
    assert got.keys() == want.keys()
    for k in want:
        assert math.isclose(got[k], want[k], rel_tol=1e-9)


# ----------------------------------------------------------------------
# updates / long-poll
# ----------------------------------------------------------------------


def test_updates_unchanged_omits_data(feed_service):
    svc, _sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    upd = sub.updates(since_version=sub.version)
    assert upd.changed is False
    assert upd.rows is None and upd.groups is None
    # a stale since_version returns the data immediately
    upd = sub.updates(since_version=0)
    assert upd.changed is True and upd.rows


def test_updates_long_poll_wakes_on_advance(feed_service):
    svc, _sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    seen = sub.version

    def later():
        time.sleep(0.05)
        svc.advance("samples", rows=delta_rows(0, 3))

    t = threading.Thread(target=later)
    t.start()
    try:
        upd = sub.updates(since_version=seen, timeout=10.0)
    finally:
        t.join()
    assert upd.changed is True
    assert upd.version > seen
    assert len(upd.rows) == ROWS + 3


# ----------------------------------------------------------------------
# the no-mixed-watermark rule under a concurrent writer
# ----------------------------------------------------------------------


def test_concurrent_advances_never_mix_watermarks(feed_service):
    svc, sj = feed_service
    sub = svc.subscribe(JOIN_DOMAINS, JOIN_VALUES)
    total, batch = 40, 4
    errors = []

    def writer(offset):
        try:
            for start in range(offset, total, batch * 2):
                svc.advance("samples", rows=delta_rows(start, batch))
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(o,))
        for o in (0, batch)
    ]
    for t in threads:
        t.start()
    # reads under concurrent refreshes are internally consistent: the
    # row count of a join answer must always equal the recorded
    # samples watermark (every sample joins exactly one lookup row)
    deadline = time.monotonic() + 30.0
    while any(t.is_alive() for t in threads):
        upd = sub.current()
        assert len(upd.rows) == upd.watermarks["samples"]
        assert time.monotonic() < deadline
    for t in threads:
        t.join()
    assert not errors
    svc.advance("samples")  # settle
    upd = sub.current()
    assert upd.watermarks == {"samples": ROWS + total}
    assert row_multiset(upd.rows) == row_multiset(_fresh_answer(sj))


# ----------------------------------------------------------------------
# the wire: subscribe/updates/advance/unsubscribe ops
# ----------------------------------------------------------------------


def test_wire_subscription_round_trip(feed_service):
    svc, sj = feed_service
    with QueryServer(svc) as server:
        host, port = server.address
        with QueryClient(host, port) as client:
            sub = client.subscribe(
                JOIN_DOMAINS, JOIN_VALUES, dictionary=sj.dictionary
            )
            assert row_multiset(sub["rows"]) == \
                row_multiset(_fresh_answer(sj))

            # nothing new yet: changed=False, no payload
            upd = client.updates(
                sub["sub_id"], since_version=sub["version"],
                dictionary=sj.dictionary,
            )
            assert upd["changed"] is False and upd["rows"] is None

            adv = client.advance(
                "samples", rows=delta_rows(0, 5),
                schema=KEYED_LEFT_SCHEMA, dictionary=sj.dictionary,
            )
            assert adv["rows_added"] == 5
            assert adv["subscriptions_refreshed"] == 1

            upd = client.updates(
                sub["sub_id"], since_version=sub["version"],
                dictionary=sj.dictionary,
            )
            assert upd["changed"] is True
            assert upd["refresh_mode"] == "delta"
            assert row_multiset(upd["rows"]) == \
                row_multiset(_fresh_answer(sj))
            assert client.unsubscribe(sub["sub_id"]) is True
            assert client.unsubscribe(sub["sub_id"]) is False


def test_wire_aggregate_subscription(feed_service):
    svc, sj = feed_service
    local = InProcessClient(svc)
    sub = local.subscribe(
        JOIN_DOMAINS, JOIN_VALUES,
        group_by=["node"], value_field="metric_b", how="mean",
        dictionary=sj.dictionary,
    )
    local.advance(
        "samples", rows=delta_rows(0, 6),
        schema=KEYED_LEFT_SCHEMA, dictionary=sj.dictionary,
    )
    upd = local.updates(
        sub["sub_id"], since_version=sub["version"],
        dictionary=sj.dictionary,
    )
    want = finalize_group_partials(
        group_aggregate_partials(
            sj.ask(JOIN_DOMAINS, JOIN_VALUES).dataset,
            ["node"], "metric_b", "mean",
        ),
        "mean",
    )
    assert upd["groups"].keys() == want.keys()
    for k in want:
        assert math.isclose(upd["groups"][k], want[k], rel_tol=1e-9)


def test_wire_register_feed_creates_live_dataset(feed_service):
    svc, sj = feed_service
    local = InProcessClient(svc)
    left, _ = keyed_tables(20, num_keys=4)
    out = local.register_rows(
        left, KEYED_LEFT_SCHEMA, "wire_feed", sj.dictionary, feed=True
    )
    assert out["watermark"] == 20
    assert "wire_feed" in sj.feeds
    adv = local.advance(
        "wire_feed", rows=delta_rows(0, 3, keys=4),
        schema=KEYED_LEFT_SCHEMA, dictionary=sj.dictionary,
    )
    assert adv["watermark"] == 23
