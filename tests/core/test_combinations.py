"""Natural join and interpolation join: applicability rules and data
correctness against brute-force oracles."""

import pytest

from repro.core.combinations import (
    InterpolationJoin,
    NaturalJoin,
    shared_domain_dimensions,
)
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import DerivationError
from repro.units.temporal import Timestamp

LEFT = Schema({
    "node": domain("compute nodes", "identifier"),
    "power": value("power", "watts"),
})
RIGHT = Schema({
    "node": domain("compute nodes", "identifier"),
    "rack": domain("racks", "identifier"),
})

TLEFT = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "power": value("power", "watts"),
})
TRIGHT = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})


def test_shared_domain_dimensions():
    assert shared_domain_dimensions(LEFT, RIGHT) == {"compute nodes"}
    assert shared_domain_dimensions(TLEFT, TRIGHT) == {"compute nodes", "time"}


# ----------------------------------------------------------------------
# natural join
# ----------------------------------------------------------------------

def test_natural_join_applies_on_discrete_shared_dims(dictionary):
    assert NaturalJoin().applies(LEFT, RIGHT, dictionary)


def test_natural_join_refuses_interpolatable_shared_dim(dictionary):
    assert not NaturalJoin().applies(TLEFT, TRIGHT, dictionary)


def test_natural_join_refuses_disjoint_schemas(dictionary):
    other = Schema({"rack": domain("racks", "identifier")})
    assert not NaturalJoin().applies(LEFT, other, dictionary)


def test_natural_join_refuses_mismatched_units(dictionary):
    listy = Schema({
        "nodes": domain("compute nodes", "list<identifier>"),
        "rack": domain("racks", "identifier"),
    })
    assert not NaturalJoin().applies(LEFT, listy, dictionary)


def test_natural_join_refuses_ambiguous_fields(dictionary):
    two = Schema({
        "node_a": domain("compute nodes", "identifier"),
        "node_b": domain("compute nodes", "identifier"),
    })
    assert not NaturalJoin().applies(LEFT, two, dictionary)


def test_natural_join_schema_drops_right_keys(dictionary):
    out = NaturalJoin().derive_schema(LEFT, RIGHT, dictionary)
    assert set(out.fields()) == {"node", "power", "rack"}


def test_natural_join_data_matches_oracle(ctx, dictionary):
    left_rows = [{"node": n % 4, "power": float(n)} for n in range(20)]
    right_rows = [{"node": n, "rack": 100 + n} for n in range(3)]
    lds = ScrubJayDataset.from_rows(ctx, left_rows, LEFT, "l")
    rds = ScrubJayDataset.from_rows(ctx, right_rows, RIGHT, "r")
    got = sorted(
        NaturalJoin().apply(lds, rds, dictionary).collect(),
        key=lambda r: (r["node"], r["power"]),
    )
    want = sorted(
        (
            {**lr, "rack": rr["rack"]}
            for lr in left_rows for rr in right_rows
            if lr["node"] == rr["node"]
        ),
        key=lambda r: (r["node"], r["power"]),
    )
    assert got == want


def test_natural_join_renames_colliding_value_fields(ctx, dictionary):
    right = Schema({
        "node": domain("compute nodes", "identifier"),
        "power": value("energy", "joules"),
    })
    lds = ScrubJayDataset.from_rows(ctx, [{"node": 1, "power": 5.0}], LEFT, "l")
    rds = ScrubJayDataset.from_rows(ctx, [{"node": 1, "power": 9.0}], right, "r")
    out = NaturalJoin().apply(lds, rds, dictionary)
    assert "power_r" in out.schema
    row = out.collect()[0]
    assert row["power"] == 5.0 and row["power_r"] == 9.0


def test_natural_join_apply_rejects_invalid(ctx, dictionary):
    lds = ScrubJayDataset.from_rows(ctx, [], LEFT, "l")
    rds = ScrubJayDataset.from_rows(
        ctx, [], Schema({"rack": domain("racks", "identifier")}), "r"
    )
    with pytest.raises(DerivationError):
        NaturalJoin().apply(lds, rds, dictionary)


def test_natural_join_multi_key(ctx, dictionary):
    l2 = Schema({
        "node": domain("compute nodes", "identifier"),
        "cpu": domain("cpus", "identifier"),
        "x": value("power", "watts"),
    })
    r2 = Schema({
        "node": domain("compute nodes", "identifier"),
        "cpu": domain("cpus", "identifier"),
        "y": value("energy", "joules"),
    })
    lrows = [{"node": 0, "cpu": c, "x": float(c)} for c in range(3)]
    rrows = [{"node": 0, "cpu": 1, "y": 9.0}, {"node": 1, "cpu": 1, "y": 8.0}]
    out = NaturalJoin().apply(
        ScrubJayDataset.from_rows(ctx, lrows, l2, "l"),
        ScrubJayDataset.from_rows(ctx, rrows, r2, "r"),
        dictionary,
    ).collect()
    assert out == [{"node": 0, "cpu": 1, "x": 1.0, "y": 9.0}]


# ----------------------------------------------------------------------
# interpolation join
# ----------------------------------------------------------------------

def _trows(node, series, field, fieldname):
    return [
        {"node": node, "time": Timestamp(float(t)), fieldname: v}
        for t, v in series
    ]


def test_interp_join_applies(dictionary):
    assert InterpolationJoin(10.0).applies(TLEFT, TRIGHT, dictionary)


def test_interp_join_refuses_time_only_sharing(dictionary):
    tonly = Schema({
        "time": domain("time", "datetime"),
        "temp": value("temperature", "degrees Celsius"),
    })
    lonly = Schema({
        "time": domain("time", "datetime"),
        "power": value("power", "watts"),
    })
    assert not InterpolationJoin(10.0).applies(lonly, tonly, dictionary)


def test_interp_join_refuses_without_continuous_dim(dictionary):
    assert not InterpolationJoin(10.0).applies(LEFT, RIGHT, dictionary)


def test_interp_join_refuses_raw_counter_values(dictionary):
    counters = Schema({
        "node": domain("compute nodes", "identifier"),
        "time": domain("time", "datetime"),
        "events": value("event count", "count"),
    })
    assert not InterpolationJoin(10.0).applies(TLEFT, counters, dictionary)
    # but counters on the LEFT (carried through) are fine
    assert InterpolationJoin(10.0).applies(counters, TRIGHT, dictionary)


def test_interp_join_rejects_bad_window():
    with pytest.raises(DerivationError):
        InterpolationJoin(0.0)


def test_interp_join_nearest_within_window(ctx, dictionary):
    lds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(100, 1.0)], 0, "power"), TLEFT, "l"
    )
    rds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(93, 20.0), (104, 24.0), (150, 99.0)], 0, "temp"),
        TRIGHT, "r",
    )
    out = InterpolationJoin(window=10.0).apply(lds, rds, dictionary).collect()
    assert len(out) == 1
    # temperature is continuous+ordered → linear interpolation between
    # the bracketing samples at 93 and 104
    expected = 20.0 + (24.0 - 20.0) * (100 - 93) / (104 - 93)
    assert out[0]["temp"] == pytest.approx(expected)


def test_interp_join_no_match_outside_window(ctx, dictionary):
    lds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(100, 1.0)], 0, "power"), TLEFT, "l"
    )
    rds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(150, 20.0)], 0, "temp"), TRIGHT, "r"
    )
    assert InterpolationJoin(10.0).apply(lds, rds, dictionary).collect() == []


def test_interp_join_requires_exact_key_match(ctx, dictionary):
    lds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(100, 1.0)], 0, "power"), TLEFT, "l"
    )
    rds = ScrubJayDataset.from_rows(
        ctx, _trows(1, [(100, 20.0)], 0, "temp"), TRIGHT, "r"
    )
    assert InterpolationJoin(10.0).apply(lds, rds, dictionary).collect() == []


def test_interp_join_extra_right_domain_partitions_output(ctx, dictionary):
    tright = Schema({
        "node": domain("compute nodes", "identifier"),
        "loc": domain("rack locations", "label"),
        "time": domain("time", "datetime"),
        "temp": value("temperature", "degrees Celsius"),
    })
    lds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(100, 1.0)], 0, "power"), TLEFT, "l"
    )
    rrows = [
        {"node": 0, "loc": "top", "time": Timestamp(99.0), "temp": 30.0},
        {"node": 0, "loc": "bottom", "time": Timestamp(99.0), "temp": 20.0},
    ]
    rds = ScrubJayDataset.from_rows(ctx, rrows, tright, "r")
    out = sorted(
        InterpolationJoin(10.0).apply(lds, rds, dictionary).collect(),
        key=lambda r: r["loc"],
    )
    assert [(r["loc"], r["temp"]) for r in out] == \
        [("bottom", 20.0), ("top", 30.0)]


def test_interp_join_schema_merges_and_drops(dictionary):
    out = InterpolationJoin(10.0).derive_schema(TLEFT, TRIGHT, dictionary)
    assert set(out.fields()) == {"node", "time", "power", "temp"}


def test_interp_join_unordered_value_takes_nearest(ctx, dictionary):
    tright = Schema({
        "node": domain("compute nodes", "identifier"),
        "time": domain("time", "datetime"),
        "app": value("applications", "label"),
    })
    lds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(100, 1.0)], 0, "power"), TLEFT, "l"
    )
    rrows = [
        {"node": 0, "time": Timestamp(95.0), "app": "far"},
        {"node": 0, "time": Timestamp(99.0), "app": "near"},
    ]
    rds = ScrubJayDataset.from_rows(ctx, rrows, tright, "r")
    out = InterpolationJoin(10.0).apply(lds, rds, dictionary).collect()
    assert out[0]["app"] == "near"


def test_interp_join_pair_found_exactly_once_across_schemes(ctx, dictionary):
    # elements near a bin boundary appear in both bin schemes; the
    # dedupe must keep exactly one copy of each match
    lds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(t, 1.0) for t in range(0, 200, 7)], 0, "power"),
        TLEFT, "l",
    )
    rds = ScrubJayDataset.from_rows(
        ctx, _trows(0, [(t, 20.0) for t in range(0, 200, 5)], 0, "temp"),
        TRIGHT, "r",
    )
    out = InterpolationJoin(10.0).apply(lds, rds, dictionary).collect()
    # exactly one output row per left row (single extra-domain group)
    assert len(out) == len(lds.collect())
