"""Unit/dimension registry: lookup, composites, conversion rules."""

import pytest

from repro.errors import UnitError
from repro.units.registry import Dimension, Unit, UnitRegistry, default_registry


@pytest.fixture()
def reg():
    return default_registry()


def test_dimension_properties(reg):
    time = reg.dimension("time")
    assert time.continuous and time.ordered and time.interpolatable
    nodes = reg.dimension("compute nodes")
    assert not nodes.continuous and not nodes.ordered
    counts = reg.dimension("event count")
    assert not counts.continuous and counts.ordered
    assert not counts.interpolatable


def test_unknown_dimension_raises(reg):
    with pytest.raises(UnitError):
        reg.dimension("flavour")


def test_rate_dimension_synthesized(reg):
    d = reg.dimension("instructions per time")
    assert d.continuous and d.ordered


def test_temperature_conversions(reg):
    assert reg.convert(100.0, "degrees Celsius", "degrees Fahrenheit") == \
        pytest.approx(212.0)
    assert reg.convert(32.0, "degrees Fahrenheit", "degrees Celsius") == \
        pytest.approx(0.0)
    assert reg.convert(0.0, "degrees Celsius", "kelvin") == \
        pytest.approx(273.15)


def test_time_conversions(reg):
    assert reg.convert(2.0, "minutes", "seconds") == 120.0
    assert reg.convert(1.5, "hours", "minutes") == 90.0
    assert reg.convert(250.0, "milliseconds", "seconds") == 0.25


def test_identity_conversion(reg):
    assert reg.convert(5.0, "seconds", "seconds") == 5.0


def test_cross_dimension_conversion_rejected(reg):
    with pytest.raises(UnitError):
        reg.convert(1.0, "seconds", "degrees Celsius")


def test_non_quantity_conversion_rejected(reg):
    with pytest.raises(UnitError):
        reg.convert(1.0, "identifier", "seconds")


def test_list_unit_parsing(reg):
    u = reg.unit("list<identifier>")
    assert u.kind == "list"
    assert u.element == "identifier"


def test_nested_list_unit(reg):
    u = reg.unit("list<list<identifier>>")
    assert u.kind == "list"
    assert u.element == "list<identifier>"


def test_rate_unit_parsing(reg):
    u = reg.unit("count per second")
    assert u.kind == "rate"
    assert u.numerator == "count"
    assert u.denominator == "seconds"  # singular resolves to plural
    assert u.dimension is None  # generic numerator → generic rate


def test_anchored_rate_unit_dimension(reg):
    u = reg.unit("joules per second")
    assert u.dimension == "energy per time"


def test_rate_conversion(reg):
    assert reg.convert(1000.0, "count per second",
                       "count per millisecond") == pytest.approx(1.0)
    assert reg.convert(60.0, "count per minute",
                       "count per second") == pytest.approx(1.0)


def test_rate_conversion_mismatched_dims_rejected(reg):
    with pytest.raises(UnitError):
        reg.convert(1.0, "joules per second", "count per second")


def test_rate_with_offset_denominator_rejected(reg):
    with pytest.raises(UnitError):
        reg.unit("count per degrees Celsius")  # not a quantity? it is...
        reg.convert(1.0, "count per degrees Celsius", "count per kelvin")


def test_unknown_unit_raises(reg):
    with pytest.raises(UnitError):
        reg.unit("furlongs")


def test_register_duplicate_identical_is_idempotent(reg):
    u = Unit("watts", "quantity", "power", scale=1.0)
    assert reg.register_unit(u).name == "watts"


def test_register_conflicting_unit_rejected(reg):
    with pytest.raises(UnitError):
        reg.register_unit(Unit("watts", "quantity", "power", scale=2.0))


def test_register_unit_unknown_dimension_rejected():
    reg = UnitRegistry()
    with pytest.raises(UnitError):
        reg.register_unit(Unit("x", "quantity", "nowhere"))


def test_register_conflicting_dimension_rejected(reg):
    with pytest.raises(UnitError):
        reg.register_dimension(Dimension("time", False, False))


def test_invalid_kind_rejected():
    with pytest.raises(UnitError):
        Unit("x", "weird")
