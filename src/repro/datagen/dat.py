"""One-call builders for the two dedicated-access-time datasets.

``generate_dat1`` reproduces the first DAT's data sources (§7.1–7.2):
job-queue log, node/rack layout, and rack temperature/humidity/power
feeds, with AMG pinned to rack 17 so the heat-outlier analysis of
Figure 4 has its planted signal.

``generate_dat2`` reproduces the second DAT (§7.3): PAPI, IPMI and
LDMS counter streams plus static CPU specifications, with three mg.C
runs followed by three prime95 runs on an instrumented node — the
Figure 6 scenario.

Each builder returns a :class:`DATBundle` holding rows + schemas and
knowing how to register everything (including the extra dictionary
entries the counter dimensions need) into a
:class:`~repro.session.ScrubJaySession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType
from repro.datagen.counters import CounterSimulator
from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler, ScheduleConfig
from repro.datagen.sensors import RackSensorSimulator

# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------

JOB_LOG_SCHEMA = Schema({
    "job_id": SemanticType(DOMAIN, "jobs", "identifier"),
    "job_name": SemanticType(VALUE, "applications", "label"),
    "user": SemanticType(VALUE, "users", "label"),
    "nodelist": SemanticType(DOMAIN, "compute nodes", "list<identifier>"),
    "num_nodes": SemanticType(VALUE, "event count", "cardinal"),
    "elapsed": SemanticType(VALUE, "time", "seconds"),
    "timespan": SemanticType(DOMAIN, "time", "timespan"),
})

NODE_LAYOUT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
})

RACK_TEMPERATURE_SCHEMA = Schema({
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
    "location": SemanticType(DOMAIN, "rack locations", "label"),
    "aisle": SemanticType(DOMAIN, "aisles", "label"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "temp": SemanticType(VALUE, "temperature", "degrees Celsius"),
})

RACK_HUMIDITY_SCHEMA = Schema({
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "humidity": SemanticType(VALUE, "humidity", "relative humidity percent"),
})

RACK_POWER_SCHEMA = Schema({
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "power": SemanticType(VALUE, "power", "watts"),
})

CPU_SPEC_SCHEMA = Schema({
    "nodeid": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "cpuid": SemanticType(DOMAIN, "cpus", "identifier"),
    "socket": SemanticType(DOMAIN, "sockets", "identifier"),
    "base_frequency": SemanticType(VALUE, "rated frequency",
                                   "rated gigahertz"),
})

PAPI_SCHEMA = Schema({
    "nodeid": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "cpuid": SemanticType(DOMAIN, "cpus", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "instructions": SemanticType(VALUE, "instructions", "count"),
    "aperf": SemanticType(VALUE, "aperf events", "count"),
    "mperf": SemanticType(VALUE, "mperf events", "count"),
})

IPMI_SCHEMA = Schema({
    "nodeid": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "socket": SemanticType(DOMAIN, "sockets", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "mem_reads": SemanticType(VALUE, "memory reads", "count"),
    "mem_writes": SemanticType(VALUE, "memory writes", "count"),
    "power": SemanticType(VALUE, "power", "watts"),
    "thermal_margin": SemanticType(VALUE, "temperature", "degrees Celsius"),
})

LDMS_SCHEMA = Schema({
    "nodeid": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "cpu_util": SemanticType(VALUE, "cpu utilization",
                             "utilization percent"),
    "free_memory": SemanticType(VALUE, "information", "megabytes"),
    "context_switches": SemanticType(VALUE, "context switches", "count"),
})

#: dictionary entries beyond the defaults that the DAT schemas use
EXTRA_DIMENSIONS: Tuple[Tuple[str, bool, bool], ...] = (
    # (name, continuous, ordered) — counter event dimensions are
    # discrete and ordered
    ("instructions", False, True),
    ("aperf events", False, True),
    ("mperf events", False, True),
    ("memory reads", False, True),
    ("memory writes", False, True),
    ("context switches", False, True),
    ("cpu utilization", True, True),
)

EXTRA_UNITS: Tuple[Tuple[str, str, Optional[str]], ...] = (
    ("utilization percent", "quantity", "cpu utilization"),
)


def ensure_semantics(dictionary) -> None:
    """Define the DAT-specific dictionary entries (idempotent)."""
    for name, continuous, ordered in EXTRA_DIMENSIONS:
        dictionary.define_dimension(name, continuous, ordered)
    for name, kind, dimension in EXTRA_UNITS:
        dictionary.define_unit(name, kind, dimension)


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------

@dataclass
class DATBundle:
    """Rows + schemas of one DAT session, ready for registration."""

    facility: Facility
    scheduler: JobScheduler
    datasets: Dict[str, Tuple[List[Dict[str, Any]], Schema]]

    def register(self, session) -> None:
        """Add every dataset (and needed dictionary entries) to a
        :class:`~repro.session.ScrubJaySession`."""
        ensure_semantics(session.dictionary)
        for name, (rows, schema) in self.datasets.items():
            session.register_rows(rows, schema, name)

    def rows(self, name: str) -> List[Dict[str, Any]]:
        return self.datasets[name][0]

    def schema(self, name: str) -> Schema:
        return self.datasets[name][1]


#: aliases so callers can say "the DAT1 bundle shape"
DAT1 = DATBundle
DAT2 = DATBundle


# ----------------------------------------------------------------------
# DAT 1: facility-level monitoring (Figures 4 & 5)
# ----------------------------------------------------------------------

def generate_dat1(
    facility_config: Optional[FacilityConfig] = None,
    duration: float = 3.0 * 3600.0,
    amg_rack: int = 17,
    amg_start: float = 2400.0,
    amg_duration: float = 4800.0,
    temperature_period: float = 120.0,
    seed: int = 11,
    include_aux_feeds: bool = True,
) -> DATBundle:
    """Build the first DAT: job log, layout, and rack sensor feeds.

    AMG is pinned to every node of ``amg_rack`` (the paper observed it
    on 60 nodes of rack 17); a random mix of other workloads fills the
    remaining racks.
    """
    fc = facility_config or FacilityConfig(num_racks=20, nodes_per_rack=8)
    if amg_rack >= fc.num_racks:
        raise ValueError(
            f"amg_rack {amg_rack} outside facility with {fc.num_racks} racks"
        )
    facility = Facility(fc)
    sched = JobScheduler(
        facility,
        ScheduleConfig(duration=duration, seed=seed),
    )
    amg_nodes = facility.nodes_in_rack(amg_rack)
    sched.pin("AMG", amg_nodes, amg_start, amg_duration)
    sched.schedule_random(exclude_nodes=amg_nodes)

    sensors = RackSensorSimulator(facility, sched, seed=seed + 100)
    datasets: Dict[str, Tuple[List[Dict[str, Any]], Schema]] = {
        "job_queue_log": (sched.job_log_rows(), JOB_LOG_SCHEMA),
        "node_layout": (facility.node_layout_rows(), NODE_LAYOUT_SCHEMA),
        "rack_temperatures": (
            sensors.temperature_rows(0.0, duration, temperature_period),
            RACK_TEMPERATURE_SCHEMA,
        ),
    }
    if include_aux_feeds:
        datasets["rack_humidity"] = (
            sensors.humidity_rows(0.0, duration, temperature_period),
            RACK_HUMIDITY_SCHEMA,
        )
        datasets["rack_power"] = (
            sensors.power_rows(0.0, duration, temperature_period),
            RACK_POWER_SCHEMA,
        )
    return DATBundle(facility, sched, datasets)


# ----------------------------------------------------------------------
# DAT 2: node/CPU counters (Figures 6 & 7)
# ----------------------------------------------------------------------

def generate_dat2(
    facility_config: Optional[FacilityConfig] = None,
    node: int = 0,
    run_duration: float = 400.0,
    gap: float = 100.0,
    papi_period: float = 2.0,
    ipmi_period: float = 3.0,
    ldms_period: float = 2.0,
    seed: int = 13,
    include_ldms: bool = False,
) -> DATBundle:
    """Build the second DAT: three mg.C runs then three prime95 runs
    on one instrumented node, with PAPI/IPMI (and optionally LDMS)
    streams plus the static CPU specifications."""
    fc = facility_config or FacilityConfig(
        num_racks=1, nodes_per_rack=2, sockets_per_node=2,
        cores_per_socket=4,
    )
    facility = Facility(fc)
    sched = JobScheduler(facility, ScheduleConfig(seed=seed))
    t = gap
    runs = ["mg.C"] * 3 + ["prime95"] * 3
    for workload in runs:
        sched.pin(workload, [node], t, run_duration)
        t += run_duration + gap
    total = t + gap

    counters = CounterSimulator(facility, sched, seed=seed + 100)
    datasets: Dict[str, Tuple[List[Dict[str, Any]], Schema]] = {
        "cpu_specs": (facility.cpu_spec_rows(), CPU_SPEC_SCHEMA),
        "papi": (
            counters.papi_rows([node], 0.0, total, papi_period),
            PAPI_SCHEMA,
        ),
        "ipmi": (
            counters.ipmi_rows([node], 0.0, total, ipmi_period),
            IPMI_SCHEMA,
        ),
    }
    if include_ldms:
        datasets["ldms"] = (
            counters.ldms_rows([node], 0.0, total, ldms_period),
            LDMS_SCHEMA,
        )
    return DATBundle(facility, sched, datasets)
