"""Vectorized kernels vs their row-path counterparts, edge cases
included: every mask is asserted against the row-level truth it
mirrors, on the same inputs."""

import math

import pytest

from repro.columnar import ColumnBatch, kernels
from repro.sources.predicate import ColumnPredicate
from repro.units.temporal import Timestamp

NAN = float("nan")

ROWS = [
    {"node": 1, "app": "AMG", "v": 1.0},
    {"node": 2, "app": "LULESH", "v": NAN},
    {"node": 1, "v": 3.0},
    {"app": "AMG", "v": -2.0},
    {"node": 3, "app": "HACC"},
]


def _mask_from_rows(rows, fn):
    return [1 if fn(r) else 0 for r in rows]


@pytest.mark.parametrize("column,value", [
    ("node", 1),
    ("node", 99),
    ("app", "AMG"),
    ("app", None),
    ("ghost", None),
    ("ghost", 5),
])
def test_eq_predicate_mask_matches_rows(column, value):
    batch = ColumnBatch.from_rows(ROWS)
    predicate = ColumnPredicate.equals(column, value)
    expected = _mask_from_rows(ROWS, predicate.matches)
    assert kernels.predicate_mask(batch, predicate) == expected


@pytest.mark.parametrize("column,low,high", [
    ("v", 0.0, None),
    ("v", None, 2.0),
    ("v", -10.0, 10.0),
    ("v", 100.0, None),   # NaN still passes
    ("node", 2, None),
    ("app", "B", None),   # string range on a dict column
    ("ghost", 0.0, None),
])
def test_range_predicate_mask_matches_rows(column, low, high):
    batch = ColumnBatch.from_rows(ROWS)
    predicate = ColumnPredicate.range(column, low, high)
    expected = _mask_from_rows(ROWS, predicate.matches)
    assert kernels.predicate_mask(batch, predicate) == expected


def test_conjunction_mask():
    batch = ColumnBatch.from_rows(ROWS)
    predicate = ColumnPredicate.equals("node", 1).also(
        ColumnPredicate.range("v", 0.0, None)
    )
    expected = _mask_from_rows(ROWS, predicate.matches)
    assert kernels.predicate_mask(batch, predicate) == expected
    assert [
        repr(r) for r in kernels.apply_predicate(batch, predicate).to_rows()
    ] == [repr(r) for r in ROWS if predicate.matches(r)]


def test_filter_equals_mask_matches_row_semantics():
    batch = ColumnBatch.from_rows(ROWS)
    for field, value in [("node", 1), ("app", "AMG"), ("ghost", None),
                         ("ghost", 1), ("v", 3.0)]:
        expected = _mask_from_rows(
            ROWS, lambda r: r.get(field) == value
        )
        assert kernels.filter_equals_mask(batch, field, value) == expected


def test_filter_range_mask_matches_keep_semantics():
    rows = [
        {"t": Timestamp(10.0)},
        {"t": Timestamp(20.0)},
        {"x": 1},
        {"t": Timestamp(30.0)},
    ]
    batch = ColumnBatch.from_rows(rows)

    def keep(row, low, high):
        if "t" not in row:
            return False
        epoch = getattr(row["t"], "epoch", row["t"])
        if low is not None and epoch < low:
            return False
        if high is not None and epoch >= high:
            return False
        return True

    for low, high in [(10.0, 30.0), (None, 20.0), (15.0, None)]:
        expected = _mask_from_rows(rows, lambda r: keep(r, low, high))
        assert kernels.filter_range_mask(batch, "t", low, high) == expected

    # missing column fails everything, NaN passes both bounds
    assert kernels.filter_range_mask(batch, "ghost", 0.0, 1.0) == [0] * 4
    nan_batch = ColumnBatch.from_rows([{"v": NAN}, {"v": 1.0}])
    assert kernels.filter_range_mask(nan_batch, "v", 100.0, None) == [1, 0]


def test_select_fields_drops_empty_rows():
    batch = ColumnBatch.from_rows([{"a": 1.0, "b": 2.0}, {"b": 3.0}])
    out = kernels.select_fields(batch, ["a"])
    assert out.to_rows() == [{"a": 1.0}]


def test_rename_field_merges_existing_target():
    batch = ColumnBatch.from_rows([
        {"a": 1.0, "z": 9.0},
        {"z": 8.0},
        {"a": 3.0},
    ])
    out = kernels.rename_field(batch, "a", "z")
    # row semantics: rows holding "a" overwrite z; others keep theirs
    assert out.to_rows() == [{"z": 1.0}, {"z": 8.0}, {"z": 3.0}]


def test_hash_join_matches_nested_loop():
    left_rows = [{"n": i % 3, "v": float(i)} for i in range(9)]
    right_rows = [{"n": n, "rack": f"r{n}"} for n in range(2)]
    left = ColumnBatch.from_rows(left_rows)
    build = ColumnBatch.from_rows(right_rows)
    index = kernels.build_hash_index(build, ["n"])
    joined = kernels.hash_join_probe(
        left, ["n"], build, index, {"rack": "rack"}
    )
    expected = [
        {**l, "rack": r["rack"]}
        for l in left_rows
        for r in right_rows
        if l["n"] == r["n"]
    ]
    assert sorted(joined.to_rows(), key=repr) == sorted(
        expected, key=repr
    )


def test_hash_join_probe_no_match_returns_none():
    left = ColumnBatch.from_rows([{"n": 7}])
    build = ColumnBatch.from_rows([{"n": 1, "rack": "r"}])
    index = kernels.build_hash_index(build, ["n"])
    assert kernels.hash_join_probe(
        left, ["n"], build, index, {"rack": "rack"}
    ) is None


def test_group_aggregate_partial_matches_row_filter():
    rows = [
        {"g": "a", "v": 1.0},
        {"g": "a", "v": 2.0},
        {"g": "b", "v": 5.0},
        {"g": "b"},           # missing value: skipped
        {"v": 9.0},           # missing group: skipped
    ]
    batch = ColumnBatch.from_rows(rows)
    acc = kernels.group_aggregate_partial(
        [batch], ["g"], "v", 0.0, lambda a, x: a + x
    )
    assert acc == {("a",): 3.0, ("b",): 5.0}
    # stray row dicts aggregate identically
    acc2 = kernels.group_aggregate_partial(
        rows, ["g"], "v", 0.0, lambda a, x: a + x
    )
    assert acc2 == acc


def test_group_aggregate_partial_all_null_and_empty():
    empty = ColumnBatch.from_rows([])
    assert kernels.group_aggregate_partial(
        [empty], ["g"], "v", 0.0, lambda a, x: a + x
    ) == {}
    nullish = ColumnBatch.from_rows([{"g": "a"}, {"x": 1}])
    assert kernels.group_aggregate_partial(
        [nullish], ["g"], "v", 0.0, lambda a, x: a + x
    ) == {}
