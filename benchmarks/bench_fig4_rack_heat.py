"""Figure 4: application impact on rack heat generation (case study 1).

Runs the full DAT-1 pipeline — synthetic job log + node layout + rack
temperature feed, the engine-derived sequence of Figure 5, distributed
execution — then reproduces the paper's analysis: sort by heat,
identify the outlier (AMG on rack 17), and extract the rack-17
top/middle/bottom heat-over-time profiles. The recorded series is the
(time, heat) profile the paper plots.
"""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.analysis import rank_groups, time_series
from repro.datagen import generate_dat1
from repro.datagen.facility import FacilityConfig

AMG_RACK = 17


@pytest.fixture(scope="module")
def dat1():
    return generate_dat1(
        facility_config=FacilityConfig(num_racks=20, nodes_per_rack=8),
        duration=2.5 * 3600.0,
        amg_rack=AMG_RACK,
        amg_start=1800.0,
        amg_duration=5400.0,
        include_aux_feeds=False,
    )


@pytest.fixture(scope="module")
def recorder(recorder_factory):
    return recorder_factory("fig4_rack17_heat_profile", "epoch_s", "heat_dC")


def test_fig4_pipeline_and_outlier(benchmark, dat1, recorder):
    def run():
        with ScrubJaySession() as sj:
            dat1.register(sj)
            plan = (sj.query().across("jobs", "racks")
                    .values("applications", "heat").plan())
            result = sj.execute(plan)
            result.persist()
            ranked = rank_groups(result, ["job_name", "rack"], "heat", "max")
            time_field = result.schema.domain_field("time")
            series = time_series(
                result.where(lambda r: r.get("rack") == AMG_RACK),
                ["location"], time_field, "heat",
            )
            return plan, ranked, series

    plan, ranked, series = benchmark.pedantic(run, rounds=1, iterations=1)

    # the paper's headline: the most heat was generated on rack 17
    # while executing AMG
    (app, rack), peak = ranked[0]
    assert app == "AMG"
    assert rack == AMG_RACK

    # the Figure 4 profile: top/middle/bottom series over time, with
    # AMG's regularly increasing curve
    assert set(series) == {("top",), ("middle",), ("bottom",)}
    for loc in ("top", "middle", "bottom"):
        points = series[(loc,)]
        for t, h in points[:: max(1, len(points) // 24)]:
            recorder.add(t, h, loc)
    top = series[("top",)]
    third = max(1, len(top) // 3)
    early = sum(h for _t, h in top[:third]) / third
    late = sum(h for _t, h in top[-third:]) / third
    assert late > early, "AMG heat profile should climb over the run"

    # print the paper-style outlier table
    print("\n(app, rack) ranked by max heat — top 5:")
    for (a, r), h in ranked[:5]:
        print(f"  {a:>10} rack {r:>3}: {h:8.2f} dC")
    print("\nderivation sequence:\n" + plan.describe())
