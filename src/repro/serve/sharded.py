"""Sharded scale-out serve tier: a shard-router front-end over a
fleet of single-owner :class:`~repro.serve.QueryService` processes.

One process per Python interpreter means one GIL and one memory
budget; past a point, a bigger serve box stops helping. This module
scales *out* instead: ``session.serve(shards=N)`` forks N shard
processes (times an optional replication factor), each running its
own full session + :class:`QueryService` + NDJSON
:class:`~repro.serve.wire.QueryServer`, and fronts them with a
:class:`ShardRouter` — a :class:`QueryService` subclass that keeps the
*stateless-per-row* layers (admission control, per-tenant fairness,
plan cache, result cache) and replaces only the execution hooks with
prune-aware scatter-gather over the fleet.

Placement and routing
---------------------
Datasets named in ``shard_on`` are hash-partitioned: each row goes to
shard ``portable_hash(key_tuple) % N`` over its ``shard_on`` columns
(the same process-stable :func:`~repro.rdd.shuffle.portable_hash` the
shuffle layer buckets by, in strict mode — a key type without a
portable hash is a routing error, not a silent misroute). Datasets
not named are replicated whole to every shard, so joins against small
lookup tables stay shard-local. The router records which key tuples
landed on which shard, and at query time reuses the pushdown layer's
:meth:`~repro.sources.predicate.ColumnPredicate.partition_may_match`
oracle: a solved plan's :class:`~repro.core.pipeline.ScanNode`
predicates are tested against each shard's key set, and shards that
provably cannot match are never dispatched to. An eq-filtered query
over a sharded dataset therefore touches exactly one shard — which is
what makes an N-shard fleet answer a prunable workload ~N× faster
even when shards share cores, since each dispatched shard scans 1/N
of the rows.

Two sharded datasets may be combined in one plan only when they are
sharded on the *same* columns (co-sharded); otherwise matching rows
would live on different shards and per-shard execution would silently
drop join matches, so the router raises
:class:`~repro.errors.ShardRoutingError` instead.

Consistency
-----------
Shard catalogs replicate from the router over the wire ops
(``register``/``drop``/``define_*``); every mutation and every shard
response carries the shard's ``catalog_version`` and
``state_fingerprint`` stamp. The router records the fleet's settled
stamp after each mutation; a scatter whose responses disagree with it
(a query fanned out mid-mutation) raises
:class:`~repro.errors.ShardStaleReadError`, which the base service
retry loop re-plans and re-scatters once the fleet settles. A shard
whose post-mutation fingerprint diverges from the router's session
(non-replicable state: session-local expert derivations, direct
dictionary edits) fails loudly with
:class:`~repro.errors.ShardStateError`.

Fault tolerance
---------------
``replication=R`` forks R processes per shard index; replica ``r>0``
of shard ``j`` holds exactly the rows of primary ``j``. A shard
request that fails at the transport level (dead process, refused or
reset connection) fails over to the next replica of the same index
before surfacing :class:`~repro.errors.ShardError`; per-shard deadline
budgets shrink as a sequential scatter progresses so one slow shard
cannot spend another's time.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.aggregate import (
    finalize_group_partials,
    merge_group_partials,
)
from repro.config import diff as profile_diff
from repro.core.dataset import ScrubJayDataset
from repro.core.pipeline import LoadNode, ScanNode
from repro.core.query import Query
from repro.core.semantics import Schema
from repro.errors import (
    ScrubJayError,
    ServiceError,
    ShardError,
    ShardRoutingError,
    ShardStaleReadError,
    ShardStateError,
    StaleRefreshError,
    SubscriptionError,
)
from repro.rdd.shuffle import portable_hash
from repro.serve.keys import normalize_query, plan_key
from repro.serve.service import (
    AggregateSpec,
    QueryService,
    QueryTicket,
    as_query,
)
from repro.serve.subscribe import Subscription
from repro.serve.wire import (
    QueryClient,
    WireError,
    decode_groups,
    decode_rows,
    encode_rows,
)
from repro.stream import DeltaPlan

__all__ = [
    "ShardConfig",
    "ShardHandle",
    "ShardPlacement",
    "ShardRouter",
]


# ----------------------------------------------------------------------
# shard process
# ----------------------------------------------------------------------


@dataclass
class ShardConfig:
    """Everything a shard process needs to build its service.

    ``fault`` (a kwargs dict for
    :class:`~repro.rdd.executors.FaultInjectingExecutor`) wraps the
    shard's executor in deterministic fault injection — the chaos knob
    the resilience tests turn.
    """

    executor: str = "serial"
    num_workers: Optional[int] = None
    fault: Optional[Dict[str, Any]] = None
    service_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: router-session TuningProfile state (engine/adaptive knobs only,
    #: as a :meth:`~repro.config.TuningProfile.to_json_dict` dict) the
    #: shard session is built with, so the fleet plans consistently
    profile: Optional[Dict[str, Any]] = None


def _shard_profile_state(session) -> Optional[Dict[str, Any]]:
    """The slice of the router session's profile a shard inherits.

    Planner-facing knobs (``engine.*``, ``adaptive.*``) travel: a
    shard that broadcast where the router would shuffle gives the
    fleet inconsistent per-shard plans and timings. Everything else
    stays shard-local — the shard's executor comes from
    :class:`ShardConfig`, ``session.cache_dir`` must not collide with
    the router's on-disk cache, serve knobs arrive via
    ``service_kwargs``, and shards never run their own tuner
    (``tuning.*`` stays default-off; the router's closed loop pushes
    tuned values through ``sync`` instead).
    """
    profile = getattr(session, "profile", None)
    if profile is None:
        return None
    state = profile.to_json_dict()

    def keep(name: str) -> bool:
        return name.startswith(("engine.", "adaptive."))

    state["values"] = {
        n: v for n, v in state["values"].items() if keep(n)
    }
    state["provenance"] = {
        n: p for n, p in state["provenance"].items() if keep(n)
    }
    state["pinned"] = [n for n in state["pinned"] if keep(n)]
    return state


def _shard_main(conn, config: ShardConfig) -> None:
    """Entry point of one shard process: fresh session, one service,
    one wire server; report the bound address, then park until told to
    stop (or until the parent end of the pipe disappears)."""
    # Imported here, not at module top: the parent imports this module
    # through repro.serve, and a lazy import keeps the fork cheap and
    # cycle-free.
    from repro.config import TuningProfile
    from repro.rdd.context import SJContext
    from repro.rdd.executors import FaultInjectingExecutor, make_executor
    from repro.serve.wire import QueryServer
    from repro.session import ScrubJaySession

    server = None
    session = None
    service = None
    try:
        profile = (
            TuningProfile.from_json_dict(config.profile)
            if config.profile
            else TuningProfile()
        )
        if config.fault:
            inner = make_executor(config.executor, config.num_workers)
            session = ScrubJaySession(
                profile,
                ctx=SJContext(
                    executor=FaultInjectingExecutor(inner, **config.fault)
                ),
            )
        else:
            profile.set("executor.kind", config.executor)
            if config.num_workers is not None:
                profile.set("executor.num_workers", config.num_workers)
            session = ScrubJaySession(profile)
        service = QueryService(session, **config.service_kwargs)
        server = QueryServer(service).start()
        conn.send(("ready", server.address))
        while True:
            msg = conn.recv()
            if msg == "stop":
                break
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception as exc:  # startup failure: tell the parent why
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            if server is not None:
                server.close()
            if service is not None:
                service.close(drain=False, timeout=1.0)
            if session is not None:
                session.close()
        except Exception:
            pass


class ShardHandle:
    """One shard process seen from the router: the forked process, the
    control pipe, and a persistent wire connection (lazily opened,
    dropped on transport failure so the next use reconnects)."""

    def __init__(self, index: int, replica: int, config: ShardConfig) -> None:
        self.index = index
        self.replica = replica
        ctx = multiprocessing.get_context("fork")
        self._conn, child = ctx.Pipe()
        # Not a daemon: a shard running a process executor must be
        # allowed children of its own. Orphan safety comes from the
        # pipe instead — _shard_main parks on conn.recv() and tears
        # everything down on EOFError the moment the router process
        # (and with it this parent pipe end) goes away.
        self.process = ctx.Process(
            target=_shard_main,
            args=(child, config),
            name=f"sj-shard-{index}r{replica}",
            daemon=False,
        )
        self.process.start()
        child.close()
        self.address: Optional[Tuple[str, int]] = None
        self._client: Optional[QueryClient] = None
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"shard{self.index}" + (
            f"r{self.replica}" if self.replica else ""
        )

    def wait_ready(self, timeout: float = 30.0) -> None:
        if not self._conn.poll(timeout):
            raise ShardError(
                f"{self.name} did not report ready within {timeout}s",
                shard=self.index,
            )
        kind, payload = self._conn.recv()
        if kind != "ready":
            raise ShardError(
                f"{self.name} failed to start: {payload}",
                shard=self.index,
            )
        self.address = payload

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One wire round-trip. Transport failures (dead process,
        refused/reset/closed connection) surface as :class:`ShardError`
        after invalidating the cached connection."""
        if not self.process.is_alive():
            self._drop_client()
            raise ShardError(
                f"{self.name} process is dead", shard=self.index
            )
        with self._lock:
            try:
                if self._client is None:
                    host, port = self.address  # type: ignore[misc]
                    self._client = QueryClient(host, port)
                return self._client.request(req)
            except OSError as exc:
                self._drop_client_locked()
                raise ShardError(
                    f"{self.name} transport failure: {exc}",
                    shard=self.index,
                ) from exc
            except WireError as exc:
                if exc.error == "ConnectionClosed":
                    self._drop_client_locked()
                    raise ShardError(
                        f"{self.name} closed the connection",
                        shard=self.index,
                    ) from exc
                raise

    def _drop_client_locked(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None

    def _drop_client(self) -> None:
        with self._lock:
            self._drop_client_locked()

    def kill(self) -> None:
        """Hard-kill the shard process (test hook for failover)."""
        self._drop_client()
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5.0)

    def stop(self, timeout: float = 5.0) -> None:
        self._drop_client()
        try:
            self._conn.send("stop")
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        try:
            self._conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------


class ShardPlacement:
    """Hash placement plus the routing table it implies.

    For each sharded dataset the placement remembers, per shard, the
    set of distinct key tuples that landed there — the collection the
    predicate oracle
    (:meth:`~repro.sources.predicate.ColumnPredicate.any_partition_may_match`)
    is asked about at routing time.
    """

    def __init__(
        self,
        num_shards: int,
        shard_on: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        self.num_shards = num_shards
        self.shard_on: Dict[str, Tuple[str, ...]] = {
            name: tuple(cols) for name, cols in (shard_on or {}).items()
        }
        #: dataset -> per-shard sets of key tuples
        self.keys: Dict[str, List[Set[Tuple[Any, ...]]]] = {}

    def is_sharded(self, name: str) -> bool:
        return name in self.shard_on

    def split(
        self, name: str, rows: Sequence[Dict[str, Any]]
    ) -> List[List[Dict[str, Any]]]:
        """Partition ``rows`` into per-shard lists (strict portable
        hashing) and record the routing table for ``name``."""
        cols = self.shard_on[name]
        parts: List[List[Dict[str, Any]]] = [
            [] for _ in range(self.num_shards)
        ]
        keys: List[Set[Tuple[Any, ...]]] = [
            set() for _ in range(self.num_shards)
        ]
        for row in rows:
            key = tuple(row.get(c) for c in cols)
            j = portable_hash(key, strict=True) % self.num_shards
            parts[j].append(row)
            keys[j].add(key)
        self.keys[name] = keys
        return parts

    def append(
        self, name: str, rows: Sequence[Dict[str, Any]]
    ) -> List[List[Dict[str, Any]]]:
        """Split *appended* rows per shard and extend ``name``'s
        routing table in place — sealed placements never rewrite, new
        key tuples just join their shard's key set (so the predicate
        oracle keeps pruning correctly as a feed grows)."""
        cols = self.shard_on[name]
        parts: List[List[Dict[str, Any]]] = [
            [] for _ in range(self.num_shards)
        ]
        keys = self.keys.setdefault(
            name, [set() for _ in range(self.num_shards)]
        )
        for row in rows:
            key = tuple(row.get(c) for c in cols)
            j = portable_hash(key, strict=True) % self.num_shards
            parts[j].append(row)
            keys[j].add(key)
        return parts

    def forget(self, name: str) -> None:
        self.keys.pop(name, None)

    def may_match(self, name: str, predicate) -> Set[int]:
        """Shards that could hold rows of ``name`` matching
        ``predicate`` (all of them for a None/empty predicate)."""
        if predicate is None or not predicate:
            return set(range(self.num_shards))
        cols = self.shard_on[name]
        keys = self.keys.get(name)
        if keys is None:  # not yet split: no pruning information
            return set(range(self.num_shards))
        return {
            j
            for j in range(self.num_shards)
            if predicate.any_partition_may_match(cols, keys[j])
        }


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------


def _plan_leaves(plan) -> List[Any]:
    """The Load/Scan leaves of a solved plan, in tree order."""
    out: List[Any] = []
    stack = [plan.root]
    while stack:
        node = stack.pop()
        if isinstance(node, (LoadNode, ScanNode)):
            out.append(node)
        for child in node.children():
            stack.append(child)
    return out


class ShardRouter(QueryService):
    """A :class:`QueryService` whose execution hooks scatter-gather
    over a fleet of shard processes.

    Everything north of execution is inherited unchanged: admission
    control, per-tenant round-robin fairness, deadlines, the plan
    cache (the §5.2 search runs once, router-side) and the result
    cache (keyed on the router session's fingerprints). Only
    ``_execute_plan`` / ``_aggregate_plan`` differ: the solved plan's
    scan predicates pick the shards that may hold matching rows, each
    target answers the original query over its slice, and the router
    merges — row concatenation for datasets, partial-aggregate merge
    (:func:`~repro.analysis.aggregate.merge_group_partials`) for
    grouped aggregates, so rows never cross the wire for aggregate
    tickets.

    Parameters (beyond :class:`QueryService`'s)
    -------------------------------------------
    shards:
        Number of primary shard processes.
    shard_on:
        ``{dataset_name: [key columns]}`` — datasets to hash-partition
        across the fleet. Unlisted datasets replicate whole to every
        shard.
    replication:
        Processes per shard index; replicas beyond the first are exact
        mirrors used for transport-level failover.
    shard_executor / shard_num_workers / shard_fault:
        Executor spec each shard session is built with (``shard_fault``
        wraps it in a FaultInjectingExecutor — see
        :class:`ShardConfig`).
    shard_service:
        Extra kwargs for each shard-side :class:`QueryService`.
    """

    def __init__(
        self,
        session,
        shards: int,
        shard_on: Optional[Dict[str, Sequence[str]]] = None,
        replication: int = 1,
        shard_executor: str = "serial",
        shard_num_workers: Optional[int] = None,
        shard_fault: Optional[Dict[str, Any]] = None,
        shard_service: Optional[Dict[str, Any]] = None,
        start_timeout: float = 60.0,
        **kwargs: Any,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.num_shards = shards
        self.replication = replication
        self.placement = ShardPlacement(shards, shard_on)
        config = ShardConfig(
            executor=shard_executor,
            num_workers=shard_num_workers,
            fault=shard_fault,
            service_kwargs=dict(shard_service or {}),
            profile=_shard_profile_state(session),
        )
        self._profile_push_listener = None
        # Fork the fleet *before* the base class starts router worker
        # threads — forking a process with fewer live threads is the
        # safe order, and no query can arrive before __init__ returns.
        self._fleet: List[List[ShardHandle]] = [
            [ShardHandle(j, r, config) for r in range(replication)]
            for j in range(shards)
        ]
        for replicas in self._fleet:
            for handle in replicas:
                handle.wait_ready(start_timeout)
        self._fleet_lock = threading.RLock()
        self._fleet_stamp: Optional[Tuple[int, str]] = None
        self._rr_cursor = 0  # round-robin cursor for unprunable dispatch
        #: (feed name, shard index) -> the shard's feed watermark after
        #: the router's last fan-out; the updates-gather verifies shard
        #: answers against this bookkeeping
        self._feed_marks: Dict[Tuple[str, int], int] = {}
        #: router sub_id -> per-shard subscription bookkeeping
        self._router_subs: Dict[str, Dict[str, Any]] = {}
        self._routing = {
            "scattered": 0,       # queries fanned out
            "shard_requests": 0,  # per-shard query/aggregate requests
            "pruned": 0,          # shard dispatches skipped by routing
            "failovers": 0,       # replica rescues after primary loss
            "stale_retries": 0,   # scatters that straddled churn
        }
        try:
            super().__init__(session, **kwargs)
        except BaseException:
            self._stop_fleet()
            raise
        try:
            self._seed_fleet()
        except BaseException:
            self.close()
            raise
        # Closed loop across process boundaries: when the router-side
        # tuner (or the user) moves a knob, re-push the tuned state so
        # the fleet keeps planning with the router's thresholds. Best
        # effort — a dying shard must not crash the tuner's apply path;
        # the next mutation's sync round re-asserts convergence hard.
        profile = getattr(session, "profile", None)
        if profile is not None:
            def _on_knob_change(name: str, old: Any, new: Any) -> None:
                try:
                    self.push_profile()
                except Exception:
                    pass

            self._profile_push_listener = profile.on_change(
                _on_knob_change
            )

    # ------------------------------------------------------------------
    # replication: seeding and mutations
    # ------------------------------------------------------------------

    def _each_handle(self):
        for replicas in self._fleet:
            for handle in replicas:
                yield handle

    def _live_handles(self, replicas: List[ShardHandle]) -> List[ShardHandle]:
        """The still-running processes of one shard index. A process
        that died cannot rejoin (it missed replicated mutations), so
        replication writes skip it — but a shard index with *no*
        live process left is a hard error: a mutation that silently
        skipped a whole shard would corrupt every later answer."""
        live = [h for h in replicas if h.process.is_alive()]
        if not live:
            raise ShardError(
                f"shard {replicas[0].index} has no live process left "
                f"(replication={len(replicas)})",
                shard=replicas[0].index,
            )
        return live

    def _seed_fleet(self) -> None:
        """Replicate the router session's current catalog to every
        shard process and record the settled fleet stamp."""
        with self._fleet_lock:
            for name, dataset in self.session.snapshot().items():
                self._replicate_dataset(name, dataset)
            self._refresh_fleet_stamp()

    def _replicate_dataset(self, name: str, dataset) -> None:
        rows = dataset.collect()
        schema = dataset.schema
        if self.placement.is_sharded(name):
            parts = self.placement.split(name, rows)
            for j, replicas in enumerate(self._fleet):
                payload = self._register_request(name, schema, parts[j])
                for handle in self._live_handles(replicas):
                    resp = self._replicate(handle, payload)
                    if "watermark" in resp:
                        self._feed_marks[(name, j)] = resp["watermark"]
        else:
            payload = self._register_request(name, schema, rows)
            for j, replicas in enumerate(self._fleet):
                for handle in self._live_handles(replicas):
                    resp = self._replicate(handle, payload)
                    if "watermark" in resp:
                        self._feed_marks[(name, j)] = resp["watermark"]

    def _register_request(
        self, name: str, schema: Schema, rows: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        req = {
            "op": "register",
            "name": name,
            "schema": schema.to_json_dict(),
            "rows": encode_rows(rows, schema, self.session.dictionary),
        }
        if name in self.session.feeds:
            # Live dataset: the shard backs it with a push feed so the
            # router's advance fan-out can grow it in place.
            req["feed"] = True
        return req

    def _replicate(
        self, handle: ShardHandle, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        resp = handle.request(request)
        if not resp.get("ok"):
            raise ShardStateError(
                f"replication of {request.get('op')!r} to {handle.name} "
                f"failed: {resp.get('error')}: {resp.get('message')}"
            )
        return resp

    def _refresh_fleet_stamp(self) -> None:
        """Sync every process and require one agreed-on stamp whose
        state fingerprint matches the router session's.

        The sync request piggybacks the router profile's tuned knob
        values, so the same round that settles the catalog converges
        the fleet on one profile: each shard adopts the tuned values
        (:meth:`~repro.config.TuningProfile.apply_tuned`) and reports
        its resulting tuned state back, which is checked knob-by-knob
        with :func:`repro.config.diff` — a shard that silently kept a
        stale threshold would plan joins differently from the rest of
        the fleet, so disagreement is a hard :class:`ShardStateError`,
        not a warning."""
        profile = getattr(self.session, "profile", None)
        sync_req: Dict[str, Any] = {"op": "sync"}
        tuned: Dict[str, Any] = {}
        if profile is not None:
            state = profile.tuned_state()
            tuned = state["tuned"]
            sync_req["profile"] = state
        stamps = set()
        profile_versions: Set[int] = set()
        for replicas in self._fleet:
            for handle in self._live_handles(replicas):
                resp = self._replicate(handle, sync_req)
                stamps.add((resp["catalog_version"], resp["state"]))
                if profile is not None and "profile_version" in resp:
                    mismatch = profile_diff(
                        tuned, resp.get("profile_tuned") or {}
                    )
                    if mismatch:
                        raise ShardStateError(
                            f"{handle.name} did not adopt the router's "
                            f"tuned profile: {mismatch}"
                        )
                    profile_versions.add(int(resp["profile_version"]))
        if len(stamps) != 1:
            raise ShardStateError(
                f"fleet did not converge after replication: {stamps}"
            )
        if len(profile_versions) > 1:
            raise ShardStateError(
                "fleet profile versions diverged after sync: "
                f"{sorted(profile_versions)}"
            )
        stamp = stamps.pop()
        local = self.session.state_fingerprint()
        if stamp[1] != local:
            raise ShardStateError(
                "shard state fingerprint diverged from the router's "
                f"({stamp[1][:12]}… != {local[:12]}…); state that does "
                "not replicate (session-local derivations, direct "
                "dictionary edits) cannot back a sharded fleet"
            )
        self._fleet_stamp = stamp

    def push_profile(self) -> None:
        """Propagate the router profile's tuned knob values to every
        live shard and re-assert fleet agreement (one profile version,
        zero knob diff). Called automatically whenever a router-side
        knob changes; public so tests and operators can force a
        convergence round."""
        with self._fleet_lock:
            self._refresh_fleet_stamp()

    # -- mutation surface (apply locally, replicate, re-stamp) ---------

    def register_rows(
        self,
        rows: List[Dict[str, Any]],
        schema: Schema,
        name: str,
        num_partitions: Optional[int] = None,
        shard_on: Optional[Sequence[str]] = None,
    ):
        """Register a dataset on the router session *and* across the
        fleet. ``shard_on`` hash-partitions it; omitted, it replicates
        whole."""
        with self._fleet_lock:
            ds = self.session.register_rows(
                rows, schema, name, num_partitions
            )
            if shard_on is not None:
                self.placement.shard_on[name] = tuple(shard_on)
            self._replicate_dataset(name, ds)
            self._refresh_fleet_stamp()
            return ds

    def drop(self, name: str):
        """Drop a dataset on the router session and across the fleet."""
        with self._fleet_lock:
            ds = self.session.drop(name)
            self.placement.forget(name)
            payload = {"op": "drop", "name": name}
            for replicas in self._fleet:
                for handle in self._live_handles(replicas):
                    self._replicate(handle, payload)
            self._refresh_fleet_stamp()
            return ds

    def define_dimension(
        self,
        name: str,
        continuous: bool,
        ordered: bool,
        description: str = "",
    ):
        with self._fleet_lock:
            out = self.session.define_dimension(
                name, continuous, ordered, description
            )
            payload = {
                "op": "define_dimension",
                "name": name,
                "continuous": continuous,
                "ordered": ordered,
                "description": description,
            }
            for replicas in self._fleet:
                for handle in self._live_handles(replicas):
                    self._replicate(handle, payload)
            self._refresh_fleet_stamp()
            return out

    def define_unit(
        self,
        name: str,
        kind: str,
        dimension: Optional[str] = None,
        scale: float = 1.0,
        offset: float = 0.0,
    ):
        with self._fleet_lock:
            out = self.session.define_unit(
                name, kind, dimension, scale, offset
            )
            payload = {
                "op": "define_unit",
                "name": name,
                "kind": kind,
                "dimension": dimension,
                "scale": scale,
                "offset": offset,
            }
            for replicas in self._fleet:
                for handle in self._live_handles(replicas):
                    self._replicate(handle, payload)
            self._refresh_fleet_stamp()
            return out

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _route(self, plan) -> List[int]:
        """Target shard indices for one solved plan."""
        leaves = _plan_leaves(plan)
        sharded: Dict[str, Any] = {}
        for node in leaves:
            name = node.dataset_name
            if not self.placement.is_sharded(name):
                continue
            pred = node.predicate if isinstance(node, ScanNode) else None
            if name in sharded:
                # Same dataset scanned twice (self-join): both scans
                # must be satisfiable, so the predicates AND at the
                # routing level — intersection below handles it.
                sharded[name + f"#{id(node)}"] = (name, pred)
            else:
                sharded[name] = (name, pred)
        if not sharded:
            # Replicated-only plan: any one shard answers it whole.
            with self._fleet_lock:
                self._rr_cursor = (self._rr_cursor + 1) % self.num_shards
                return [self._rr_cursor]
        shard_cols = {
            self.placement.shard_on[name]
            for name, _ in sharded.values()
        }
        if len(shard_cols) > 1:
            raise ShardRoutingError(
                "plan combines datasets sharded on different keys "
                f"({sorted(shard_cols)}); co-shard them or replicate "
                "one side"
            )
        targets: Optional[Set[int]] = None
        for name, pred in sharded.values():
            s = self.placement.may_match(name, pred)
            targets = s if targets is None else (targets & s)
        assert targets is not None
        if not targets:
            # Provably-empty answer; one shard still computes the
            # correctly-shaped empty result.
            with self._fleet_lock:
                self._rr_cursor = (self._rr_cursor + 1) % self.num_shards
                return [self._rr_cursor]
        return sorted(targets)

    # ------------------------------------------------------------------
    # scatter-gather
    # ------------------------------------------------------------------

    def _shard_request(
        self, j: int, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Send to shard ``j``, failing over replica by replica on
        transport loss."""
        last: Optional[ShardError] = None
        for attempt, handle in enumerate(self._fleet[j]):
            try:
                resp = handle.request(request)
            except ShardError as exc:
                last = exc
                continue
            if attempt > 0:
                with self._fleet_lock:
                    self._routing["failovers"] += 1
                if self.metrics.registry is not None:
                    self.metrics.registry.inc("serve.shard.failovers")
            return resp
        raise ShardError(
            f"shard {j} unreachable on all {len(self._fleet[j])} "
            f"replicas: {last}",
            shard=j,
        )

    def _scatter(
        self,
        plan,
        ticket: QueryTicket,
        request: Dict[str, Any],
    ) -> List[Dict[str, Any]]:
        """Fan ``request`` over the plan's target shards, enforcing
        per-shard deadline budgets and fleet-stamp consistency."""
        with self._fleet_lock:
            expected = self._fleet_stamp
        targets = self._route(plan)
        request = dict(request, tenant=ticket.tenant)
        with self._fleet_lock:
            self._routing["scattered"] += 1
            self._routing["shard_requests"] += len(targets)
            self._routing["pruned"] += self.num_shards - len(targets)
        if self.metrics.registry is not None:
            self.metrics.registry.inc("serve.shard.requests", len(targets))
            self.metrics.registry.inc(
                "serve.shard.pruned", self.num_shards - len(targets)
            )
        responses = []
        for j in targets:
            if ticket.deadline is not None:
                budget = ticket.deadline - self._clock()
                if budget <= 0:
                    from repro.errors import QueryTimeoutError

                    raise QueryTimeoutError(
                        "deadline expired mid-scatter "
                        f"(shard {j} of {targets})"
                    )
                request["timeout"] = budget
            resp = self._shard_request(j, request)
            if not resp.get("ok"):
                raise WireError(
                    str(resp.get("error", "UnknownError")),
                    f"shard {j}: " + str(resp.get("message", "")),
                )
            stamp = (resp.get("catalog_version"), resp.get("state"))
            if expected is not None and stamp != expected:
                with self._fleet_lock:
                    self._routing["stale_retries"] += 1
                raise ShardStaleReadError(
                    f"shard {j} answered at stamp {stamp}, fleet "
                    f"expected {expected} (catalog churn mid-scatter)",
                    shard=j,
                )
            responses.append(resp)
        return responses

    def _wire_query(self, ticket: QueryTicket) -> Dict[str, Any]:
        q = ticket.query
        values: List[Any] = []
        for t in q.values:
            if getattr(t, "units", None):
                values.append([t.dimension, t.units])
            else:
                values.append(t.dimension)
        return {
            "domains": list(q.domains),
            "values": values,
            "filters": [f.to_json_dict() for f in q.filters],
        }

    # -- execution hooks -----------------------------------------------

    def _execute_plan(
        self,
        plan,
        ticket: QueryTicket,
        state: str,
        version: int,
    ) -> ScrubJayDataset:
        request = dict(self._wire_query(ticket), op="query")
        responses = self._scatter(plan, ticket, request)
        schema: Optional[Schema] = None
        schema_json: Optional[dict] = None
        name = "result"
        rows: List[Dict[str, Any]] = []
        for resp in responses:
            if schema is None:
                schema_json = resp["schema"]
                schema = Schema.from_json_dict(schema_json)
                name = resp.get("name", name)
            elif resp["schema"] != schema_json:
                raise ShardStateError(
                    "shards answered one query with different result "
                    "schemas — fleet state has diverged"
                )
            rows.extend(
                decode_rows(resp["rows"], schema, self.session.dictionary)
            )
        assert schema is not None
        return ScrubJayDataset.from_rows(
            self.session.ctx, rows, schema, name
        )

    def _aggregate_plan(
        self,
        plan,
        ticket: QueryTicket,
        state: str,
        version: int,
    ) -> Dict[Tuple, Any]:
        spec = ticket.aggregate
        assert spec is not None
        request = dict(
            self._wire_query(ticket),
            op="aggregate",
            # shards always answer with mergeable partials; the
            # router merges across shards and finalizes once
            **spec.as_partial().to_wire(),
        )
        responses = self._scatter(plan, ticket, request)
        merged: Dict[Tuple, Any] = {}
        schema: Optional[Schema] = None
        for resp in responses:
            schema = Schema.from_json_dict(resp["schema"])
            partials = decode_groups(
                resp["groups"],
                list(spec.group_by),
                schema,
                self.session.dictionary,
                partial_how=spec.how,
            )
            merge_group_partials(merged, partials, spec.how)
        ticket.result_schema = schema
        if spec.partial:
            return merged
        return finalize_group_partials(merged, spec.how)

    # ------------------------------------------------------------------
    # streaming: feed fan-out and scatter-gather subscriptions
    # ------------------------------------------------------------------

    def _stream_request(
        self, handle: ShardHandle, req: Dict[str, Any]
    ) -> Dict[str, Any]:
        resp = handle.request(req)
        if not resp.get("ok"):
            raise WireError(
                str(resp.get("error", "UnknownError")),
                f"{handle.name}: " + str(resp.get("message", "")),
            )
        return resp

    def subscribe(
        self,
        query,
        values: Sequence[Any] = (),
        tenant: str = "default",
        filters: Sequence = (),
        aggregate: Optional[AggregateSpec] = None,
    ) -> Subscription:
        """Standing query over the fleet: subscribe on *every* shard
        (future appends may hash new key tuples anywhere, so routing
        cannot prune standing queries) and keep the merged answer
        router-side — row concatenation for datasets, partial-
        aggregate merge for grouped aggregates. Shard refreshes run
        shard-local (delta where their plans allow); the router only
        re-gathers and re-merges. A metric ``query`` ships its full
        JSON to the shards, so each buckets its own plan and derives
        the same spec."""
        session = self.session
        query = as_query(query, values, filters)
        if query.is_metric and aggregate is not None:
            raise ServiceError(
                "a metric subscription derives its aggregate from "
                "the measures; drop the AggregateSpec"
            )
        state = session.state_fingerprint()
        nq = normalize_query(query)
        plan = self.plan_cache.get_or_solve(
            plan_key(state, nq),
            lambda: self._solve_serve_plan(nq),
        )
        dplan = DeltaPlan(plan)
        feed_names = tuple(
            n for n in dplan.dataset_names() if n in session.feeds
        )
        wire_values: List[Any] = []
        for t in query.values:
            if getattr(t, "units", None):
                wire_values.append([t.dimension, t.units])
            else:
                wire_values.append(t.dimension)
        req: Dict[str, Any] = {
            "op": "subscribe",
            "domains": list(query.domains),
            "values": wire_values,
            "tenant": tenant,
            "filters": [f.to_json_dict() for f in query.filters],
        }
        if query.is_metric:
            # each shard rebuilds the bucketed plan and the spec from
            # the query itself; the router keeps the finalizing copy
            aggregate = AggregateSpec.for_metric_query(
                plan.derive_schema(
                    session.schemas(), session.dictionary
                ),
                query,
            )
            req.update(query=query.to_json_dict(), partial=True)
        elif aggregate is not None:
            # the router merges, then finalizes
            req.update(aggregate.as_partial().to_wire())
        with self._fleet_lock:
            marks = {
                n: session.feeds[n].watermark for n in feed_names
            }
            book: Dict[str, Any] = {
                "shard_subs": {}, "versions": {},
                "rows": {}, "partials": {},
            }
            schema: Optional[Schema] = None
            for j in range(self.num_shards):
                # Primary only: a subscription is stateful server-side,
                # so its updates must keep hitting the same process.
                resp = self._stream_request(self._fleet[j][0], req)
                book["shard_subs"][j] = resp["sub_id"]
                book["versions"][j] = resp["version"]
                if schema is None and resp.get("schema") is not None:
                    schema = Schema.from_json_dict(resp["schema"])
                if aggregate is not None:
                    book["partials"][j] = decode_groups(
                        resp.get("groups") or [],
                        list(aggregate.group_by),
                        schema, session.dictionary,
                        partial_how=aggregate.how,
                    )
                else:
                    book["rows"][j] = decode_rows(
                        resp.get("rows") or [], schema,
                        session.dictionary,
                    )
            rows = partials = None
            if aggregate is not None:
                partials = {}
                for part in book["partials"].values():
                    merge_group_partials(partials, part, aggregate.how)
            else:
                rows = [
                    r for j in sorted(book["rows"])
                    for r in book["rows"][j]
                ]
            with self._subs_lock:
                self._sub_counter += 1
                sub_id = f"sub-{self._sub_counter}"
                sub = Subscription(
                    sub_id, tenant, query, plan, dplan, aggregate,
                    feed_names, marks, schema,
                    rows=rows, partials=partials,
                )
                self._subs[sub_id] = sub
            self._router_subs[sub_id] = book
        reg = self.metrics.registry
        if reg is not None:
            reg.inc("stream.subscribe")
        return sub

    def unsubscribe(self, sub_id: str) -> bool:
        with self._fleet_lock:
            book = self._router_subs.pop(sub_id, None)
            if book is not None:
                for j, shard_sub in book["shard_subs"].items():
                    try:
                        self._stream_request(
                            self._fleet[j][0],
                            {"op": "unsubscribe", "sub_id": shard_sub},
                        )
                    except (ShardError, WireError):
                        pass  # best-effort: the shard GCs on close
        return super().unsubscribe(sub_id)

    def advance(
        self,
        name: str,
        rows: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Advance feed ``name`` fleet-wide: grow the router session's
        feed, route the appended rows to their owning shards (hash
        placement for sharded datasets — extending the routing table
        in place — whole-row replication otherwise), then refresh
        dependent standing subscriptions by re-gathering shard
        answers. Serialized under the fleet lock, so concurrent
        advances and refreshes can never interleave into a
        mixed-watermark answer."""
        session = self.session
        try:
            feed = session.feed(name)
        except ScrubJayError as exc:
            raise SubscriptionError(str(exc)) from exc
        with self._fleet_lock:
            adv = (
                feed.push(rows) if rows is not None else feed.advance()
            )
            evicted = refreshed = 0
            if adv.advanced:
                self._fan_feed_rows(
                    name, adv.rows, session.dataset(name).schema
                )
                evicted = self.result_cache.invalidate_dataset(name)
                with self._subs_lock:
                    dependents = [
                        s for s in self._subs.values()
                        if name in s.feed_names and not s.closed
                    ]
                for sub in dependents:
                    if self._refresh_subscription(sub):
                        refreshed += 1
            return {
                "name": name,
                "since": adv.since,
                "watermark": adv.watermark,
                "rows_added": adv.rows_added,
                "evicted": evicted,
                "subscriptions_refreshed": refreshed,
            }

    def _fan_feed_rows(
        self, name: str, rows: List[Dict[str, Any]], schema: Schema
    ) -> None:
        """Route appended feed rows to the fleet (caller holds the
        fleet lock) and record each shard's post-append watermark."""
        parts = (
            self.placement.append(name, rows)
            if self.placement.is_sharded(name)
            else None
        )
        for j, replicas in enumerate(self._fleet):
            shard_rows = parts[j] if parts is not None else rows
            req = {
                "op": "advance",
                "name": name,
                "rows": encode_rows(
                    shard_rows, schema, self.session.dictionary
                ),
            }
            marks: Set[int] = set()
            for handle in self._live_handles(replicas):
                resp = self._replicate(handle, req)
                marks.add(int(resp["watermark"]))
            if len(marks) != 1:
                raise ShardStateError(
                    f"replicas of shard {j} disagree on the feed "
                    f"watermark of {name!r}: {sorted(marks)}"
                )
            self._feed_marks[(name, j)] = marks.pop()

    def _refresh_subscription(self, sub: Subscription) -> bool:
        """Scatter-gather refresh: pull each shard's standing answer
        forward (``updates`` since the version the router last saw)
        and re-merge. Every shard answer's watermarks must match the
        router's fan-out bookkeeping — a shard that advanced outside
        the router (or hasn't settled) is retried briefly, then
        surfaces :class:`StaleRefreshError`, mirroring the
        ShardStaleReadError contract of the query path."""
        book = self._router_subs.get(sub.sub_id)
        if book is None:  # not a fleet subscription (defensive)
            return super()._refresh_subscription(sub)
        session = self.session
        with sub._refresh_lock:
            targets = {
                n: session.feeds[n].watermark
                for n in sub.feed_names if n in session.feeds
            }
            if targets == sub.watermarks:
                return False
            modes: List[str] = []
            for j, shard_sub in book["shard_subs"].items():
                handle = self._fleet[j][0]
                resp = None
                for attempt in range(4):
                    resp = self._stream_request(handle, {
                        "op": "updates",
                        "sub_id": shard_sub,
                        "since_version": book["versions"][j],
                    })
                    settled = all(
                        resp.get("watermarks", {}).get(n)
                        == self._feed_marks.get((n, j))
                        for n in sub.feed_names
                        if (n, j) in self._feed_marks
                    )
                    if settled:
                        break
                    self._routing["stale_retries"] += 1
                    time.sleep(0.01 * (attempt + 1))
                else:
                    raise StaleRefreshError(
                        f"shard {j} never settled at the router's "
                        f"watermarks for subscription {sub.sub_id!r}"
                    )
                book["versions"][j] = resp["version"]
                if resp.get("changed"):
                    modes.append(str(resp.get("refresh_mode")))
                    if sub.aggregate is not None:
                        book["partials"][j] = decode_groups(
                            resp.get("groups") or [],
                            list(sub.aggregate.group_by),
                            sub.schema, session.dictionary,
                            partial_how=sub.aggregate.how,
                        )
                    else:
                        book["rows"][j] = decode_rows(
                            resp.get("rows") or [], sub.schema,
                            session.dictionary,
                        )
            mode = (
                "delta"
                if modes and all(m == "delta" for m in modes)
                else "replay"
            )
            if sub.aggregate is not None:
                merged: Dict[Tuple, Any] = {}
                for part in book["partials"].values():
                    merge_group_partials(
                        merged, part, sub.aggregate.how
                    )
                sub._commit_replace(targets, partials=merged, mode=mode)
            else:
                sub._commit_replace(
                    targets,
                    rows=[
                        r for j in sorted(book["rows"])
                        for r in book["rows"][j]
                    ],
                    mode=mode,
                )
            key = (
                "refresh_delta" if mode == "delta" else "refresh_replay"
            )
            with self._subs_lock:
                self._stream_stats[key] += 1
            reg = self.metrics.registry
            if reg is not None:
                reg.inc(
                    "stream.refresh.delta" if mode == "delta"
                    else "stream.refresh.replay"
                )
        return True

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def snapshot(self):
        """The router's own snapshot plus a ``shards`` block: one
        sub-snapshot per shard process, fleet-wide totals, and the
        routing counters (dispatched/pruned/failovers)."""
        snap = super().snapshot()
        per_shard: Dict[str, Any] = {}
        fleet = {"completed": 0, "failed": 0, "submitted": 0, "shed": 0}
        for handle in self._each_handle():
            try:
                resp = handle.request({"op": "metrics"})
                m = resp["metrics"] if resp.get("ok") else {
                    "alive": False, "error": resp.get("message")
                }
            except ShardError as exc:
                m = {"alive": False, "error": str(exc)}
            per_shard[handle.name] = m
            for k in fleet:
                fleet[k] += int(m.get(k, 0) or 0)
        with self._fleet_lock:
            routing = dict(self._routing)
        snap.shards = {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "per_shard": per_shard,
            "fleet": fleet,
            "routing": routing,
        }
        return snap

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome-trace export of the whole fleet: the router's spans
        on pid 1 and each shard process's spans on its own pid lane."""
        from repro.obs.export import to_chrome_trace

        tracer = getattr(self.session.ctx, "tracer", None)
        roots = tracer.roots() if tracer is not None else []
        out = to_chrome_trace(roots)
        events = out["traceEvents"]
        events.append({
            "name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": "shard-router"},
        })
        for handle in self._each_handle():
            pid = 2 + handle.index * self.replication + handle.replica
            try:
                resp = handle.request({"op": "trace"})
            except ShardError:
                continue
            if not resp.get("ok"):
                continue
            for ev in resp["trace"].get("traceEvents", []):
                ev = dict(ev, pid=pid)
                events.append(ev)
            label = f"shard {handle.index}"
            if handle.replica:
                label += f" replica {handle.replica}"
            events.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "args": {"name": label},
            })
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _stop_fleet(self) -> None:
        for handle in self._each_handle():
            try:
                handle.stop()
            except Exception:
                pass

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        listener = getattr(self, "_profile_push_listener", None)
        if listener is not None:
            profile = getattr(self.session, "profile", None)
            if profile is not None:
                profile.remove_listener(listener)
            self._profile_push_listener = None
        super().close(drain=drain, timeout=timeout)
        self._stop_fleet()

    def __repr__(self) -> str:
        return (
            f"ShardRouter(shards={self.num_shards}, "
            f"replication={self.replication}, "
            f"sharded_datasets={sorted(self.placement.shard_on)})"
        )
