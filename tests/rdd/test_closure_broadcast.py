"""Per-stage closure broadcast in the process executor.

The stage function is cloudpickled once per stage on the driver and
deserialized once per stage in each worker, instead of a cloudpickle
round-trip per task — closures can carry a broadcast-hash join's whole
build map, so per-task serialization would scale that cost by task
count.
"""

from __future__ import annotations

import operator

import pytest

import repro.rdd.executors as ex
from repro.rdd import SJContext
from repro.rdd.executors import ProcessExecutor, _invoke_stage_task


# ----------------------------------------------------------------------
# worker-side cache (unit, no processes needed)
# ----------------------------------------------------------------------

@pytest.fixture(autouse=True)
def _reset_worker_cache():
    saved = dict(ex._WORKER_STAGE_CACHE)
    ex._WORKER_STAGE_CACHE.update(key=None, fn=None)
    yield
    ex._WORKER_STAGE_CACHE.update(saved)


def _payload(fn, monkeypatch, counter):
    real_loads = ex.cloudpickle.loads

    def counting_loads(b):
        counter[0] += 1
        return real_loads(b)

    monkeypatch.setattr(ex.cloudpickle, "loads", counting_loads)
    return ex.cloudpickle.dumps(fn)


def test_worker_deserializes_once_per_stage(monkeypatch):
    loads = [0]
    payload = _payload(lambda i, items: [x * 2 for x in items],
                       monkeypatch, loads)
    key = ("exec", 1)
    assert _invoke_stage_task(key, payload, 0, [1, 2]) == [2, 4]
    assert _invoke_stage_task(key, payload, 1, [3]) == [6]
    assert _invoke_stage_task(key, payload, 2, [4]) == [8]
    assert loads[0] == 1  # three tasks, one deserialization


def test_new_stage_key_invalidates_cache(monkeypatch):
    loads = [0]
    p1 = _payload(lambda i, items: items, monkeypatch, loads)
    p2 = ex.cloudpickle.dumps(lambda i, items: [-x for x in items])
    assert _invoke_stage_task(("e", 1), p1, 0, [5]) == [5]
    assert _invoke_stage_task(("e", 2), p2, 0, [5]) == [-5]
    assert _invoke_stage_task(("e", 2), p2, 1, [6]) == [-6]
    assert loads[0] == 2  # one per distinct stage key


def test_cache_distinguishes_executors(monkeypatch):
    # two executors may both be on stage 1; their keys must not collide
    loads = [0]
    pa = _payload(lambda i, items: ["a"] * len(items),
                  monkeypatch, loads)
    pb = ex.cloudpickle.dumps(lambda i, items: ["b"] * len(items))
    assert _invoke_stage_task(("exec-a", 1), pa, 0, [0]) == ["a"]
    assert _invoke_stage_task(("exec-b", 1), pb, 0, [0]) == ["b"]
    assert _invoke_stage_task(("exec-a", 1), pa, 0, [0]) == ["a"]
    assert loads[0] == 3  # alternation evicts; correctness intact


# ----------------------------------------------------------------------
# driver-side accounting + end-to-end on a spawn pool
# ----------------------------------------------------------------------

def test_spawn_pool_pickles_closure_once_per_stage():
    execr = ProcessExecutor(2, start_method="spawn")
    with SJContext(executor=execr, default_parallelism=4) as ctx:
        pairs = [(i % 5, i) for i in range(100)]
        got = dict(
            ctx.parallelize(pairs, 8)
            .mapValues(lambda v: v * 2)
            .reduceByKey(operator.add, 4)
            .collect()
        )
        want: dict = {}
        for k, v in pairs:
            want[k] = want.get(k, 0) + 2 * v
        assert got == want
        # narrow (8 tasks) + shuffle-map (8) + shuffle-reduce (4): the
        # closure crosses cloudpickle once per *stage*, not per task
        assert execr.closure_pickle_count == 3


def test_spawn_pool_broadcast_join_correct():
    left = [(i % 7, i) for i in range(60)]
    right = [(k, f"r{k}") for k in range(7)]
    want = sorted((k, (v, f"r{k}")) for k, v in left)
    execr = ProcessExecutor(2, start_method="spawn")
    with SJContext(executor=execr, default_parallelism=4) as ctx:
        got = sorted(
            ctx.parallelize(left, 6)
            .adaptiveJoin(ctx.parallelize(right, 2))
            .collect()
        )
        assert ctx.report.joins()[-1].strategy == "broadcast"
    assert got == want
