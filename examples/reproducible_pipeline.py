#!/usr/bin/env python3
"""Reproducible derivation sequences and the derivation cache (§5.4).

Demonstrates the three destinations of a derivation result in the
paper's Figure 2:

1. **store the sequence, not the result** — serialize the plan to
   JSON, hand it to another analyst (here: a fresh session), and
   re-execute it on their data;
2. **edit the human-readable pipeline** — an advanced user tweaks the
   explode period and interpolation window directly in the JSON and
   re-runs the modified pipeline;
3. **unwrap the result** — dump the derived relation to CSV and to a
   SQL table for analysis with other tools;

plus the opt-in on-disk derivation cache: re-executing a sequence (or
one sharing an expensive prefix) reuses cached intermediates.

Run: python examples/reproducible_pipeline.py
"""

import json
import os
import tempfile
import time

from repro import ScrubJaySession, TuningProfile
from repro.datagen import generate_dat1
from repro.datagen.facility import FacilityConfig
from repro.wrappers import CSVUnwrapper, SQLUnwrapper


def fresh_session(dat, cache_dir=None) -> ScrubJaySession:
    sj = ScrubJaySession(TuningProfile(cache_dir=cache_dir))
    dat.register(sj)
    return sj


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="scrubjay-pipeline-")
    dat = generate_dat1(
        facility_config=FacilityConfig(num_racks=8, nodes_per_rack=6),
        duration=3600.0, amg_rack=5, amg_start=600.0, amg_duration=2400.0,
        include_aux_feeds=False,
    )

    # ------------------------------------------------------------------
    # 1. analyst A plans a derivation and shares the JSON
    # ------------------------------------------------------------------
    plan_path = os.path.join(workdir, "heat_pipeline.json")
    with fresh_session(dat) as sj_a:
        plan = (sj_a.query().across("jobs", "racks")
                .values("applications", "heat").plan())
        sj_a.save_plan(plan, plan_path)
        count_a = sj_a.execute(plan).count()
    print(f"analyst A derived {count_a} rows; pipeline saved to "
          f"{plan_path}")

    # ------------------------------------------------------------------
    # 2. analyst B reloads and re-executes the identical pipeline
    # ------------------------------------------------------------------
    with fresh_session(dat) as sj_b:
        reloaded = sj_b.load_plan(plan_path)
        count_b = sj_b.execute(reloaded).count()
    assert count_a == count_b
    print(f"analyst B re-executed it bit-for-bit: {count_b} rows ✓")

    # ------------------------------------------------------------------
    # 3. an advanced user edits the JSON directly: coarser time grid
    # ------------------------------------------------------------------
    with open(plan_path) as f:
        doc = json.load(f)

    def retune(node):
        if isinstance(node, dict):
            op = node.get("transform", node.get("combine", {}))
            if op.get("op") == "explode_continuous":
                op["period"] = 240.0  # was 60 s
            if op.get("op") == "interpolation_join":
                op["window"] = 240.0  # was 120 s
            for v in node.values():
                retune(v)

    retune(doc)
    tuned_path = os.path.join(workdir, "heat_pipeline_coarse.json")
    with open(tuned_path, "w") as f:
        json.dump(doc, f, indent=2)

    with fresh_session(dat) as sj_c:
        tuned = sj_c.load_plan(tuned_path)
        result = sj_c.execute(tuned)
        count_c = result.count()
        print(f"hand-edited pipeline (4-minute grid) derives {count_c} "
              f"rows (≈¼ of {count_b}) ✓")

        # ------------------------------------------------------------------
        # 4. unwrap the result for other tools
        # ------------------------------------------------------------------
        csv_path = os.path.join(workdir, "derived_heat.csv")
        CSVUnwrapper(csv_path, sj_c.dictionary).save(result)
        db_path = os.path.join(workdir, "derived.db")
        SQLUnwrapper(db_path, "derived_heat", sj_c.dictionary).save(result)
        back = (sj_c.ingest()
                .sql(db_path, result.schema, table="derived_heat")
                .load("derived_heat"))
        assert back.count() == count_c
        print(f"unwrapped to {csv_path} and sqlite table 'derived_heat' ✓")

    # ------------------------------------------------------------------
    # 5. the opt-in derivation cache
    # ------------------------------------------------------------------
    cache_dir = os.path.join(workdir, "cache")
    with fresh_session(dat, cache_dir=cache_dir) as sj_d:
        plan = sj_d.load_plan(plan_path)
        t0 = time.perf_counter()
        sj_d.execute(plan).count()
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        sj_d.execute(plan).count()
        warm = time.perf_counter() - t0
        print(f"derivation cache: cold {cold:.2f}s → warm {warm:.2f}s "
              f"({sj_d.cache.hits} hits, {len(sj_d.cache)} entries)")


if __name__ == "__main__":
    main()
