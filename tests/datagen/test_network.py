"""Network/filesystem substrate: topology, counters, planted signals."""

import pytest

from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.network import (
    FS_COUNTER_SCHEMA,
    LINK_COUNTER_SCHEMA,
    NODE_UPLINK_SCHEMA,
    FS_ASSIGNMENT_SCHEMA,
    NetworkCounterSimulator,
    NetworkTopology,
    ensure_network_semantics,
    generate_dat3,
)
from repro.datagen.scheduler import JobScheduler
from repro import default_dictionary


@pytest.fixture()
def topo():
    fac = Facility(FacilityConfig(num_racks=2, nodes_per_rack=2))
    return NetworkTopology(fac, num_fs_servers=2)


@pytest.fixture()
def sim(topo):
    sched = JobScheduler(topo.facility)
    sched.pin("Kripke", [0], 0.0, 1200.0)  # network-heavy, checkpoints
    sched.pin("prime95", [1], 0.0, 1200.0)  # network-quiet
    return NetworkCounterSimulator(topo, sched, seed=3)


def test_topology_links(topo):
    links = topo.links()
    assert len(links) == 4 + 2  # node uplinks + rack uplinks
    assert topo.node_uplink(3) in links
    assert topo.rack_uplink(1) in links


def test_uplink_rows_cover_every_node(topo):
    rows = topo.uplink_rows()
    assert {r["node"] for r in rows} == set(topo.facility.nodes())
    assert all(r["link"] == f"link-n{r['node']}" for r in rows)


def test_fs_assignment_stripes_nodes(topo):
    rows = topo.fs_assignment_rows()
    servers = {r["fs_server"] for r in rows}
    assert servers == {0, 1}
    # striping balances within one node of equal
    counts = [sum(1 for r in rows if r["fs_server"] == s) for s in servers]
    assert max(counts) - min(counts) <= 1


def test_rejects_zero_servers(topo):
    with pytest.raises(ValueError):
        NetworkTopology(topo.facility, num_fs_servers=0)


def test_schemas_validate():
    d = default_dictionary()
    ensure_network_semantics(d)
    for schema in (NODE_UPLINK_SCHEMA, FS_ASSIGNMENT_SCHEMA,
                   LINK_COUNTER_SCHEMA, FS_COUNTER_SCHEMA):
        d.validate_schema(schema)


def test_link_counters_cumulative(sim):
    rows = [r for r in sim.link_counter_rows(0.0, 300.0, period=10.0)
            if r["link"] == "link-n0"]
    rows.sort(key=lambda r: r["time"])
    decreases = sum(1 for a, b in zip(rows, rows[1:])
                    if b["bytes"] < a["bytes"])
    assert decreases <= 1  # only the rare reset


def test_busy_node_link_outpaces_quiet_one(sim):
    rows = sim.link_counter_rows(0.0, 600.0, period=10.0,
                                 links=["link-n0", "link-n1"])

    def total_delta(link):
        series = sorted((r for r in rows if r["link"] == link),
                        key=lambda r: r["time"])
        deltas = [b["bytes"] - a["bytes"]
                  for a, b in zip(series, series[1:])
                  if b["bytes"] >= a["bytes"]]
        return sum(deltas)

    assert total_delta("link-n0") > 20 * total_delta("link-n1")


def test_checkpoint_bursts_visible_on_link(sim):
    # Kripke checkpoints every 1200 s for 40 s starting at t=0; sample
    # densely and look for the high-rate window at the run start
    rows = sorted(
        sim.link_counter_rows(0.0, 300.0, period=5.0, links=["link-n0"]),
        key=lambda r: r["time"],
    )
    rates = [
        ((b["bytes"] - a["bytes"]) / (b["time"] - a["time"]),
         b["time"].epoch)
        for a, b in zip(rows, rows[1:]) if b["bytes"] >= a["bytes"]
    ]
    burst = [r for r, t in rates if t < 35.0]
    steady = [r for r, t in rates if 80.0 < t < 280.0]
    assert min(burst) > 1.2 * max(steady)


def test_fs_counters_pending_spikes_under_checkpoint(sim):
    rows = sim.fs_counter_rows(0.0, 600.0, period=10.0)
    server0 = [r for r in rows if r["fs_server"] == 0]  # serves node 0
    burst = [r["pending_ops"] for r in server0 if r["time"].epoch < 35.0]
    steady = [r["pending_ops"] for r in server0
              if 100.0 < r["time"].epoch < 500.0]
    assert max(burst) > 3 * (sum(steady) / len(steady))


def test_fs_counters_deterministic(sim):
    assert sim.fs_counter_rows(0.0, 100.0) == sim.fs_counter_rows(0.0, 100.0)


def test_generate_dat3_bundle():
    dat = generate_dat3(duration=1200.0, counter_period=30.0)
    assert set(dat.datasets) == {
        "job_queue_log", "node_uplinks", "fs_assignment",
        "link_counters", "fs_counters",
    }
    d = default_dictionary()
    ensure_network_semantics(d)
    from repro.datagen.dat import ensure_semantics
    ensure_semantics(d)
    for _rows, schema in dat.datasets.values():
        d.validate_schema(schema)
