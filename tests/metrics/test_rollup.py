"""Materialized rollups: materialization, routing, and incremental
freshness."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.errors import QueryError, ScrubJayError
from repro.units.temporal import Timestamp

from tests.metrics.conftest import (
    RACK_POWER_SCHEMA,
    assert_groups_equal,
    manual_groups,
    power_rows,
)


def metric_q(sj, how="mean", grain="1h", window=None):
    b = sj.query().measure("power", how, window=window)
    return b.per("racks").grain(grain).build()


def raw_truth(q):
    """The same query answered by a rollup-free session."""
    ref = ScrubJaySession()
    try:
        ref.register_rows(power_rows(), RACK_POWER_SCHEMA, "rack_power")
        ans = ref.ask(q)
        assert ans.decision.route == "raw"
        return ans.groups
    finally:
        ref.close()


# ----------------------------------------------------------------------
# materialization
# ----------------------------------------------------------------------

def test_rollup_requires_metric_query_with_grain(power_session):
    with pytest.raises(QueryError, match="metric query"):
        power_session.rollup(
            "bad",
            power_session.query().across("racks").value("power"),
        )
    with pytest.raises(QueryError, match="time grain"):
        power_session.rollup(
            "bad",
            power_session.query().measure("power", "mean").per("racks"),
        )


def test_rollup_registers_a_catalog_dataset(power_session):
    power_session.rollup("power_1h", metric_q(power_session))
    ds = power_session.dataset("power_1h")
    rows = ds.collect()
    want = manual_groups(power_rows(), 3600.0, "mean")
    assert len(rows) == len(want)
    assert {"rack", "time", "power_mean"} <= set(rows[0])
    # the handle comes back by name, duplicates are rejected
    assert power_session.rollup("power_1h").name == "power_1h"
    with pytest.raises(ScrubJayError, match="already registered"):
        power_session.rollup("power_1h", metric_q(power_session))


def test_drop_rollup_unregisters(power_session):
    power_session.rollup("power_1h", metric_q(power_session))
    power_session.drop_rollup("power_1h")
    with pytest.raises(ScrubJayError, match="no rollup"):
        power_session.rollup("power_1h")
    q = metric_q(power_session)
    assert power_session.ask(q).decision.route == "raw"


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------

def test_exact_grain_routes_and_matches_raw(power_session):
    q = metric_q(power_session)
    want = raw_truth(q)
    power_session.rollup("power_1h", metric_q(power_session))
    ans = power_session.ask(q)
    assert ans.decision.route == "rollup"
    assert ans.decision.rollup == "power_1h"
    assert_groups_equal(ans.groups, want)


def test_coarser_query_reaggregates_from_finer_rollup(power_session):
    q2h = metric_q(power_session, grain="2h")
    want = raw_truth(q2h)
    power_session.rollup("power_15m", metric_q(power_session, grain="15m"))
    ans = power_session.ask(q2h)
    assert ans.decision.route == "rollup"
    assert ans.decision.rollup_grain == 900.0
    assert_groups_equal(ans.groups, want)


def test_coarsest_eligible_rollup_wins(power_session):
    power_session.rollup("power_15m", metric_q(power_session, grain="15m"))
    power_session.rollup("power_30m", metric_q(power_session, grain="30m"))
    ans = power_session.ask(metric_q(power_session, grain="1h"))
    assert ans.decision.route == "rollup"
    assert ans.decision.rollup == "power_30m"
    assert ans.decision.candidates == 2
    assert "coarsest" in ans.decision.reason


def test_nondividing_grain_falls_back_to_raw(power_session):
    power_session.rollup("power_40m", metric_q(power_session, grain="40m"))
    ans = power_session.ask(metric_q(power_session, grain="1h"))
    assert ans.decision.route == "raw"  # 2400s does not divide 3600s


def test_per_subset_reaggregates_whole_fleet(power_session):
    q = (power_session.query()
         .measure("power", "sum").grain("1h").build())
    want = raw_truth(q)
    power_session.rollup(
        "per_rack",
        power_session.query().measure("power", "sum")
        .per("racks").grain("1h"),
    )
    ans = power_session.ask(q)
    assert ans.decision.route == "rollup"
    assert_groups_equal(ans.groups, want)


def test_missing_measure_falls_back_to_raw(power_session):
    power_session.rollup("maxes", metric_q(power_session, how="max"))
    ans = power_session.ask(metric_q(power_session, how="mean"))
    assert ans.decision.route == "raw"
    assert ans.decision.candidates == 0


def test_p95_routes_only_at_exact_grain_and_per(power_session):
    q = metric_q(power_session, how="p95")
    want = raw_truth(q)
    power_session.rollup("p95_1h", metric_q(power_session, how="p95"))
    ans = power_session.ask(q)
    assert ans.decision.route == "rollup"
    assert_groups_equal(ans.groups, want)
    # coarser grain cannot re-aggregate a percentile
    ans2h = power_session.ask(metric_q(power_session, how="p95",
                                       grain="2h"))
    assert ans2h.decision.route == "raw"
    assert "non-decomposable" in ans2h.decision.reason
    # nor can a per-dim subset
    qall = (power_session.query()
            .measure("power", "p95").grain("1h").build())
    assert power_session.ask(qall).decision.route == "raw"


def test_windowed_decomposable_routes_windowed_p95_does_not(
    power_session,
):
    qwin = metric_q(power_session, window="2h")
    want = raw_truth(qwin)
    power_session.rollup("power_1h", metric_q(power_session))
    ans = power_session.ask(qwin)
    assert ans.decision.route == "rollup"
    assert_groups_equal(ans.groups, want)

    power_session.rollup("p95_1h", metric_q(power_session, how="p95"))
    ans = power_session.ask(
        metric_q(power_session, how="p95", window="2h")
    )
    assert ans.decision.route == "raw"


def test_eq_filter_on_per_dim_post_filters_groups(power_session):
    q = (power_session.query()
         .measure("power", "mean").per("racks").grain("1h")
         .where("racks", equals=1)
         .build())
    want = {
        k: v for k, v in raw_truth(metric_q(power_session)).items()
        if k[0] == 1
    }
    power_session.rollup("power_1h", metric_q(power_session))
    ans = power_session.ask(q)
    assert ans.decision.route == "rollup"
    assert_groups_equal(ans.groups, want)


def test_range_filter_falls_back_to_raw(power_session):
    power_session.rollup("power_1h", metric_q(power_session))
    q = (power_session.query()
         .measure("power", "mean").per("racks").grain("1h")
         .where("time", below=Timestamp(3600.0))
         .build())
    ans = power_session.ask(q)
    assert ans.decision.route == "raw"


def test_rollup_with_filter_needs_matching_query_filter(power_session):
    filtered = (power_session.query()
                .measure("power", "mean").per("racks").grain("1h")
                .where("racks", equals=2)
                .build())
    power_session.rollup("rack2", filtered)
    # unfiltered query must NOT read the filtered rollup
    assert power_session.ask(
        metric_q(power_session)
    ).decision.route == "raw"
    # the exact same filtered query may
    assert power_session.ask(filtered).decision.route == "rollup"


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------

def test_decision_lands_on_execution_report(power_session):
    power_session.rollup("power_1h", metric_q(power_session))
    power_session.ctx.report.clear()
    power_session.ask(metric_q(power_session))
    kinds = [d for d in power_session.ctx.report.decisions
             if getattr(d, "kind", None) == "rollup"]
    assert len(kinds) == 1
    d = kinds[0].as_dict()
    assert d["route"] == "rollup"
    assert d["rollup"] == "power_1h"
    assert d["requested_grain"] == 3600.0


def test_explain_shows_the_route(power_session):
    q = metric_q(power_session)
    text = power_session.explain(q)
    assert "rollup route -> raw" in text
    power_session.rollup("power_1h", metric_q(power_session))
    text = power_session.explain(q)
    assert "rollup route -> power_1h" in text
    analyzed = power_session.explain(q, analyze=True)
    assert "EXPLAIN ANALYZE" in analyzed
    assert "rollup route -> power_1h" in analyzed


# ----------------------------------------------------------------------
# freshness: feeds advance, rollups follow incrementally
# ----------------------------------------------------------------------

def test_rollup_refreshes_incrementally_on_feed_advance():
    rows = power_rows()
    half = len(rows) // 2
    sj = ScrubJaySession()
    try:
        feed = (sj.ingest()
                .feed(RACK_POWER_SCHEMA, rows=rows[:half])
                .tail("rack_power"))
        handle = sj.rollup("power_1h", metric_q(sj))
        assert handle.refreshes == 0

        feed.push(rows[half:])
        assert handle.refreshes == 1
        assert handle.delta_refreshes == 1  # O(delta), not replay

        q = metric_q(sj)
        ans = sj.ask(q)
        assert ans.decision.route == "rollup"
        assert_groups_equal(ans.groups, raw_truth(q))
        # the published table caught up too
        assert len(sj.dataset("power_1h").collect()) == len(ans.groups)
    finally:
        sj.close()


def test_stale_rollup_would_differ_fresh_one_does_not():
    # regression guard for the refresh hook: advancing the feed twice
    # keeps routing correct each time
    rows = power_rows()
    third = len(rows) // 3
    sj = ScrubJaySession()
    try:
        feed = (sj.ingest()
                .feed(RACK_POWER_SCHEMA, rows=rows[:third])
                .tail("rack_power"))
        sj.rollup("power_1h", metric_q(sj))
        feed.push(rows[third:2 * third])
        feed.push(rows[2 * third:])
        ans = sj.ask(metric_q(sj))
        assert ans.decision.route == "rollup"
        assert_groups_equal(ans.groups, raw_truth(metric_q(sj)))
    finally:
        sj.close()
