"""ScrubJay's core: semantics, datasets, derivations, and the engine.

This package is the paper's primary contribution:

- :mod:`repro.core.semantics` — field annotations
  (relation type / dimension / units) and dataset schemas;
- :mod:`repro.core.dictionary` — the synonym/homonym-free semantic
  dictionary that validates annotations;
- :mod:`repro.core.dataset` — :class:`ScrubJayDataset`, an annotated
  distributed dataset;
- :mod:`repro.core.derivation` and friends — transformations
  (explode, unit conversion, rate/ratio derivations) and combinations
  (natural join, interpolation join);
- :mod:`repro.core.engine` — the derivation engine (Algorithm 1):
  schema-level backward-chaining search with memoization;
- :mod:`repro.core.query` — the analyst-facing query type;
- :mod:`repro.core.pipeline` — reproducible JSON derivation sequences;
- :mod:`repro.core.cache` — opt-in on-disk memoization of intermediate
  derivation results with LRU eviction.
"""

from repro.core.semantics import DOMAIN, VALUE, SemanticType, Schema
from repro.core.dictionary import SemanticDictionary, default_dictionary
from repro.core.dataset import ScrubJayDataset
from repro.core.query import Query
from repro.core.knowledge import KnowledgeBase
from repro.core.taxonomy import DataSource, SourceCatalog

__all__ = [
    "KnowledgeBase",
    "DataSource",
    "SourceCatalog",
    "DOMAIN",
    "VALUE",
    "SemanticType",
    "Schema",
    "SemanticDictionary",
    "default_dictionary",
    "ScrubJayDataset",
    "Query",
]
