"""Regression: failed-query latencies reach the registry histogram.

The snapshot percentiles are computed from the in-process reservoir,
which ``record_failed`` has always fed; the Prometheus-side
``serve.latency_s`` histogram used to receive only completions, so the
two views of one service disagreed whenever queries failed. Both sinks
must see the same observations.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.metrics import ServiceMetrics


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def metrics(registry):
    return ServiceMetrics(registry=registry)


def test_failed_latency_lands_in_registry_histogram(metrics, registry):
    metrics.record_completed(0.10)
    metrics.record_failed(0.25)
    hist = registry.histogram_summary("serve.latency_s")
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(0.35)
    assert hist["max"] == pytest.approx(0.25)
    assert registry.counter("serve.failed") == 1
    assert registry.counter("serve.completed") == 1


def test_failed_without_latency_counts_but_observes_nothing(
    metrics, registry
):
    # a query shed before execution has no latency to record; the
    # failure still counts, the histogram stays empty
    metrics.record_failed()
    assert metrics.failed == 1
    assert registry.counter("serve.failed") == 1
    assert registry.histogram_summary("serve.latency_s") is None


def test_reservoir_and_registry_see_identical_observations(
    metrics, registry
):
    latencies = [0.05, 0.10, 0.15, 0.20]
    metrics.record_completed(latencies[0])
    metrics.record_failed(latencies[1])
    metrics.record_completed(latencies[2])
    metrics.record_failed(latencies[3])
    hist = registry.histogram_summary("serve.latency_s")
    assert hist["count"] == len(latencies)
    assert hist["sum"] == pytest.approx(sum(latencies))
    # the snapshot percentiles draw from the same four observations
    snap = metrics.snapshot()
    assert snap.latency_s["max"] == pytest.approx(0.20)


def test_no_registry_is_fine():
    m = ServiceMetrics()
    m.record_failed(0.5)
    m.record_completed(0.1)
    assert m.failed == 1 and m.completed == 1
