"""The unified typed configuration layer: knob registry, profiles,
provenance, aliases, typed errors, and the generated documentation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import KNOBS, ScrubJaySession, ServeConfig, TuningProfile
from repro.config import clamp, diff, knob_table, resolve
from repro.errors import ConfigError


# ----------------------------------------------------------------------
# knob registry & resolution
# ----------------------------------------------------------------------


def test_every_knob_is_typed_bounded_and_documented():
    for name, k in KNOBS.items():
        assert k.kind in ("bool", "int", "float", "str", "str_tuple")
        assert k.doc, f"{name} lacks documentation"
        if k.kind in ("int", "float") and not k.nullable:
            assert k.low is not None or k.high is not None or isinstance(
                k.default, bool
            ), f"numeric knob {name} declares no bounds"


def test_aliases_resolve_dotted_underscored_and_leaf_names():
    assert resolve("adaptive.broadcast_threshold_bytes") == \
        "adaptive.broadcast_threshold_bytes"
    assert resolve("adaptive_broadcast_threshold_bytes") == \
        "adaptive.broadcast_threshold_bytes"
    assert resolve("columnar") == "engine.columnar"  # unique leaf
    # historical spellings from the flat-kwarg era
    assert resolve("broadcast_threshold") == \
        "adaptive.broadcast_threshold_bytes"
    assert resolve("num_workers") == "executor.num_workers"
    assert resolve("executor") == "executor.kind"


def test_unknown_knob_raises_typed_error_with_suggestion():
    with pytest.raises(ConfigError) as ei:
        resolve("broadcast_treshold")  # typo
    assert ei.value.knob == "broadcast_treshold"
    assert "broadcast_threshold" in str(ei.value)  # difflib hint
    with pytest.raises(ConfigError):
        TuningProfile(definitely_not_a_knob=1)


def test_out_of_bounds_values_raise_naming_the_knob():
    with pytest.raises(ConfigError) as ei:
        TuningProfile(broadcast_threshold=-1)
    assert ei.value.knob == "adaptive.broadcast_threshold_bytes"
    assert "lower bound" in str(ei.value)
    with pytest.raises(ConfigError, match="expects"):
        TuningProfile(columnar="yes")  # bool knob, string value
    with pytest.raises(ConfigError, match="sequence of strings"):
        TuningProfile(columnar_off_ops="natural_join")  # bare str
    with pytest.raises(ConfigError, match="must be one of"):
        TuningProfile(executor_kind="gpu")


def test_clamp_bounds_numeric_values():
    assert clamp("adaptive.broadcast_threshold_bytes", -5) == 0
    assert clamp("adaptive.broadcast_threshold_bytes", 1 << 40) == 1 << 31


# ----------------------------------------------------------------------
# profile: provenance, pinning, introspection
# ----------------------------------------------------------------------


def test_provenance_tracks_default_user_and_tuned():
    p = TuningProfile(columnar=True)
    assert p.provenance("engine.columnar") == "user-pinned"
    assert p.provenance("serve.result_ttl") == "default"
    p.tune("serve.result_ttl", 5.0)
    assert p.provenance("serve.result_ttl") == "tuned"
    snap = p.snapshot()
    assert snap["knobs"]["engine.columnar"] == {
        "value": True, "provenance": "user-pinned",
    }
    assert snap["version"] == p.version


def test_tuner_cannot_write_pinned_or_untunable_knobs():
    p = TuningProfile(broadcast_threshold=1024)
    with pytest.raises(ConfigError, match="pinned"):
        p.tune("adaptive.broadcast_threshold_bytes", 4096)
    with pytest.raises(ConfigError, match="not tunable"):
        p.tune("executor.kind", "threads")


def test_diff_compares_profiles_and_mappings():
    a = TuningProfile()
    b = TuningProfile(broadcast_threshold=1024, columnar=True)
    d = diff(a, b)
    assert d == {
        "adaptive.broadcast_threshold_bytes": (8 << 20, 1024),
        "engine.columnar": (False, True),
    }
    assert diff(b, b) == {}
    # plain mappings (e.g. a wire-propagated tuned state) work too,
    # with missing knobs read as defaults
    assert diff({}, {"engine.columnar": True}) == {
        "engine.columnar": (False, True),
    }


def test_tuned_state_propagation_respects_local_pins():
    src = TuningProfile()
    src.tune("adaptive.broadcast_threshold_bytes", 4096)
    src.tune("serve.result_ttl", 2.0)
    dst = TuningProfile(broadcast_threshold=1 << 20)  # pinned locally
    changed = dst.apply_tuned(src.tuned_state())
    assert changed == ["serve.result_ttl"]
    assert dst.get("adaptive.broadcast_threshold_bytes") == 1 << 20
    assert dst.get("serve.result_ttl") == 2.0
    assert dst.version >= src.version


# ----------------------------------------------------------------------
# session & engine integration
# ----------------------------------------------------------------------


def test_engine_config_is_frozen_mutation_goes_through_profile():
    sj = ScrubJaySession()
    try:
        with pytest.raises(dataclasses.FrozenInstanceError):
            sj.engine.config.columnar = True
        assert sj.engine.config.columnar is False
        sj.profile.set("engine.columnar", True)
        assert sj.engine.config.columnar is True
        sj.profile.set("adaptive.broadcast_threshold_bytes", 123)
        assert sj.ctx.adaptive.broadcast_threshold_bytes == 123
        assert sj.ctx.planner.config.broadcast_threshold_bytes == 123
    finally:
        sj.close()


def test_session_profile_is_introspectable():
    sj = ScrubJaySession(TuningProfile(num_workers=3))
    try:
        assert sj.profile.get("executor.num_workers") == 3
        assert sj.profile.provenance("executor.num_workers") == \
            "user-pinned"
        assert diff(sj.profile, TuningProfile()) == {
            "executor.num_workers": (3, None),
        }
    finally:
        sj.close()


# ----------------------------------------------------------------------
# serve config
# ----------------------------------------------------------------------


def test_serve_config_validates_at_construction():
    cfg = ServeConfig(num_workers=2, result_ttl=1.5)
    assert cfg.num_workers == 2
    with pytest.raises(ConfigError) as ei:
        ServeConfig(num_workers=0)
    assert ei.value.knob == "serve.num_workers"
    with pytest.raises(ConfigError):
        ServeConfig(result_ttl=-1.0)


def test_serve_config_overrides_reject_unknown_knobs():
    cfg = ServeConfig()
    with pytest.raises(ConfigError) as ei:
        cfg.with_overrides(num_wokers=2)  # typo
    assert "num_workers" in str(ei.value)  # suggestion present


def test_session_serve_rejects_unknown_and_out_of_bounds_knobs():
    sj = ScrubJaySession()
    try:
        with pytest.raises(ConfigError, match="num_workers"):
            sj.serve(num_wokers=2)
        with pytest.raises(ConfigError, match="max_queue"):
            sj.serve(max_queue=-1)
        with pytest.raises(ConfigError, match="shards"):
            sj.serve(shard_on={"t": ["k"]})  # shard arg, no shards=
    finally:
        sj.close()


def test_session_serve_reads_profile_serve_knobs():
    sj = ScrubJaySession(TuningProfile(
        serve_num_workers=2, result_ttl=3.5))
    try:
        svc = sj.serve()
        try:
            assert svc.config.num_workers == 2
            assert svc.config.result_ttl == 3.5
            assert svc.result_cache.ttl == 3.5
            snap_profile = svc.snapshot().profile
            assert snap_profile["knobs"]["serve.result_ttl"][
                "provenance"] == "user-pinned"
        finally:
            svc.close()
    finally:
        sj.close()


# ----------------------------------------------------------------------
# generated documentation
# ----------------------------------------------------------------------


def test_design_doc_knob_table_is_current():
    """DESIGN.md embeds ``repro.config.knob_table()`` output; a knob
    added or changed without regenerating the table fails here."""
    with open("DESIGN.md", encoding="utf-8") as f:
        design = f.read()
    assert knob_table() in design, (
        "DESIGN.md knob table is stale - regenerate with "
        "python -c 'from repro.config import knob_table; "
        "print(knob_table())'"
    )
