"""Facility model: topology, static datasets, cpuinfo round trip."""

import pytest

from repro.datagen.facility import Facility, FacilityConfig


@pytest.fixture()
def fac():
    return Facility(FacilityConfig(num_racks=3, nodes_per_rack=4,
                                   sockets_per_node=2, cores_per_socket=4))


def test_topology_counts(fac):
    assert len(fac.racks()) == 3
    assert len(fac.nodes()) == 12
    assert len(fac.cpus()) == 8


def test_rack_node_mapping_consistent(fac):
    for rack in fac.racks():
        for node in fac.nodes_in_rack(rack):
            assert fac.rack_of(node) == rack
    # every node is in exactly one rack
    all_nodes = [n for r in fac.racks() for n in fac.nodes_in_rack(r)]
    assert sorted(all_nodes) == fac.nodes()


def test_socket_mapping(fac):
    assert fac.socket_of(0) == 0
    assert fac.socket_of(3) == 0
    assert fac.socket_of(4) == 1
    assert fac.socket_of(7) == 1


def test_node_layout_rows(fac):
    rows = fac.node_layout_rows()
    assert len(rows) == 12
    assert rows[0] == {"node": 0, "rack": 0}
    assert all(set(r) == {"node", "rack"} for r in rows)


def test_cpu_spec_rows(fac):
    rows = fac.cpu_spec_rows()
    assert len(rows) == 12 * 8
    r = rows[0]
    assert set(r) == {"nodeid", "cpuid", "socket", "base_frequency"}
    assert 2.9 <= r["base_frequency"] <= 3.3


def test_base_frequency_deterministic():
    cfg = FacilityConfig(num_racks=2, nodes_per_rack=2, seed=5)
    a = Facility(cfg)
    b = Facility(cfg)
    assert [a.base_frequency(n) for n in a.nodes()] == \
        [b.base_frequency(n) for n in b.nodes()]


def test_cpuinfo_round_trip(fac):
    text = fac.render_cpuinfo(node=3)
    assert "processor" in text and "cpu MHz" in text
    rows = Facility.parse_cpuinfo(3, text)
    want = [r for r in fac.cpu_spec_rows() if r["nodeid"] == 3]
    assert len(rows) == len(want)
    for got, exp in zip(rows, want):
        assert got["cpuid"] == exp["cpuid"]
        assert got["socket"] == exp["socket"]
        assert got["base_frequency"] == pytest.approx(
            exp["base_frequency"], abs=1e-3
        )


def test_parse_cpuinfo_ignores_malformed_blocks():
    rows = Facility.parse_cpuinfo(0, "garbage\n\nno colon here\n")
    assert rows == []
