"""Property: portable_hash is stable across real OS processes.

The whole point of :func:`repro.rdd.shuffle.portable_hash` is that a
map-side task in one worker process and the driver (or another worker)
agree on every key's bucket. These tests compute hashes inside an
actual :class:`ProcessExecutor` worker and compare against the driver,
and run a full groupByKey round-trip through the multi-process
engine — with Python's per-interpreter hash salt, the builtin ``hash``
fallback would fail both for ``str`` keys.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.rdd import SJContext
from repro.rdd.executors import ProcessExecutor
from repro.rdd.fault import no_retry_policy
from repro.rdd.partition import Partition
from repro.rdd.shuffle import hash_bucket, portable_hash

keys = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: (
        st.tuples(children, children)
        | st.frozensets(st.integers(-100, 100) | st.text(max_size=4),
                        max_size=3)
    ),
    max_leaves=5,
)


@pytest.fixture(scope="module")
def process_executor():
    ex = ProcessExecutor(2, no_retry_policy())
    yield ex
    ex.shutdown()


def _hash_partition(index, items):
    return [portable_hash(k, strict=True) for k in items]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(keys, min_size=1, max_size=6))
@example([-0.0, 0.0])
@example([-1, -(2**40), (1, (2, "x"))])
@example([frozenset({"a", "b"}), ("nested", (True, None))])
def test_worker_hashes_match_driver(process_executor, key_list):
    driver_side = [portable_hash(k, strict=True) for k in key_list]
    [result] = process_executor.run_partition_tasks(
        _hash_partition, [Partition(0, key_list)]
    )
    assert result.data == driver_side


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(keys, st.integers(0, 100)),
                min_size=1, max_size=20))
@example([(-0.0, 1), (0.0, 2)])  # equal keys must merge into one group
@example([(("job", -3), 1), (("job", -3), 2), (("job", 4), 3)])
def test_group_by_key_round_trip_matches_local_grouping(key_value_pairs):
    expected = defaultdict(list)
    for k, v in key_value_pairs:
        expected[k].append(v)
    with SJContext(executor="processes", num_workers=2) as ctx:
        grouped = (
            ctx.parallelize(key_value_pairs, 3).groupByKey(2).collect()
        )
    got = {k: sorted(v) for k, v in grouped}
    assert got == {k: sorted(v) for k, v in expected.items()}
    assert len(got) == len(expected)


def test_equal_keys_land_in_same_worker_bucket(process_executor):
    # two representations of the same dict key — int 5 and float 5.0 —
    # must be co-located by the bucket function in every process
    for n in (1, 2, 3, 8):
        [result] = process_executor.run_partition_tasks(
            lambda i, items: [hash_bucket(k, n, strict=True) for k in items],
            [Partition(0, [5, 5.0, -7, -7.0])],
        )
        assert result.data[0] == result.data[1]
        assert result.data[2] == result.data[3]
        assert all(0 <= b < n for b in result.data)
