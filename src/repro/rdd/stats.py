"""Statistics substrate and adaptive planner for the RDD engine.

The paper's Figure 3 shows ScrubJay's combinations are shuffle-bound:
joins pay for the exchange, not the map work. This module provides the
pieces that let the scheduler avoid or tune those exchanges at run
time, the way Spark's adaptive query execution does:

- :class:`PartitionStats` / :class:`RDDStats` — lightweight sampled
  statistics (row counts, approximate serialized size, sampled
  distinct-key estimates, heavy-hitter keys) collected driver-side
  from materialized partitions and cached on the RDD;
- :class:`AdaptiveConfig` — the tuning knobs (broadcast threshold,
  target partition size, skew factors, sampling budgets);
- :class:`AdaptivePlanner` — the decision procedures: broadcast-hash
  vs shuffle join selection, reduce-partition-count selection, and
  skewed-bucket detection;
- :class:`ExecutionReport` — the audit trail. Every decision the
  planner takes is recorded as a :class:`JoinDecision` or
  :class:`ShuffleDecision` so tests and benchmarks can assert the
  optimizer actually fired (and why), rather than trusting it.

Statistics are *estimates*: sizes come from a per-partition row
sample, distinct-key counts from a sampled key census. They only steer
physical strategy choices — every strategy produces identical results
(asserted by the equivalence property tests), so a bad estimate can
cost time but never correctness.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Any, Dict, List, Optional, Sequence

from repro.columnar.batch import ColumnBatch, count_rows

__all__ = [
    "AdaptiveConfig",
    "AdaptivePlanner",
    "ExecutionReport",
    "JoinDecision",
    "KernelDecision",
    "PartitionStats",
    "RDDStats",
    "ShuffleDecision",
    "collect_stats",
]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs for statistics-driven execution.

    The defaults mirror Spark's: broadcast joins below ~8 MiB, reduce
    partitions sized for thousands of rows each, skew declared when a
    bucket is several times the mean. Set ``enabled=False`` to force
    the classic always-shuffle plans (decisions are still recorded,
    marked ``adaptive-disabled``).
    """

    #: master switch: False forces shuffle plans and fixed partitioning
    enabled: bool = True
    #: broadcast a join side whose estimated size is at most this
    broadcast_threshold_bytes: int = 8 * 1024 * 1024
    #: ... and whose row count is at most this (guards bad size samples)
    broadcast_threshold_rows: int = 250_000
    #: auto-chosen reduce partitions aim for this many rows each
    target_partition_rows: int = 8192
    #: bounds for the auto-chosen reduce partition count
    min_reduce_partitions: int = 1
    max_reduce_partitions: int = 256
    #: a shuffle bucket is skewed when it exceeds ``skew_factor`` times
    #: the mean bucket size and holds at least ``skew_min_pairs`` pairs
    skew_factor: float = 4.0
    skew_min_pairs: int = 1024
    #: cap on how many sub-buckets one skewed bucket splits into
    skew_max_splits: int = 16
    #: rows sampled per partition for the size estimate
    stats_sample_rows: int = 64
    #: total keys sampled across partitions for the distinct estimate
    stats_key_budget: int = 2048

    def with_broadcast_threshold(self, num_bytes: int) -> "AdaptiveConfig":
        """A copy with a different broadcast threshold (README knob)."""
        return replace(self, broadcast_threshold_bytes=num_bytes)


DEFAULT_ADAPTIVE_CONFIG = AdaptiveConfig()


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionStats:
    """Sampled statistics for one partition."""

    index: int
    rows: int
    sampled_rows: int
    approx_bytes: int


@dataclass
class RDDStats:
    """Aggregated sampled statistics for one materialized RDD.

    ``distinct_keys`` and ``hot_keys`` are only present when the stats
    were collected with ``keyed=True`` over ``(key, value)`` elements;
    ``distinct_keys`` is an estimate scaled up from the key sample and
    capped at ``total_rows``.
    """

    partitions: List[PartitionStats]
    total_rows: int
    approx_bytes: int
    distinct_keys: Optional[int] = None
    #: sampled frequency (0..1) of keys dominating the key sample
    hot_keys: Dict[Any, float] = field(default_factory=dict)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "partitions": self.num_partitions,
            "total_rows": self.total_rows,
            "approx_bytes": self.approx_bytes,
            "distinct_keys": self.distinct_keys,
            "hot_keys": {repr(k): v for k, v in self.hot_keys.items()},
        }


def _approx_size(obj: Any, depth: int = 0) -> int:
    """Approximate in-memory footprint of ``obj`` in bytes.

    Recursive ``sys.getsizeof`` walk over the container types ScrubJay
    rows are made of; large containers are sampled and extrapolated.
    Cheap and rough on purpose — it feeds threshold comparisons, not
    accounting.
    """
    if isinstance(obj, ColumnBatch):
        return obj.approx_bytes()
    size = sys.getsizeof(obj, 64)
    if depth >= 5:
        return size
    if isinstance(obj, dict):
        n = len(obj)
        if n:
            sampled = 0
            taken = 0
            for k, v in islice(obj.items(), 32):
                sampled += _approx_size(k, depth + 1)
                sampled += _approx_size(v, depth + 1)
                taken += 1
            size += sampled * n // taken
    elif isinstance(obj, (list, tuple, set, frozenset)):
        n = len(obj)
        if n:
            sampled = sum(
                _approx_size(x, depth + 1) for x in islice(iter(obj), 32)
            )
            size += sampled * n // min(n, 32)
    return size


def _sample_stride(length: int, budget: int) -> int:
    """Stride that yields at most ``budget`` evenly spread samples."""
    if budget <= 0:
        return max(1, length)
    return max(1, -(-length // budget))


def collect_stats(
    partitions: Sequence[Any],
    config: Optional[AdaptiveConfig] = None,
    keyed: bool = False,
) -> RDDStats:
    """Collect sampled statistics from materialized partitions.

    Runs driver-side over the partitions the scheduler already holds,
    so it adds no stages and no executor round-trips. With
    ``keyed=True``, elements are treated as ``(key, value)`` pairs and
    a key census is sampled for distinct/heavy-hitter estimates; the
    census degrades gracefully (``distinct_keys=None``) when elements
    are not pairs or keys are unhashable.
    """
    cfg = config or DEFAULT_ADAPTIVE_CONFIG
    per_part: List[PartitionStats] = []
    total_rows = 0
    total_bytes = 0
    key_counts: Optional[Dict[Any, int]] = {} if keyed else None
    keys_sampled = 0
    key_budget = max(
        16, cfg.stats_key_budget // max(1, len(partitions))
    )

    for p in partitions:
        if p.data and isinstance(p.data[0], ColumnBatch):
            # Columnar partitions: logical rows and exact byte counts
            # come straight off the batches — no sampling, no census
            # (batches are not (key, value) pairs).
            rows = count_rows(p.data)
            total_rows += rows
            approx = sum(b.approx_bytes() for b in p.data)
            total_bytes += approx
            per_part.append(PartitionStats(p.index, rows, rows, approx))
            continue
        rows = len(p.data)
        total_rows += rows
        if rows == 0:
            per_part.append(PartitionStats(p.index, 0, 0, 0))
            continue
        stride = _sample_stride(rows, cfg.stats_sample_rows)
        sample = p.data[::stride]
        sampled_bytes = sum(_approx_size(x) for x in sample)
        approx = sampled_bytes * rows // len(sample)
        total_bytes += approx
        per_part.append(
            PartitionStats(p.index, rows, len(sample), approx)
        )
        if key_counts is not None:
            kstride = _sample_stride(rows, key_budget)
            try:
                for item in p.data[::kstride]:
                    k, _v = item
                    key_counts[k] = key_counts.get(k, 0) + 1
                    keys_sampled += 1
            except (TypeError, ValueError):
                key_counts = None  # not (key, value) pairs / unhashable

    distinct: Optional[int] = None
    hot: Dict[Any, float] = {}
    if key_counts is not None and keys_sampled:
        distinct_sampled = len(key_counts)
        if keys_sampled >= total_rows:
            distinct = distinct_sampled
        else:
            distinct = min(
                total_rows,
                max(
                    distinct_sampled,
                    distinct_sampled * total_rows // keys_sampled,
                ),
            )
        hot = {
            k: c / keys_sampled
            for k, c in key_counts.items()
            if c / keys_sampled >= 0.2 and c > 1
        }
    return RDDStats(
        partitions=per_part,
        total_rows=total_rows,
        approx_bytes=total_bytes,
        distinct_keys=distinct,
        hot_keys=hot,
    )


# ----------------------------------------------------------------------
# decisions & report
# ----------------------------------------------------------------------


@dataclass
class JoinDecision:
    """One join-strategy choice, with the evidence that drove it."""

    op: str  # "join" | "natural_join" | "interpolation_join" | ...
    strategy: str  # "broadcast" | "shuffle"
    build_side: Optional[str]  # "left" | "right" | None for shuffle
    left_rows: int
    right_rows: int
    left_bytes: int
    right_bytes: int
    threshold_bytes: int
    reason: str
    adaptive: bool = True  # False when forced by an explicit hint
    #: wall-clock seconds the chosen strategy actually took, filled in
    #: by the scheduler after execution — the tuner's regret input
    measured_s: Optional[float] = None

    kind = "join"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "op": self.op,
            "strategy": self.strategy,
            "build_side": self.build_side,
            "left_rows": self.left_rows,
            "right_rows": self.right_rows,
            "left_bytes": self.left_bytes,
            "right_bytes": self.right_bytes,
            "threshold_bytes": self.threshold_bytes,
            "reason": self.reason,
            "adaptive": self.adaptive,
            "measured_s": self.measured_s,
        }


@dataclass
class ShuffleDecision:
    """One shuffle's tuning outcome: partition count and skew handling."""

    origin: str  # "shuffle" | "range" — which scheduler path
    requested_partitions: Optional[int]  # None = caller left it to stats
    chosen_partitions: int
    output_partitions: int  # after skew splitting
    input_rows: int
    shuffled_pairs: int  # post-combine shuffle volume
    skewed_buckets: List[int]
    reason: str
    #: wall-clock seconds for the whole shuffle (map + exchange +
    #: reduce), filled in by the scheduler — the tuner's regret input
    measured_s: Optional[float] = None

    kind = "shuffle"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "origin": self.origin,
            "requested_partitions": self.requested_partitions,
            "chosen_partitions": self.chosen_partitions,
            "output_partitions": self.output_partitions,
            "input_rows": self.input_rows,
            "shuffled_pairs": self.shuffled_pairs,
            "skewed_buckets": list(self.skewed_buckets),
            "reason": self.reason,
            "measured_s": self.measured_s,
        }


@dataclass
class KernelDecision:
    """One operator's batch-vs-row execution choice.

    Recorded by the columnar execution path so EXPLAIN ANALYZE and the
    equivalence tests can assert which kernel actually ran: ``choice``
    is ``"batch"`` when the vectorized kernel handled the operator and
    ``"row-fallback"`` when it exploded to the row path (with the
    reason — unsupported operator, stray row elements, oversized build
    side, ...).
    """

    op: str  # "filter_equals" | "natural_join" | "groupby" | ...
    choice: str  # "batch" | "row-fallback"
    reason: str

    kind = "kernel"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "op": self.op,
            "choice": self.choice,
            "reason": self.reason,
        }


@dataclass
class DeltaDecision:
    """One standing-query refresh's delta-vs-replay choice.

    Recorded by the streaming layer (:mod:`repro.stream`) each time a
    feed advance refreshes a subscription: ``choice`` is ``"delta"``
    when only the newly appended rows were pushed through the plan
    (union-distributive path) and ``"replay"`` when a
    non-incrementalizable operator forced a scoped recompute at the
    new watermark — with the operator and reason, so tests and
    benchmarks can assert the incremental path actually ran.
    """

    op: str  # offending/root op, e.g. "natural_join"
    choice: str  # "delta" | "replay"
    reason: str

    kind = "delta"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "op": self.op,
            "choice": self.choice,
            "reason": self.reason,
        }


@dataclass
class RollupDecision:
    """One metric query's routing outcome: rollup or raw.

    Recorded by the metrics layer (:mod:`repro.metrics`) every time a
    measure query is answered: ``route`` is ``"rollup"`` when a
    materialized rollup table served the query (with its name and
    grain) and ``"raw"`` when it fell back to base-relation
    computation — with the reason (no registered rollup covers the
    measures, a non-decomposable aggregate needed an exact grain,
    ...), so EXPLAIN ANALYZE and the acceptance tests can assert which
    path actually answered.
    """

    route: str  # "rollup" | "raw"
    rollup: Optional[str]  # winning rollup name, None on raw
    requested_grain: Optional[float]  # query bucket seconds
    rollup_grain: Optional[float]  # winning rollup's bucket seconds
    candidates: int  # how many registered rollups could answer
    reason: str

    kind = "rollup"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "route": self.route,
            "rollup": self.rollup,
            "requested_grain": self.requested_grain,
            "rollup_grain": self.rollup_grain,
            "candidates": self.candidates,
            "reason": self.reason,
        }

    def __str__(self) -> str:
        target = self.rollup if self.route == "rollup" else "raw"
        return (
            f"rollup route -> {target} "
            f"({self.candidates} candidate(s); {self.reason})"
        )


class ExecutionReport:
    """Audit trail of every adaptive decision taken on a context.

    Appended to by the scheduler and the combination layer; read by
    tests and benchmarks to prove the optimizer fired (acceptance
    criterion: the broadcast strategy must be *selected*, not
    hardcoded). Accumulates until :meth:`clear`.

    When constructed with a :class:`~repro.obs.MetricsRegistry`
    (every :class:`~repro.rdd.context.SJContext` does this), each
    decision is also mirrored into the registry as labelled counters
    (``rdd.join.decisions{strategy=...}``,
    ``rdd.shuffle.decisions{origin=...}``,
    ``rdd.shuffle.pairs``), so the Prometheus dump carries the same
    evidence as the audit trail.
    """

    def __init__(self, metrics=None) -> None:
        self.decisions: List[Any] = []
        self.metrics = metrics
        #: latest derivation-cache counter snapshot (hits, misses,
        #: evictions, ...) — set by ScrubJaySession.execute after each
        #: cached plan run, so cache effectiveness lands in the same
        #: audit trail as the join/shuffle decisions instead of only
        #: in log lines.
        self.cache_stats: Dict[str, Any] = {}
        #: accumulated span timings (seconds) keyed by span name, e.g.
        #: ``join.broadcast`` / ``join.shuffle`` / ``shuffle`` — the
        #: tuner's evidence for cost-model calibration
        self.timings: Dict[str, float] = {}

    def add_timing(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds
        if self.metrics is not None:
            self.metrics.observe(f"rdd.timing.{name}", seconds)

    def add(self, decision: Any) -> None:
        self.decisions.append(decision)
        if self.metrics is not None:
            if decision.kind == "join":
                self.metrics.inc(
                    "rdd.join.decisions",
                    labels={"strategy": decision.strategy},
                )
            elif decision.kind == "shuffle":
                self.metrics.inc(
                    "rdd.shuffle.decisions",
                    labels={"origin": decision.origin},
                )
                self.metrics.inc(
                    "rdd.shuffle.pairs", decision.shuffled_pairs
                )
                if decision.skewed_buckets:
                    self.metrics.inc(
                        "rdd.shuffle.skewed_buckets",
                        len(decision.skewed_buckets),
                    )
            elif decision.kind == "kernel":
                self.metrics.inc(
                    "core.kernel.decisions",
                    labels={"choice": decision.choice},
                )
            elif decision.kind == "delta":
                self.metrics.inc(
                    "stream.delta.decisions",
                    labels={"choice": decision.choice},
                )
            elif decision.kind == "rollup":
                self.metrics.inc(
                    "metrics.rollup.decisions",
                    labels={"route": decision.route},
                )
            elif decision.kind == "tuning":
                self.metrics.inc(
                    "tuning.decisions",
                    labels={"knob": decision.knob},
                )

    def set_cache_stats(self, stats: Dict[str, Any]) -> None:
        self.cache_stats = dict(stats)
        if self.metrics is not None:
            # cumulative snapshot → gauges (re-publication must not
            # double count)
            self.metrics.set_gauges_from(stats, prefix="core.cache.")

    def clear(self) -> None:
        self.decisions.clear()
        self.cache_stats = {}
        self.timings = {}

    def joins(self) -> List[JoinDecision]:
        return [d for d in self.decisions if d.kind == "join"]

    def shuffles(self) -> List[ShuffleDecision]:
        return [d for d in self.decisions if d.kind == "shuffle"]

    def kernels(self) -> List[KernelDecision]:
        return [d for d in self.decisions if d.kind == "kernel"]

    def deltas(self) -> List[DeltaDecision]:
        return [d for d in self.decisions if d.kind == "delta"]

    def rollups(self) -> List[RollupDecision]:
        return [d for d in self.decisions if d.kind == "rollup"]

    def tunings(self) -> List[Any]:
        """Knob adjustments (:class:`~repro.tuning.TuningDecision`)
        applied by the online tuner, in order."""
        return [d for d in self.decisions if d.kind == "tuning"]

    def broadcast_joins(self) -> List[JoinDecision]:
        return [d for d in self.joins() if d.strategy == "broadcast"]

    def shuffle_volume(self) -> int:
        """Total post-combine pairs moved through shuffles so far."""
        return sum(d.shuffled_pairs for d in self.shuffles())

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "decisions": [d.as_dict() for d in self.decisions]
        }
        if self.cache_stats:
            out["cache_stats"] = dict(self.cache_stats)
        return out

    def summary(self) -> str:
        lines = [f"ExecutionReport: {len(self.decisions)} decisions"]
        if self.cache_stats:
            cs = self.cache_stats
            lines.append(
                f"  derivation cache: {cs.get('hits', 0)} hits /"
                f" {cs.get('misses', 0)} misses,"
                f" {cs.get('evictions', 0)} evictions"
            )
        for d in self.decisions:
            if d.kind == "join":
                lines.append(
                    f"  join[{d.op}] -> {d.strategy}"
                    f"{' build=' + d.build_side if d.build_side else ''}"
                    f" (L {d.left_rows} rows/{d.left_bytes} B,"
                    f" R {d.right_rows} rows/{d.right_bytes} B,"
                    f" threshold {d.threshold_bytes} B): {d.reason}"
                )
            elif d.kind == "shuffle":
                skew = (
                    f", skewed buckets {d.skewed_buckets}"
                    if d.skewed_buckets
                    else ""
                )
                lines.append(
                    f"  shuffle[{d.origin}] {d.input_rows} rows ->"
                    f" {d.shuffled_pairs} pairs over"
                    f" {d.output_partitions} partitions"
                    f" (requested {d.requested_partitions},"
                    f" chosen {d.chosen_partitions}{skew}): {d.reason}"
                )
            elif d.kind == "kernel":
                lines.append(
                    f"  kernel[{d.op}] -> {d.choice}: {d.reason}"
                )
            elif d.kind == "delta":
                lines.append(
                    f"  delta[{d.op}] -> {d.choice}: {d.reason}"
                )
            elif d.kind in ("rollup", "tuning"):
                lines.append(f"  {d}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.decisions)

    def __repr__(self) -> str:
        return f"ExecutionReport({len(self.decisions)} decisions)"


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------


class AdaptivePlanner:
    """Turns statistics into physical execution choices.

    Owned by the :class:`~repro.rdd.context.SJContext`; consulted by
    the scheduler at materialization time (after input stages ran, so
    decisions see *actual* sizes, like Spark AQE) and by the
    combination layer. Records everything it decides into ``report``.
    """

    def __init__(
        self,
        config: Optional[AdaptiveConfig] = None,
        report: Optional[ExecutionReport] = None,
    ) -> None:
        self.config = config or DEFAULT_ADAPTIVE_CONFIG
        # `is not None`, not truthiness: an empty report is falsy
        self.report = report if report is not None else ExecutionReport()

    # -- joins ---------------------------------------------------------

    def decide_join(
        self,
        left: RDDStats,
        right: RDDStats,
        hint: str = "auto",
        op: str = "join",
    ) -> JoinDecision:
        """Choose broadcast-hash vs shuffle for an equi-join.

        ``hint`` may force a strategy (``"broadcast-left"``,
        ``"broadcast-right"``, ``"shuffle"``); ``"auto"`` consults the
        statistics: the smaller side is broadcast when it fits under
        both broadcast thresholds, otherwise the join shuffles.
        """
        cfg = self.config

        def decision(strategy, build_side, reason, adaptive=True):
            d = JoinDecision(
                op=op,
                strategy=strategy,
                build_side=build_side,
                left_rows=left.total_rows,
                right_rows=right.total_rows,
                left_bytes=left.approx_bytes,
                right_bytes=right.approx_bytes,
                threshold_bytes=cfg.broadcast_threshold_bytes,
                reason=reason,
                adaptive=adaptive,
            )
            self.report.add(d)
            return d

        if hint == "broadcast-left":
            return decision("broadcast", "left", "forced by hint", False)
        if hint == "broadcast-right":
            return decision("broadcast", "right", "forced by hint", False)
        if hint == "shuffle":
            return decision("shuffle", None, "forced by hint", False)
        if not cfg.enabled:
            return decision("shuffle", None, "adaptive-disabled", False)

        side, stats = min(
            (("left", left), ("right", right)),
            key=lambda s: (s[1].approx_bytes, s[1].total_rows),
        )
        if (
            stats.approx_bytes <= cfg.broadcast_threshold_bytes
            and stats.total_rows <= cfg.broadcast_threshold_rows
        ):
            return decision(
                "broadcast",
                side,
                f"{side} side ~{stats.approx_bytes} B"
                f" <= threshold {cfg.broadcast_threshold_bytes} B",
            )
        return decision(
            "shuffle",
            None,
            f"smallest side ~{stats.approx_bytes} B / {stats.total_rows}"
            f" rows exceeds broadcast thresholds"
            f" ({cfg.broadcast_threshold_bytes} B /"
            f" {cfg.broadcast_threshold_rows} rows)",
        )

    def decide_bin_broadcast(
        self, bin_side: RDDStats, op: str = "interpolation_join"
    ) -> JoinDecision:
        """Broadcast the bin side of a windowed join when it is small.

        The interpolation join bins both datasets and cogroups per
        bin; when the sensor-style (right) dataset fits under the
        broadcast threshold, its binned index ships whole to every
        task instead, skipping the bin shuffle entirely.
        """
        cfg = self.config
        empty = RDDStats(partitions=[], total_rows=0, approx_bytes=0)
        if not cfg.enabled:
            d = JoinDecision(
                op=op, strategy="shuffle", build_side=None,
                left_rows=0, right_rows=bin_side.total_rows,
                left_bytes=empty.approx_bytes,
                right_bytes=bin_side.approx_bytes,
                threshold_bytes=cfg.broadcast_threshold_bytes,
                reason="adaptive-disabled", adaptive=False,
            )
            self.report.add(d)
            return d
        if (
            bin_side.approx_bytes <= cfg.broadcast_threshold_bytes
            and bin_side.total_rows <= cfg.broadcast_threshold_rows
        ):
            d = JoinDecision(
                op=op, strategy="broadcast", build_side="right",
                left_rows=0, right_rows=bin_side.total_rows,
                left_bytes=0, right_bytes=bin_side.approx_bytes,
                threshold_bytes=cfg.broadcast_threshold_bytes,
                reason=f"bin side ~{bin_side.approx_bytes} B"
                       f" <= threshold {cfg.broadcast_threshold_bytes} B",
            )
        else:
            d = JoinDecision(
                op=op, strategy="shuffle", build_side=None,
                left_rows=0, right_rows=bin_side.total_rows,
                left_bytes=0, right_bytes=bin_side.approx_bytes,
                threshold_bytes=cfg.broadcast_threshold_bytes,
                reason=f"bin side ~{bin_side.approx_bytes} B exceeds"
                       f" threshold {cfg.broadcast_threshold_bytes} B",
            )
        self.report.add(d)
        return d

    # -- shuffles ------------------------------------------------------

    def choose_reduce_partitions(
        self, input_rows: int, distinct_keys: Optional[int] = None
    ) -> int:
        """Reduce-partition count sized from input statistics.

        Targets ``target_partition_rows`` rows per reduce partition,
        clamped to the configured bounds and (when known) the distinct
        key count — more partitions than keys is pure overhead.
        """
        cfg = self.config
        n = -(-max(0, input_rows) // cfg.target_partition_rows) or 1
        if distinct_keys is not None:
            n = min(n, max(1, distinct_keys))
        return max(
            cfg.min_reduce_partitions, min(cfg.max_reduce_partitions, n)
        )

    def detect_skew(self, bucket_sizes: Sequence[int]) -> List[int]:
        """Indices of buckets holding disproportionate shuffle volume."""
        cfg = self.config
        total = sum(bucket_sizes)
        if not total or len(bucket_sizes) < 2:
            return []
        mean = total / len(bucket_sizes)
        return [
            b
            for b, size in enumerate(bucket_sizes)
            if size >= cfg.skew_min_pairs and size > cfg.skew_factor * mean
        ]

    def skew_splits(self, bucket_size: int, mean: float) -> int:
        """How many sub-buckets to split one skewed bucket into."""
        cfg = self.config
        m = -(-bucket_size // max(1, int(mean)))
        return max(2, min(cfg.skew_max_splits, m))
