"""Aggregation, correlation, and outlier helpers."""

import math

import pytest

from repro.analysis import (
    correlate,
    correlation_matrix,
    group_aggregate,
    rank_groups,
    time_series,
    zscore_outliers,
)
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import SemanticError
from repro.units.temporal import Timestamp

SCHEMA = Schema({
    "rack": domain("racks", "identifier"),
    "app": value("applications", "label"),
    "time": domain("time", "datetime"),
    "heat": value("heat", "delta degrees Celsius"),
    "power": value("power", "watts"),
})


def _rows():
    out = []
    for t in range(5):
        out.append({"rack": 1, "app": "AMG", "time": Timestamp(float(t)),
                    "heat": 10.0 + t, "power": 100.0 + 10 * t})
        out.append({"rack": 2, "app": "mg.C", "time": Timestamp(float(t)),
                    "heat": 3.0, "power": 50.0})
    return out


@pytest.fixture()
def ds(ctx):
    return ScrubJayDataset.from_rows(ctx, _rows(), SCHEMA, "t")


# ----------------------------------------------------------------------
# group_aggregate
# ----------------------------------------------------------------------

def test_group_mean(ds):
    agg = group_aggregate(ds, ["rack"], "heat", "mean")
    assert agg[(1,)] == pytest.approx(12.0)
    assert agg[(2,)] == pytest.approx(3.0)


@pytest.mark.parametrize("how,want", [
    ("sum", 60.0), ("min", 10.0), ("max", 14.0), ("count", 5),
])
def test_group_aggregators(ds, how, want):
    assert group_aggregate(ds, ["rack"], "heat", how)[(1,)] == want


def test_group_by_multiple_fields(ds):
    agg = group_aggregate(ds, ["app", "rack"], "heat", "max")
    assert agg[("AMG", 1)] == 14.0


def test_group_aggregate_skips_sparse(ctx):
    rows = [{"rack": 1, "heat": 1.0}, {"rack": 1}]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    assert group_aggregate(ds, ["rack"], "heat", "count")[(1,)] == 1


def test_group_aggregate_unknown_field(ds):
    with pytest.raises(SemanticError):
        group_aggregate(ds, ["rack"], "missing")
    with pytest.raises(ValueError):
        group_aggregate(ds, ["rack"], "heat", "median")


# ----------------------------------------------------------------------
# time_series
# ----------------------------------------------------------------------

def test_time_series_sorted_per_group(ds):
    series = time_series(ds, ["rack"], "time", "heat")
    assert series[(1,)] == [(float(t), 10.0 + t) for t in range(5)]
    assert series[(2,)] == [(float(t), 3.0) for t in range(5)]


# ----------------------------------------------------------------------
# correlate
# ----------------------------------------------------------------------

def test_pearson_perfect_linear(ds):
    assert correlate(ds.where(lambda r: r["rack"] == 1),
                     "heat", "power") == pytest.approx(1.0)


def test_pearson_anticorrelated(ctx):
    rows = [{"rack": 1, "heat": float(i), "power": float(-i)}
            for i in range(10)]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    assert correlate(ds, "heat", "power") == pytest.approx(-1.0)


def test_pearson_constant_field_rejected(ds):
    with pytest.raises(ValueError, match="constant"):
        correlate(ds.where(lambda r: r["rack"] == 2), "heat", "power")


def test_spearman_monotone_nonlinear(ctx):
    rows = [{"rack": 1, "heat": float(i), "power": float(i ** 3)}
            for i in range(10)]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    assert correlate(ds, "heat", "power", "spearman") == pytest.approx(1.0)


def test_spearman_handles_ties(ctx):
    rows = [{"rack": 1, "heat": float(i // 2), "power": float(i)}
            for i in range(10)]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    r = correlate(ds, "heat", "power", "spearman")
    assert 0.9 < r <= 1.0


def test_correlate_too_few_rows(ctx):
    ds = ScrubJayDataset.from_rows(
        ctx, [{"heat": 1.0, "power": 2.0}], SCHEMA, "t"
    )
    with pytest.raises(ValueError):
        correlate(ds, "heat", "power")


def test_correlate_unknown_method(ds):
    with pytest.raises(ValueError):
        correlate(ds, "heat", "power", "kendall")


def test_correlation_matrix(ds):
    m = correlation_matrix(ds.where(lambda r: r["rack"] == 1),
                           ["heat", "power"])
    assert set(m) == {("heat", "power")}
    assert m[("heat", "power")] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# outliers
# ----------------------------------------------------------------------

def test_rank_groups_descending(ds):
    ranked = rank_groups(ds, ["app", "rack"], "heat", "max")
    assert ranked[0][0] == ("AMG", 1)
    assert ranked[0][1] == 14.0


def test_zscore_outliers_flags_extreme(ctx):
    rows = []
    for rack in range(10):
        heat = 100.0 if rack == 7 else 5.0
        rows.append({"rack": rack, "heat": heat})
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    out = zscore_outliers(ds, ["rack"], "heat", "max", threshold=2.0)
    assert out
    assert out[0][0] == (7,)
    assert out[0][2] > 2.0


def test_zscore_outliers_none_when_uniform(ctx):
    rows = [{"rack": r, "heat": 5.0} for r in range(5)]
    ds = ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    assert zscore_outliers(ds, ["rack"], "heat") == []
