"""Sharded serve tier: scatter-gather equivalence, prune-aware
routing, replication failover, churn consistency, and observability.

Every test here holds the same invariant from a different angle: a
query answered by ``session.serve(shards=N)`` must be indistinguishable
(same row multiset, same aggregates) from the single-process
:class:`QueryService` answer — under every shard executor, while the
catalog churns, and while processes die.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro import ScrubJaySession
from repro.core.query import FilterTerm
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.serve import (
    QueryService,
    ShardError,
    ShardRouter,
    ShardRoutingError,
    ShardStaleReadError,
)

from tests.serve.conftest import (
    HOT_DOMAINS,
    HOT_VALUES,
    JOIN_DOMAINS,
    JOIN_VALUES,
    make_session,
    row_multiset,
)

ROWS, KEYS = 160, 8


def _eq(key):
    return (FilterTerm("compute nodes", "eq", value=key),)


@pytest.fixture()
def reference():
    """Single-process ground truth over the same catalog."""
    sj = make_session(rows=ROWS, keys=KEYS)
    svc = QueryService(sj, num_workers=1)
    yield svc
    svc.close()
    sj.close()


def make_router(**kwargs):
    sj = make_session(rows=ROWS, keys=KEYS)
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("shard_on", {"samples": ["node"]})
    kwargs.setdefault("num_workers", 1)
    router = ShardRouter(sj, **kwargs)
    return sj, router


@pytest.fixture()
def fleet():
    sj, router = make_router()
    yield router
    router.close()
    sj.close()


# ----------------------------------------------------------------------
# scatter-gather equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shard_executor", ["serial", "threads", "processes"])
def test_sharded_answers_match_single_process(reference, shard_executor):
    sj, router = make_router(
        shard_executor=shard_executor,
        shard_num_workers=2 if shard_executor != "serial" else None,
    )
    try:
        for domains, values in ((JOIN_DOMAINS, JOIN_VALUES),
                                (HOT_DOMAINS, HOT_VALUES)):
            want = row_multiset(reference.query(domains, values).collect())
            got = row_multiset(router.query(domains, values).collect())
            assert got == want
        for k in range(0, KEYS, 3):
            want = row_multiset(
                reference.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            got = row_multiset(
                router.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            assert got == want
    finally:
        router.close()
        sj.close()


def test_aggregate_merges_partials_to_single_process_answer(
    reference, fleet
):
    want = reference.aggregate(
        JOIN_DOMAINS, JOIN_VALUES, group_by=["node"],
        value_field="metric_b", how="mean",
    )
    got = fleet.aggregate(
        JOIN_DOMAINS, JOIN_VALUES, group_by=["node"],
        value_field="metric_b", how="mean",
    )
    assert got.keys() == want.keys()
    for k, v in want.items():
        assert math.isclose(got[k], v, rel_tol=1e-9)
    for how in ("sum", "count", "min", "max"):
        w = reference.aggregate(
            HOT_DOMAINS, HOT_VALUES, group_by=["node"],
            value_field="metric_b", how=how,
        )
        g = fleet.aggregate(
            HOT_DOMAINS, HOT_VALUES, group_by=["node"],
            value_field="metric_b", how=how,
        )
        assert g.keys() == w.keys()
        for k in w:
            assert math.isclose(g[k], w[k], rel_tol=1e-9)


# ----------------------------------------------------------------------
# prune-aware routing
# ----------------------------------------------------------------------


def test_eq_filter_prunes_to_owning_shard(fleet):
    for k in range(KEYS):
        fleet.query(HOT_DOMAINS, HOT_VALUES)  # replicated only
    before = dict(fleet.snapshot().shards["routing"])
    for k in range(KEYS):
        fleet.query(JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k))
    after = dict(fleet.snapshot().shards["routing"])
    scattered = after["scattered"] - before["scattered"]
    dispatched = after["shard_requests"] - before["shard_requests"]
    pruned = after["pruned"] - before["pruned"]
    assert scattered == KEYS
    # every eq-filtered query went to exactly its one owning shard
    assert dispatched == KEYS
    assert pruned == KEYS  # the other shard skipped each time


def test_unfiltered_query_fans_out_to_all_shards(fleet):
    before = dict(fleet.snapshot().shards["routing"])
    fleet.query(JOIN_DOMAINS, JOIN_VALUES)
    after = dict(fleet.snapshot().shards["routing"])
    assert after["scattered"] - before["scattered"] == 1
    assert (
        after["shard_requests"] - before["shard_requests"]
        == fleet.num_shards
    )
    assert after["pruned"] == before["pruned"]


def test_replicated_only_plan_goes_to_one_shard(fleet):
    # "lookup" is replicated to every shard, so any single shard can
    # answer; the router must not fan out
    before = dict(fleet.snapshot().shards["routing"])
    for _ in range(4):
        fleet.query(HOT_DOMAINS, HOT_VALUES)
    after = dict(fleet.snapshot().shards["routing"])
    # first call hits the result cache path after it's answered once,
    # so count scatters rather than assuming 4
    scattered = after["scattered"] - before["scattered"]
    dispatched = after["shard_requests"] - before["shard_requests"]
    assert dispatched == scattered  # exactly one shard per scatter


def test_datasets_sharded_on_different_columns_refuse_to_join():
    sj = make_session(rows=ROWS, keys=KEYS)
    router = ShardRouter(
        sj, shards=2, num_workers=1,
        shard_on={"samples": ["node"], "lookup": ["metric_b"]},
    )
    try:
        with pytest.raises(ShardRoutingError):
            router.query(JOIN_DOMAINS, JOIN_VALUES).collect()
    finally:
        router.close()
        sj.close()


# ----------------------------------------------------------------------
# catalog churn and consistency
# ----------------------------------------------------------------------


def test_catalog_churn_mid_flight(fleet):
    _, right = keyed_tables(ROWS, num_keys=KEYS)
    want = row_multiset(fleet.query(HOT_DOMAINS, HOT_VALUES).collect())
    filtered_want = {
        k: row_multiset(
            fleet.query(
                JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
            ).collect()
        )
        for k in range(KEYS)
    }
    errors = []

    def churn():
        # register/drop an *auxiliary* dataset: each round bumps the
        # catalog version and re-replicates mid-flight, while the
        # queried datasets stay solvable throughout
        try:
            for _ in range(6):
                fleet.register_rows(
                    right, KEYED_RIGHT_SCHEMA, name="extra"
                )
                fleet.drop("extra")
        except Exception as exc:  # surfaced below
            errors.append(exc)

    t = threading.Thread(target=churn)
    t.start()
    try:
        for i in range(24):
            k = i % KEYS
            got = row_multiset(
                fleet.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            assert got == filtered_want[k]
    finally:
        t.join()
    assert not errors
    assert (
        row_multiset(fleet.query(HOT_DOMAINS, HOT_VALUES).collect())
        == want
    )


def test_out_of_band_shard_mutation_surfaces_stale_read(fleet):
    # mutate one shard behind the router's back — register an extra
    # dataset the queries never touch, so the shard still answers but
    # its stamp diverges from the fleet's. The router must refuse to
    # mix epochs rather than silently merge divergent answers.
    rogue, _ = keyed_tables(16, num_keys=2)
    payload = fleet._register_request(
        "rogue", KEYED_LEFT_SCHEMA, rogue
    )
    resp = fleet._fleet[0][0].request(payload)
    assert resp["ok"]
    with pytest.raises(ShardStaleReadError):
        # unfiltered -> touches both shards -> sees the divergence
        fleet.query(JOIN_DOMAINS, JOIN_VALUES).collect()
    assert fleet.snapshot().shards["routing"]["stale_retries"] > 0


def test_register_with_shard_on_routes_new_dataset(fleet):
    left, _ = keyed_tables(64, num_keys=4)
    fleet.register_rows(
        left, KEYED_LEFT_SCHEMA, name="samples2", shard_on=["node"]
    )
    assert fleet.placement.is_sharded("samples2")
    before = dict(fleet.snapshot().shards["routing"])
    got = fleet.query(
        ["compute nodes"], ["power"], filters=_eq(1)
    ).collect()
    after = dict(fleet.snapshot().shards["routing"])
    assert after["pruned"] > before["pruned"]
    assert got  # rows actually came back for the owned key
    fleet.drop("samples2")


# ----------------------------------------------------------------------
# fault tolerance
# ----------------------------------------------------------------------


def test_replica_failover_after_primary_kill(reference):
    sj, router = make_router(replication=2, result_cache_entries=1)
    try:
        router._fleet[0][0].kill()
        for k in range(KEYS):
            want = row_multiset(
                reference.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            got = row_multiset(
                router.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            assert got == want
        routing = router.snapshot().shards["routing"]
        assert routing["failovers"] > 0
    finally:
        router.close()
        sj.close()


def test_mutations_skip_dead_replica_but_not_dead_shard(reference):
    sj, router = make_router(replication=2, result_cache_entries=1)
    try:
        router._fleet[0][0].kill()
        _, right = keyed_tables(ROWS, num_keys=KEYS)
        router.drop("lookup")
        router.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
        want = row_multiset(
            reference.query(HOT_DOMAINS, HOT_VALUES).collect()
        )
        got = row_multiset(
            router.query(HOT_DOMAINS, HOT_VALUES).collect()
        )
        assert got == want
        # now kill the surviving replica: the whole shard is gone and
        # mutations must fail loudly instead of skipping it
        router._fleet[0][1].kill()
        with pytest.raises(ShardError):
            router.drop("lookup")
    finally:
        router.close()
        sj.close()


def test_total_shard_loss_is_a_hard_error():
    sj, router = make_router(result_cache_entries=1)
    try:
        for handle in router._fleet[0]:
            handle.kill()
        with pytest.raises(Exception) as excinfo:
            router.query(JOIN_DOMAINS, JOIN_VALUES).collect()
        assert "shard" in str(excinfo.value).lower()
    finally:
        router.close()
        sj.close()


def test_fault_injecting_shard_executor_still_correct(reference):
    sj, router = make_router(
        shard_fault={"seed": 7, "kill_tasks_per_stage": 1},
    )
    try:
        for k in range(0, KEYS, 2):
            want = row_multiset(
                reference.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            got = row_multiset(
                router.query(
                    JOIN_DOMAINS, JOIN_VALUES, filters=_eq(k)
                ).collect()
            )
            assert got == want
    finally:
        router.close()
        sj.close()


# ----------------------------------------------------------------------
# observability and entry points
# ----------------------------------------------------------------------


def test_snapshot_has_per_shard_and_fleet_blocks(fleet):
    fleet.query(JOIN_DOMAINS, JOIN_VALUES)
    snap = fleet.snapshot()
    shards = snap.shards
    assert shards["num_shards"] == 2
    assert shards["replication"] == 1
    assert set(shards["per_shard"]) == {"shard0", "shard1"}
    for m in shards["per_shard"].values():
        assert m.get("completed", 0) >= 0
    assert shards["fleet"]["completed"] >= 2  # both shards answered
    assert set(shards["routing"]) == {
        "scattered", "shard_requests", "pruned", "failovers",
        "stale_retries",
    }
    assert shards["fleet"]["completed"] == sum(
        m.get("completed", 0) for m in shards["per_shard"].values()
    )


def test_chrome_trace_has_router_and_shard_lanes(fleet):
    fleet.query(JOIN_DOMAINS, JOIN_VALUES)
    trace = fleet.chrome_trace()
    names = {
        (ev["pid"], ev["args"]["name"])
        for ev in trace["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    assert (1, "shard-router") in names
    shard_lanes = {n for _, n in names if n.startswith("shard ")}
    assert {"shard 0", "shard 1"} <= shard_lanes
    # every shard lane sits on its own pid, distinct from the router's
    shard_pids = {
        pid for pid, n in names if n.startswith("shard ")
    }
    assert len(shard_pids) == 2 and 1 not in shard_pids


def test_session_serve_entry_point():
    sj = make_session(rows=64, keys=4)
    try:
        plain = sj.serve(num_workers=1)
        assert isinstance(plain, QueryService)
        assert not isinstance(plain, ShardRouter)
        plain.close()
        router = sj.serve(
            shards=2, shard_on={"samples": ["node"]}, num_workers=1
        )
        assert isinstance(router, ShardRouter)
        assert router.num_shards == 2
        rows = router.query(HOT_DOMAINS, HOT_VALUES).collect()
        assert rows
        router.close()
    finally:
        sj.close()


def test_router_rejects_bad_fleet_shapes():
    sj = ScrubJaySession()
    try:
        with pytest.raises(ValueError):
            ShardRouter(sj, shards=0)
        with pytest.raises(ValueError):
            ShardRouter(sj, shards=2, replication=0)
    finally:
        sj.close()
