"""The filtering interop layer (paper footnote 1): serializable,
reproducible filter derivations."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import GLOBAL_REGISTRY
from repro.core.pipeline import DerivationPlan, LoadNode, TransformNode
from repro.core.semantics import Schema, domain, value
from repro.core.transformations import FilterEquals, FilterRange
from repro.errors import DerivationError
from repro.units.temporal import Timestamp

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [
    {"node": 1, "time": Timestamp(10.0), "temp": 20.0},
    {"node": 2, "time": Timestamp(20.0), "temp": 25.0},
    {"node": 1, "time": Timestamp(30.0), "temp": 30.0},
    {"node": 3, "time": Timestamp(40.0)},
]


@pytest.fixture()
def ds(ctx):
    return ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")


def test_filter_equals(ds, dictionary):
    out = FilterEquals("node", 1).apply(ds, dictionary)
    assert out.schema == SCHEMA  # schema unchanged
    assert [r["time"].epoch for r in out.collect()] == [10.0, 30.0]


def test_filter_equals_no_match(ds, dictionary):
    assert FilterEquals("node", 99).apply(ds, dictionary).collect() == []


def test_filter_equals_missing_field_not_applicable(dictionary):
    assert not FilterEquals("ghost", 1).applies(SCHEMA, dictionary)


def test_filter_range_on_values(ds, dictionary):
    out = FilterRange("temp", low=22.0, high=30.0).apply(ds, dictionary)
    assert [r["temp"] for r in out.collect()] == [25.0]  # high exclusive


def test_filter_range_on_datetime(ds, dictionary):
    out = FilterRange("time", low=15.0, high=35.0).apply(ds, dictionary)
    assert [r["time"].epoch for r in out.collect()] == [20.0, 30.0]


def test_filter_range_one_sided(ds, dictionary):
    low_only = FilterRange("temp", low=25.0).apply(ds, dictionary)
    assert [r["temp"] for r in low_only.collect()] == [25.0, 30.0]
    high_only = FilterRange("temp", high=25.0).apply(ds, dictionary)
    assert [r["temp"] for r in high_only.collect()] == [20.0]


def test_filter_range_drops_sparse_rows(ds, dictionary):
    out = FilterRange("temp", low=0.0).apply(ds, dictionary)
    assert all("temp" in r for r in out.collect())


def test_filter_range_needs_bounds():
    with pytest.raises(DerivationError):
        FilterRange("temp")


def test_filter_range_rejects_unordered_dimension(ds, dictionary):
    # node ids are unordered: 10 is not "less than" 20 (paper §4.2)
    f = FilterRange("node", low=1)
    assert not f.applies(SCHEMA, dictionary)
    with pytest.raises(DerivationError):
        f.apply(ds, dictionary)


def test_filters_serialize_into_pipelines(ds, dictionary):
    plan = DerivationPlan(
        TransformNode(
            FilterRange("time", low=15.0, high=35.0),
            TransformNode(FilterEquals("node", 1), LoadNode("t")),
        )
    )
    back = DerivationPlan.from_json(plan.to_json(), GLOBAL_REGISTRY)
    result = back.execute({"t": ds}, dictionary)
    assert [r["time"].epoch for r in result.collect()] == [30.0]
    assert back.operations() == ["load:t", "filter_equals", "filter_range"]


def test_filtered_plan_schema_derivation(ds, dictionary):
    plan = DerivationPlan(
        TransformNode(FilterEquals("node", 1), LoadNode("t"))
    )
    assert plan.derive_schema({"t": SCHEMA}, dictionary) == SCHEMA
