"""Correlation between derived value fields.

The whole point of a ScrubJay derivation is "a dataset exposing
correlations between those sources and measurements" (§3) — these
helpers quantify them. Pearson correlation is computed from
distributed moment aggregation (one pass, no driver-side copy of the
columns); Spearman ranks driver-side (fine at report size).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import SemanticError
from repro.core.dataset import ScrubJayDataset


def correlate(
    dataset: ScrubJayDataset,
    field_x: str,
    field_y: str,
    method: str = "pearson",
) -> float:
    """Correlation coefficient between two value fields.

    Rows missing either field are skipped. Raises ``ValueError`` when
    fewer than two complete rows exist or a field is constant.
    """
    for f in (field_x, field_y):
        if f not in dataset.schema:
            raise SemanticError(f"dataset has no field {f!r}")
    if method == "pearson":
        return _pearson(dataset, field_x, field_y)
    if method == "spearman":
        return _spearman(dataset, field_x, field_y)
    raise ValueError(f"unknown method {method!r}")


def _pearson(ds: ScrubJayDataset, fx: str, fy: str) -> float:
    # one distributed pass over (n, Σx, Σy, Σx², Σy², Σxy)
    zero = (0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def seq(acc, row):
        x, y = row[fx], row[fy]
        return (
            acc[0] + 1,
            acc[1] + x,
            acc[2] + y,
            acc[3] + x * x,
            acc[4] + y * y,
            acc[5] + x * y,
        )

    def comb(a, b):
        return tuple(u + v for u, v in zip(a, b))

    n, sx, sy, sxx, syy, sxy = (
        ds.rdd.filter(lambda row: fx in row and fy in row)
        .aggregate(zero, seq, comb)
    )
    if n < 2:
        raise ValueError("need at least two complete rows")
    cov = sxy - sx * sy / n
    vx = sxx - sx * sx / n
    vy = syy - sy * sy / n
    if vx <= 0 or vy <= 0:
        raise ValueError("a field is constant; correlation undefined")
    return cov / math.sqrt(vx * vy)


def _ranks(values: List[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and \
                values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def _spearman(ds: ScrubJayDataset, fx: str, fy: str) -> float:
    rows = ds.rdd.filter(lambda row: fx in row and fy in row).collect()
    if len(rows) < 2:
        raise ValueError("need at least two complete rows")
    xs = _ranks([r[fx] for r in rows])
    ys = _ranks([r[fy] for r in rows])
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx <= 0 or vy <= 0:
        raise ValueError("a field is constant; correlation undefined")
    return cov / math.sqrt(vx * vy)


def correlation_matrix(
    dataset: ScrubJayDataset,
    fields: Sequence[str],
    method: str = "pearson",
) -> Dict[Tuple[str, str], float]:
    """Pairwise correlations for every unordered field pair."""
    out: Dict[Tuple[str, str], float] = {}
    fs = list(fields)
    for i, fx in enumerate(fs):
        for fy in fs[i + 1:]:
            out[(fx, fy)] = correlate(dataset, fx, fy, method)
    return out
