"""Workload behavioural models and the rack sensor feeds."""

import pytest

from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler
from repro.datagen.sensors import RackSensorSimulator
from repro.datagen.workloads import IDLE, WORKLOADS


# ----------------------------------------------------------------------
# workload models: the paper's qualitative signatures
# ----------------------------------------------------------------------

def test_amg_heat_rises_regularly():
    amg = WORKLOADS["AMG"]
    samples = [amg.heat_at(t, 3600.0) for t in range(0, 3601, 300)]
    assert all(b >= a for a, b in zip(samples, samples[1:]))
    assert samples[-1] == pytest.approx(amg.heat_peak)


def test_phased_workloads_rise_and_fall():
    mgc = WORKLOADS["mg.C"]
    samples = [mgc.heat_factor(t, 3600.0) for t in range(0, 3600, 60)]
    rises = any(b > a for a, b in zip(samples, samples[1:]))
    falls = any(b < a for a, b in zip(samples, samples[1:]))
    assert rises and falls


def test_amg_has_highest_peak_heat():
    assert WORKLOADS["AMG"].heat_peak == max(
        w.heat_peak for w in WORKLOADS.values()
    )


def test_mgc_never_throttles():
    mgc = WORKLOADS["mg.C"]
    assert all(
        mgc.frequency_ratio(t) == pytest.approx(1.0)
        for t in (0.0, 100.0, 1000.0)
    )


def test_prime95_throttles_aggressively():
    p = WORKLOADS["prime95"]
    assert p.frequency_ratio(0.0) == pytest.approx(1.0)
    assert p.frequency_ratio(1000.0) == pytest.approx(
        p.settled_frequency_ratio, abs=0.01
    )
    assert p.settled_frequency_ratio < 0.8


def test_prime95_beats_mgc_on_instructions_despite_throttle():
    p, m = WORKLOADS["prime95"], WORKLOADS["mg.C"]
    assert p.instructions_at(600.0) > m.instructions_at(600.0)


def test_mgc_beats_prime95_on_memory_traffic():
    p, m = WORKLOADS["prime95"], WORKLOADS["mg.C"]
    assert m.memory_read_rate > 5 * p.memory_read_rate


def test_thermal_margin_narrows_as_run_settles():
    p = WORKLOADS["prime95"]
    assert p.thermal_margin_at(0.0) > p.thermal_margin_at(600.0)
    assert p.thermal_margin_at(10000.0) == pytest.approx(
        p.thermal_margin, abs=0.1
    )


def test_idle_baseline_modest():
    assert IDLE.heat_peak < 1.0
    assert IDLE.settled_frequency_ratio == 1.0


# ----------------------------------------------------------------------
# rack sensors
# ----------------------------------------------------------------------

@pytest.fixture()
def sim():
    fac = Facility(FacilityConfig(num_racks=2, nodes_per_rack=2))
    sched = JobScheduler(fac)
    sched.pin("prime95", fac.nodes_in_rack(1), 0.0, 1200.0)
    return RackSensorSimulator(fac, sched, seed=1)


def test_temperature_rows_shape(sim):
    rows = sim.temperature_rows(0.0, 600.0, period=120.0)
    # 5 samples × 2 racks × 3 locations × 2 aisles
    assert len(rows) == 5 * 2 * 3 * 2
    assert set(rows[0]) == {"rack", "location", "aisle", "time", "temp"}
    aisles = {r["aisle"] for r in rows}
    assert aisles == {"hot", "cold"}


def test_busy_rack_hotter_than_idle(sim):
    rows = sim.temperature_rows(120.0, 600.0, period=120.0)
    def mean_hot(rack):
        vals = [r["temp"] for r in rows
                if r["rack"] == rack and r["aisle"] == "hot"]
        return sum(vals) / len(vals)
    assert mean_hot(1) > mean_hot(0) + 3.0


def test_hot_aisle_hotter_than_cold(sim):
    rows = sim.temperature_rows(0.0, 600.0)
    by_key = {}
    for r in rows:
        by_key.setdefault(
            (r["rack"], r["location"], r["time"]), {}
        )[r["aisle"]] = r["temp"]
    for temps in by_key.values():
        assert temps["hot"] > temps["cold"]


def test_top_sees_more_heat_than_bottom(sim):
    rows = sim.temperature_rows(600.0, 600.0)
    def mean(loc):
        vals = [r["temp"] for r in rows
                if r["rack"] == 1 and r["aisle"] == "hot"
                and r["location"] == loc]
        return sum(vals) / len(vals)
    assert mean("top") > mean("bottom")


def test_sensor_rows_deterministic(sim):
    a = sim.temperature_rows(0.0, 240.0)
    b = sim.temperature_rows(0.0, 240.0)
    assert a == b


def test_humidity_and_power_feeds(sim):
    hum = sim.humidity_rows(0.0, 240.0)
    assert all(20.0 < r["humidity"] < 60.0 for r in hum)
    pow_rows = sim.power_rows(0.0, 240.0)
    busy = [r["power"] for r in pow_rows if r["rack"] == 1]
    idle = [r["power"] for r in pow_rows if r["rack"] == 0]
    assert sum(busy) / len(busy) > sum(idle) / len(idle)
