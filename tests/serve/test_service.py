"""QueryService: concurrent correctness, fairness, shedding, deadlines,
retries — the acceptance surface of the serve subsystem."""

from __future__ import annotations

import threading
import time

import pytest

from repro import ScrubJaySession
from repro.errors import (
    NoSolutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceClosedError,
    ServiceOverloadError,
    TransientTaskError,
)
from repro.rdd.executors import FaultInjectingExecutor, make_executor
from repro.serve import QueryService

from tests.serve.conftest import (
    HOT_DOMAINS,
    HOT_VALUES,
    JOIN_DOMAINS,
    JOIN_VALUES,
    make_session,
    row_multiset,
)

#: the mixed workload all equivalence tests run: hot single-dataset
#: projections interleaved with the cold two-dataset join
WORKLOAD = [
    (HOT_DOMAINS, HOT_VALUES),
    (JOIN_DOMAINS, JOIN_VALUES),
    (HOT_DOMAINS, HOT_VALUES),
    (JOIN_DOMAINS, JOIN_VALUES),
    (["compute nodes"], ["power"]),
]


def _serial_answers(session):
    """Ground truth: the same workload answered one query at a time
    directly through the session (no service, no caches)."""
    out = []
    for domains, values in WORKLOAD:
        out.append(
            row_multiset(session.ask(domains, values).collect())
        )
    return out


def _concurrent_answers(service, num_clients=8):
    """Each client thread runs the whole workload; returns per-client
    lists of multisets plus any exceptions."""
    results = [None] * num_clients
    errors = []

    def client(i):
        try:
            answers = []
            for domains, values in WORKLOAD:
                ds = service.query(
                    domains, values, tenant=f"tenant-{i % 3}"
                )
                answers.append(row_multiset(ds.collect()))
            results[i] = answers
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_concurrent_equals_serial(executor):
    baseline_session = make_session(executor="serial")
    expected = _serial_answers(baseline_session)
    baseline_session.close()

    session = make_session(executor=executor)
    try:
        with QueryService(session, num_workers=4, max_queue=64) as svc:
            results, errors = _concurrent_answers(svc, num_clients=8)
            assert errors == []
            for client_answers in results:
                assert client_answers == expected
            snap = svc.snapshot()
            assert snap.completed == 8 * len(WORKLOAD)
            assert snap.failed == 0 and snap.shed == 0
            # repeated queries must have hit the caches
            assert snap.plan_cache["hits"] > 0
            assert snap.result_cache["hits"] > 0
    finally:
        session.close()


def test_concurrent_equals_serial_under_faults():
    baseline_session = make_session(executor="serial")
    expected = _serial_answers(baseline_session)
    baseline_session.close()

    inner = make_executor("threads", 2)
    injector = FaultInjectingExecutor(
        inner, seed=7, kill_tasks_per_stage=1, faults_per_task=1
    )
    session = ScrubJaySession(ctx=None, executor=injector)
    from repro.datagen.synthetic import (
        KEYED_LEFT_SCHEMA,
        KEYED_RIGHT_SCHEMA,
        keyed_tables,
    )

    left, right = keyed_tables(200, num_keys=16)
    session.register_rows(left, KEYED_LEFT_SCHEMA, name="samples")
    session.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    try:
        with QueryService(session, num_workers=3, max_queue=64) as svc:
            results, errors = _concurrent_answers(svc, num_clients=6)
            assert errors == []
            for client_answers in results:
                assert client_answers == expected
    finally:
        session.close()


def test_overload_sheds_with_typed_error(serve_session):
    release = threading.Event()
    original_execute = serve_session.execute

    def slow_execute(plan):
        release.wait(10.0)
        return original_execute(plan)

    serve_session.execute = slow_execute
    svc = QueryService(serve_session, num_workers=1, max_queue=2)
    try:
        # Admission stops somewhere between max_queue (worker not yet
        # dispatched) and max_queue + num_workers (worker already
        # holding one) tickets — but it MUST stop, with the typed
        # error, instead of queueing without bound.
        tickets = []
        first_shed = None
        for _ in range(10):
            try:
                tickets.append(svc.submit(HOT_DOMAINS, HOT_VALUES))
            except ServiceOverloadError as exc:
                first_shed = exc
                break
        assert first_shed is not None
        assert first_shed.max_queue == 2
        assert 2 <= len(tickets) <= 3
        # while saturated, every further submit sheds too
        for _ in range(4):
            with pytest.raises(ServiceOverloadError):
                svc.submit(HOT_DOMAINS, HOT_VALUES)
        release.set()
        for t in tickets:
            t.result(timeout=10.0)  # admitted work still completes
        snap = svc.snapshot()
        assert snap.shed == 5
        assert snap.completed == len(tickets)
        assert snap.failed == 0
    finally:
        release.set()
        svc.close()


def test_queued_deadline_expires_without_dispatch(serve_session):
    release = threading.Event()
    original_execute = serve_session.execute
    executed = []

    def slow_execute(plan):
        executed.append(plan)
        release.wait(5.0)
        return original_execute(plan)

    serve_session.execute = slow_execute
    svc = QueryService(serve_session, num_workers=1, max_queue=8)
    try:
        blocker = svc.submit(HOT_DOMAINS, HOT_VALUES)
        doomed = svc.submit(
            ["compute nodes"], ["power"], timeout=0.05
        )
        time.sleep(0.2)  # let the deadline lapse while queued
        release.set()
        blocker.result(timeout=10.0)
        with pytest.raises(QueryTimeoutError):
            doomed.result(timeout=10.0)
        assert svc.snapshot().timeouts == 1
        # the doomed query never reached the engine/executor
        assert len(executed) == 1
    finally:
        release.set()
        svc.close()


def test_cancel_queued_ticket(serve_session):
    release = threading.Event()
    original_execute = serve_session.execute
    serve_session.execute = lambda plan: (
        release.wait(5.0),
        original_execute(plan),
    )[1]
    svc = QueryService(serve_session, num_workers=1, max_queue=8)
    try:
        blocker = svc.submit(HOT_DOMAINS, HOT_VALUES)
        queued = svc.submit(["compute nodes"], ["power"])
        assert svc.cancel(queued) is True
        assert svc.cancel(queued) is False  # already cancelled
        release.set()
        blocker.result(timeout=10.0)
        with pytest.raises(QueryCancelledError):
            queued.result(timeout=1.0)
        assert queued.state == "cancelled"
        assert svc.snapshot().cancelled == 1
        # a running/finished ticket cannot be cancelled
        assert svc.cancel(blocker) is False
    finally:
        release.set()
        svc.close()


def test_cancel_last_queued_ticket_does_not_kill_workers(serve_session):
    """Regression: cancelling a tenant's only queued ticket used to
    leave the tenant in the round-robin order with an empty deque; the
    next dequeue then popleft()'d the empty deque, the IndexError
    killed the worker thread, and every later submission hung."""
    release = threading.Event()
    original_execute = serve_session.execute
    serve_session.execute = lambda plan: (
        release.wait(5.0),
        original_execute(plan),
    )[1]
    svc = QueryService(serve_session, num_workers=1, max_queue=8)
    try:
        blocker = svc.submit(HOT_DOMAINS, HOT_VALUES, tenant="a")
        doomed = svc.submit(
            ["compute nodes"], ["power"], tenant="b"
        )
        assert svc.cancel(doomed) is True
        # tenant "b" now has no queued work; this submit from a third
        # tenant must still be dispatched by the (sole) worker
        survivor = svc.submit(HOT_DOMAINS, HOT_VALUES, tenant="c")
        release.set()
        blocker.result(timeout=10.0)
        assert survivor.result(timeout=10.0).count() > 0
        # repeat the pattern: every worker must still be alive
        again = svc.submit(["compute nodes"], ["power"], tenant="b")
        assert svc.cancel(again) is True
        assert svc.query(HOT_DOMAINS, HOT_VALUES, tenant="d").count() > 0
    finally:
        release.set()
        svc.close()


def test_tenant_fairness_round_robin(serve_session):
    """One chatty tenant enqueues a burst; a second tenant's single
    query must not wait behind the whole burst."""
    original_execute = serve_session.execute
    gate = threading.Event()
    serve_session.execute = lambda plan: (
        gate.wait(10.0),
        original_execute(plan),
    )[1]
    svc = QueryService(serve_session, num_workers=1, max_queue=64)
    try:
        # the single worker picks this up and blocks inside execute,
        # so everything submitted below queues deterministically
        hold = svc.submit(HOT_DOMAINS, HOT_VALUES, tenant="noisy")
        deadline = time.monotonic() + 5.0
        while hold.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.01)
        assert hold.state == "running"

        burst = [
            svc.submit(["compute nodes"], ["power"], tenant="noisy")
            for _ in range(5)
        ]
        single = svc.submit(HOT_DOMAINS, HOT_VALUES, tenant="quiet")
        gate.set()
        for t in burst + [single, hold]:
            t.result(timeout=20.0)

        # one worker → completion order is dispatch order; with
        # round-robin the quiet tenant is served after at most one
        # more noisy query, never behind the whole burst
        queued = [("quiet", single)] + [
            (f"noisy-{i}", t) for i, t in enumerate(burst)
        ]
        names = [
            n for n, _ in sorted(queued, key=lambda p: p[1].finished_at)
        ]
        assert names.index("quiet") <= 1, names
    finally:
        gate.set()
        svc.close()


def test_transient_failures_retried_fatal_not(serve_session):
    svc = QueryService(
        serve_session, num_workers=1, max_queue=8, max_query_attempts=3
    )
    original_execute = serve_session.execute
    attempts = {"n": 0}

    def flaky_execute(plan):
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise TransientTaskError("injected pool wobble")
        return original_execute(plan)

    serve_session.execute = flaky_execute
    try:
        ds = svc.query(HOT_DOMAINS, HOT_VALUES)
        assert ds.count() > 0
        assert attempts["n"] == 3
        snap = svc.snapshot()
        assert snap.retried == 2
        assert snap.completed == 1 and snap.failed == 0

        # a NoSolutionError is deterministic: no retry, one failure
        with pytest.raises(NoSolutionError):
            svc.query(["racks"], ["power"])
        assert svc.snapshot().failed == 1
    finally:
        svc.close()


def test_closed_service_rejects(serve_session):
    svc = QueryService(serve_session, num_workers=1)
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.submit(HOT_DOMAINS, HOT_VALUES)


def test_close_without_drain_fails_queued(serve_session):
    release = threading.Event()
    original_execute = serve_session.execute
    serve_session.execute = lambda plan: (
        release.wait(5.0),
        original_execute(plan),
    )[1]
    svc = QueryService(serve_session, num_workers=1, max_queue=8)
    running = svc.submit(HOT_DOMAINS, HOT_VALUES)
    queued = svc.submit(["compute nodes"], ["power"])
    closer = threading.Thread(
        target=svc.close, kwargs={"drain": False}
    )
    time.sleep(0.1)
    closer.start()
    time.sleep(0.1)
    release.set()
    closer.join(10.0)
    running.result(timeout=10.0)  # in-flight work still completes
    with pytest.raises(ServiceClosedError):
        queued.result(timeout=1.0)


def test_invalidation_after_data_change(serve_session):
    """Drop + re-register the same name with the same schema but
    different rows: the state fingerprint (schemas) is unchanged, so
    the *plan* may be reused — but the cached *result* must not be."""
    from repro.datagen.synthetic import KEYED_LEFT_SCHEMA, keyed_tables

    svc = QueryService(serve_session, num_workers=2)
    try:
        first = svc.query(JOIN_DOMAINS, JOIN_VALUES)
        assert first.count() == 200
        plan_hits_before = svc.snapshot().plan_cache["hits"]

        smaller, _ = keyed_tables(100, num_keys=16)
        serve_session.drop("samples")
        serve_session.register_rows(
            smaller, KEYED_LEFT_SCHEMA, name="samples"
        )
        second = svc.query(JOIN_DOMAINS, JOIN_VALUES)
        assert second.count() == 100  # fresh data, not the stale entry

        snap = svc.snapshot()
        # the schema set was unchanged, so the plan cache may serve
        # the memoized plan even though the result was recomputed
        assert snap.plan_cache["hits"] == plan_hits_before + 1
        assert snap.result_cache["misses"] >= 2
    finally:
        svc.close()


def test_result_not_published_when_catalog_moves_mid_query(serve_session):
    """Regression: a register/drop between keying and execution used to
    cache rows computed against the *new* catalog under the *old*
    version's result key, feeding a stale-keyed reader wrong data."""
    from repro.datagen.synthetic import KEYED_LEFT_SCHEMA, keyed_tables

    svc = QueryService(serve_session, num_workers=1, max_queue=8)
    original_execute = serve_session.execute
    raced = {"done": False}

    def racing_execute(plan):
        result = original_execute(plan)
        if not raced["done"]:
            raced["done"] = True
            smaller, _ = keyed_tables(100, num_keys=16)
            serve_session.drop("samples")
            serve_session.register_rows(
                smaller, KEYED_LEFT_SCHEMA, name="samples"
            )
        return result

    serve_session.execute = racing_execute
    try:
        svc.query(JOIN_DOMAINS, JOIN_VALUES)
        # the catalog moved mid-query: the result must not have been
        # published under the pre-race key
        assert svc.snapshot().result_cache["entries"] == 0
        # and the next run (stable catalog) caches normally again
        assert svc.query(JOIN_DOMAINS, JOIN_VALUES).count() == 100
        assert svc.snapshot().result_cache["entries"] == 1
    finally:
        svc.close()


def test_session_serve_entry_point(serve_session):
    with serve_session.serve(num_workers=1) as svc:
        assert svc.query(HOT_DOMAINS, HOT_VALUES).count() > 0
