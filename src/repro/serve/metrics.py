"""Service observability: counters, gauges, and latency percentiles.

A serving layer is only operable if its health is measurable — the
admission controller's shed rate, the caches' hit rates, and the
latency distribution are what capacity planning reads. ``ServiceMetrics``
is the single thread-safe sink the :class:`~repro.serve.QueryService`
writes into; :meth:`ServiceMetrics.snapshot` returns an immutable,
JSON-able :class:`ServiceSnapshot` combining its own counters with the
plan/result/derivation-cache stats.

Latencies are kept in a bounded reservoir (newest-wins ring) so a
long-running service's percentile cost stays O(reservoir), and qps is
reported both lifetime (completed / uptime) and over a recent sliding
window (robust to warm-up).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def percentile(sorted_values: List[float], p: float) -> Optional[float]:
    """Linearly interpolated percentile (``p`` in [0, 100]) of
    pre-sorted data.

    Interpolates between the two straddling order statistics (the
    same definition as ``statistics.quantiles`` with
    ``method='inclusive'``), replacing the old nearest-rank pick:
    nearest-rank made small samples degenerate — with one sample every
    percentile returned it but p95/p99 of two samples jumped straight
    to the max — and reported quantiles the data never contained
    biased high at every sample size.
    """
    if not sorted_values:
        return None
    if p <= 0:
        return sorted_values[0]
    if p >= 100:
        return sorted_values[-1]
    pos = p / 100.0 * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


@dataclass
class ServiceSnapshot:
    """One immutable, JSON-able observation of a running service."""

    uptime_s: float
    submitted: int
    completed: int
    failed: int
    shed: int
    timeouts: int
    cancelled: int
    retried: int
    in_flight: int
    queue_depth: int
    tenants: int
    qps: float           #: lifetime completed / uptime
    recent_qps: float    #: completions inside the sliding window
    latency_s: Dict[str, Optional[float]] = field(default_factory=dict)
    plan_cache: Dict[str, Any] = field(default_factory=dict)
    result_cache: Dict[str, Any] = field(default_factory=dict)
    derivation_cache: Dict[str, Any] = field(default_factory=dict)
    #: per-shard snapshots plus fleet totals, populated only by a
    #: :class:`~repro.serve.sharded.ShardRouter` (empty otherwise)
    shards: Dict[str, Any] = field(default_factory=dict)
    #: streaming state — feed watermarks, standing-subscription count,
    #: delta/replay refresh counters (empty when nothing streams)
    streams: Dict[str, Any] = field(default_factory=dict)
    #: the session's TuningProfile snapshot — effective knob values
    #: with provenance (default | user-pinned | tuned) and version
    profile: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "uptime_s": self.uptime_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "retried": self.retried,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "tenants": self.tenants,
            "qps": self.qps,
            "recent_qps": self.recent_qps,
            "latency_s": dict(self.latency_s),
            "plan_cache": dict(self.plan_cache),
            "result_cache": dict(self.result_cache),
            "derivation_cache": dict(self.derivation_cache),
            "shards": dict(self.shards),
            "streams": dict(self.streams),
            "profile": dict(self.profile),
        }

    def summary(self) -> str:
        lat = self.latency_s

        def fmt(v: Optional[float]) -> str:
            return f"{v * 1000:.1f}ms" if v is not None else "-"

        return (
            f"ServiceMetrics: {self.completed}/{self.submitted} done, "
            f"{self.failed} failed, {self.shed} shed, "
            f"{self.timeouts} timed out | in-flight {self.in_flight}, "
            f"queued {self.queue_depth} | qps {self.qps:.1f} "
            f"(recent {self.recent_qps:.1f}) | "
            f"p50 {fmt(lat.get('p50'))} p95 {fmt(lat.get('p95'))} "
            f"p99 {fmt(lat.get('p99'))} | "
            f"plan-cache hit rate {self.plan_cache.get('hit_rate')} | "
            f"result-cache hit rate {self.result_cache.get('hit_rate')}"
        )


class ServiceMetrics:
    """Thread-safe metric sink for one QueryService.

    ``registry`` (a :class:`~repro.obs.MetricsRegistry`, normally the
    session context's) receives a mirror of every event as
    ``serve.*`` counters and a ``serve.latency_s`` histogram, so the
    service shows up in the same Prometheus dump as the engine and
    the RDD layer.
    """

    def __init__(
        self,
        reservoir: int = 4096,
        window_s: float = 30.0,
        clock=time.monotonic,
        registry=None,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self.registry = registry
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.retried = 0
        self._latencies: "deque[float]" = deque(maxlen=reservoir)
        self._window_s = window_s
        self._completions: "deque[float]" = deque()

    # ------------------------------------------------------------------
    # recording (called by the service)
    # ------------------------------------------------------------------

    def _mirror(self, event: str) -> None:
        if self.registry is not None:
            self.registry.inc(f"serve.{event}")

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1
        self._mirror("submitted")

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1
        self._mirror("shed")

    def record_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1
        self._mirror("cancelled")

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1
        self._mirror("timeouts")

    def record_retry(self) -> None:
        with self._lock:
            self.retried += 1
        self._mirror("retried")

    def record_completed(self, latency_s: float) -> None:
        now = self._clock()
        with self._lock:
            self.completed += 1
            self._latencies.append(latency_s)
            self._completions.append(now)
            self._trim(now)
        self._mirror("completed")
        if self.registry is not None:
            self.registry.observe("serve.latency_s", latency_s)

    def record_failed(self, latency_s: Optional[float] = None) -> None:
        with self._lock:
            self.failed += 1
            if latency_s is not None:
                self._latencies.append(latency_s)
        self._mirror("failed")
        # Mirror the latency into the registry histogram too: the
        # snapshot percentiles above include failed-query latencies,
        # so the Prometheus-side serve.latency_s must as well or the
        # two views of the same service disagree.
        if self.registry is not None and latency_s is not None:
            self.registry.observe("serve.latency_s", latency_s)

    def _trim(self, now: float) -> None:
        horizon = now - self._window_s
        while self._completions and self._completions[0] < horizon:
            self._completions.popleft()

    # ------------------------------------------------------------------

    def snapshot(
        self,
        in_flight: int = 0,
        queue_depth: int = 0,
        tenants: int = 0,
        plan_cache: Optional[Dict[str, Any]] = None,
        result_cache: Optional[Dict[str, Any]] = None,
        derivation_cache: Optional[Dict[str, Any]] = None,
        streams: Optional[Dict[str, Any]] = None,
        profile: Optional[Dict[str, Any]] = None,
    ) -> ServiceSnapshot:
        now = self._clock()
        with self._lock:
            uptime = max(now - self._started, 1e-9)
            self._trim(now)
            lats = sorted(self._latencies)
            recent = len(self._completions)
            return ServiceSnapshot(
                uptime_s=uptime,
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                shed=self.shed,
                timeouts=self.timeouts,
                cancelled=self.cancelled,
                retried=self.retried,
                in_flight=in_flight,
                queue_depth=queue_depth,
                tenants=tenants,
                qps=self.completed / uptime,
                recent_qps=recent / min(uptime, self._window_s),
                latency_s={
                    "p50": percentile(lats, 50),
                    "p95": percentile(lats, 95),
                    "p99": percentile(lats, 99),
                    "max": lats[-1] if lats else None,
                    "samples": float(len(lats)),
                },
                plan_cache=dict(plan_cache or {}),
                result_cache=dict(result_cache or {}),
                derivation_cache=dict(derivation_cache or {}),
                streams=dict(streams or {}),
                profile=dict(profile or {}),
            )
