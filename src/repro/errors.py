"""Exception hierarchy for the ScrubJay reproduction.

Every error raised deliberately by this package derives from
:class:`ScrubJayError` so callers can catch the whole family with one
``except`` clause while still distinguishing specific failure modes.
"""

from __future__ import annotations


class ScrubJayError(Exception):
    """Base class for all errors raised by this package."""


class SemanticError(ScrubJayError):
    """A dataset or annotation violates the semantic rules.

    Raised e.g. when a schema references a dimension or unit that is not
    present in the active semantic dictionary, or when a field's relation
    type is neither ``domain`` nor ``value``.
    """


class DictionaryError(ScrubJayError):
    """The semantic dictionary would become inconsistent.

    Raised when registering an entry that would introduce a synonym
    (two keywords for the same meaning) or a homonym (one keyword with
    two meanings), which the paper's dictionary explicitly forbids.
    """


class UnitError(ScrubJayError):
    """Invalid unit operation.

    Raised for conversions across dimensions, unknown units, or
    arithmetic between incompatible quantities.
    """


class DerivationError(ScrubJayError):
    """A derivation was applied to a dataset that does not satisfy its
    required semantics, or its execution produced inconsistent output."""


class QueryError(ScrubJayError):
    """A query is malformed — e.g. references unknown dimensions."""


class NoSolutionError(QueryError):
    """The derivation engine exhausted its search without finding a
    derivation sequence that satisfies the query.

    Mirrors the ``return no solution`` branch of Algorithm 1 in the
    paper: if a queried domain dimension exists in no dataset, or the
    datasets holding the queried dimensions cannot be combined, no
    sequence of derivations can ever satisfy the query.
    """


class PipelineError(ScrubJayError):
    """A serialized derivation sequence is malformed or refers to
    operations/datasets that are not registered in this session."""


class WrapperError(ScrubJayError):
    """A data wrapper failed to parse its source into rows."""


class StoreError(ScrubJayError):
    """The wide-column store was used inconsistently (unknown table,
    missing partition key, schema mismatch on insert)."""


class ExecutorError(ScrubJayError):
    """A parallel executor failed to run tasks."""
