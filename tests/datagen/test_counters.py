"""Counter streams: cumulative semantics, resets, planted signatures."""

import pytest

from repro.datagen.counters import CounterSimulator
from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler


@pytest.fixture()
def sim():
    fac = Facility(FacilityConfig(num_racks=1, nodes_per_rack=1,
                                  sockets_per_node=2, cores_per_socket=2))
    sched = JobScheduler(fac)
    sched.pin("mg.C", [0], 50.0, 400.0)
    sched.pin("prime95", [0], 500.0, 400.0)
    return CounterSimulator(fac, sched, seed=2)


def _rates(samples, field, time_field="time"):
    """Reset-safe oracle rates from consecutive cumulative samples."""
    out = []
    samples = sorted(samples, key=lambda r: r[time_field])
    for a, b in zip(samples, samples[1:]):
        dt = b[time_field] - a[time_field]
        delta = b[field] - a[field]
        if dt > 0 and delta >= 0:
            out.append((b[time_field].epoch, delta / dt))
    return out


def test_papi_rows_shape(sim):
    rows = sim.papi_rows([0], 0.0, 100.0, period=5.0)
    assert len(rows) == 20 * 4  # 20 samples × 4 cpus
    assert set(rows[0]) == {"nodeid", "cpuid", "time", "instructions",
                            "aperf", "mperf"}


def test_papi_counters_cumulative_between_resets(sim):
    rows = [r for r in sim.papi_rows([0], 0.0, 200.0, period=5.0)
            if r["cpuid"] == 0]
    rows.sort(key=lambda r: r["time"])
    decreases = sum(
        1 for a, b in zip(rows, rows[1:])
        if b["instructions"] < a["instructions"]
    )
    # monotone except for the rare reset
    assert decreases <= 2


def test_papi_mperf_tracks_rated_frequency(sim):
    rows = [r for r in sim.papi_rows([0], 600.0, 100.0, period=5.0)
            if r["cpuid"] == 0]
    rates = [v for _t, v in _rates(rows, "mperf")]
    rated_hz = sim.facility.base_frequency(0) * 1e9
    for v in rates:
        assert v == pytest.approx(rated_hz, rel=0.05)


def test_papi_aperf_shows_prime95_throttle(sim):
    # late in the prime95 run the active/rated ratio must approach the
    # settled throttle level
    rows = [r for r in sim.papi_rows([0], 750.0, 100.0, period=5.0)
            if r["cpuid"] == 0]
    a = dict(_rates(rows, "aperf"))
    m = dict(_rates(rows, "mperf"))
    ratios = [a[t] / m[t] for t in a if t in m and m[t] > 0]
    mean_ratio = sum(ratios) / len(ratios)
    assert mean_ratio == pytest.approx(0.68, abs=0.08)


def test_papi_full_frequency_during_mgc(sim):
    rows = [r for r in sim.papi_rows([0], 200.0, 100.0, period=5.0)
            if r["cpuid"] == 0]
    a = dict(_rates(rows, "aperf"))
    m = dict(_rates(rows, "mperf"))
    ratios = [a[t] / m[t] for t in a if t in m and m[t] > 0]
    assert sum(ratios) / len(ratios) == pytest.approx(1.0, abs=0.06)


def test_ipmi_rows_shape_and_memory_signal(sim):
    rows = sim.ipmi_rows([0], 0.0, 1000.0, period=10.0)
    assert set(rows[0]) == {"nodeid", "socket", "time", "mem_reads",
                            "mem_writes", "power", "thermal_margin"}
    sock0 = [r for r in rows if r["socket"] == 0]
    mgc_rates = [v for t, v in _rates(sock0, "mem_reads")
                 if 100.0 < t < 440.0]
    p95_rates = [v for t, v in _rates(sock0, "mem_reads")
                 if 550.0 < t < 890.0]
    assert sum(mgc_rates) / len(mgc_rates) > \
        3 * sum(p95_rates) / len(p95_rates)


def test_ipmi_thermal_margin_tight_under_prime95(sim):
    rows = [r for r in sim.ipmi_rows([0], 0.0, 1000.0, period=10.0)
            if r["socket"] == 0]
    mgc = [r["thermal_margin"] for r in rows
           if 100.0 < r["time"].epoch < 440.0]
    p95 = [r["thermal_margin"] for r in rows
           if 800.0 < r["time"].epoch < 890.0]
    assert sum(p95) / len(p95) < sum(mgc) / len(mgc) - 5.0


def test_ldms_rows_utilization_signal(sim):
    rows = sim.ldms_rows([0], 0.0, 1000.0, period=10.0)
    busy = [r["cpu_util"] for r in rows if 100 < r["time"].epoch < 440]
    idle = [r["cpu_util"] for r in rows if r["time"].epoch < 40]
    assert sum(busy) / len(busy) > 80.0
    assert sum(idle) / len(idle) < 15.0


def test_counters_deterministic(sim):
    assert sim.papi_rows([0], 0.0, 50.0) == sim.papi_rows([0], 0.0, 50.0)


def test_sample_times_jitter_but_order(sim):
    rows = [r for r in sim.papi_rows([0], 0.0, 100.0, period=5.0)
            if r["cpuid"] == 0]
    times = [r["time"].epoch for r in rows]
    assert times == sorted(times)
    # jitter: not all exactly on the period grid
    assert any(abs(t % 5.0) > 1e-6 and abs(t % 5.0 - 5.0) > 1e-6
               for t in times)
