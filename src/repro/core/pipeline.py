"""Reproducible derivation sequences (paper §5.4).

A derivation sequence is a DAG: leaves load named datasets from the
session catalog, internal nodes apply transformations (one input) or
combinations (two inputs). The engine *plans* these DAGs without
executing them; a plan can then be

- executed in distributed memory (``plan.execute(...)``),
- serialized to JSON (``plan.to_json()``) — a compact, human-readable,
  directly editable representation containing everything needed to
  reproduce the processing pipeline, with derivation parameters
  gathered by code reflection, or
- rendered as the kind of derivation graph shown in the paper's
  Figures 5 and 7 (``plan.describe()``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.errors import PipelineError
from repro.columnar.batch import ColumnBatch
from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import (
    Combination,
    DerivationRegistry,
    Transformation,
)
from repro.core.dictionary import SemanticDictionary
from repro.rdd.rdd import ScanRDD
from repro.rdd.stats import KernelDecision
from repro.sources.predicate import ColumnPredicate
from repro.util.hashing import content_hash


def _explode_partition(items: List) -> List:
    """Flatten a partition of ColumnBatch elements back to dict rows."""
    rows: List = []
    for item in items:
        if isinstance(item, ColumnBatch):
            rows.extend(item.to_rows())
        else:
            rows.append(item)
    return rows


def _explode(ds: ScrubJayDataset) -> ScrubJayDataset:
    """Row-shaped view of a (possibly) batched dataset."""
    if not getattr(ds, "batched", False):
        return ds
    return ds.with_rdd(
        ds.rdd.mapPartitions(_explode_partition),
        ds.schema,
        name=ds.name,
        provenance=ds.provenance,
    )


def _to_batched(ds: ScrubJayDataset) -> ScrubJayDataset:
    """Pivot a row dataset into one ColumnBatch per partition."""
    out = ds.with_rdd(
        ds.rdd.mapPartitions(
            lambda rows: [ColumnBatch.from_rows(rows)] if rows else []
        ),
        ds.schema,
        name=ds.name,
        provenance=ds.provenance,
    )
    out.batched = True
    return out


def _batched_leaf(base: ScrubJayDataset) -> ScrubJayDataset:
    """Batch-decode a catalog leaf for columnar execution.

    Source-backed ScanRDD leaves re-scan with ``batched=True`` — store
    segments decode straight into batches worker-side. Row-backed
    leaves (``register_rows``) pivot through ``from_rows`` once; the
    batched RDD is persisted and cached on the dataset so repeated
    plan executions amortize the decode.
    """
    source = getattr(base, "source", None)
    if source is not None and isinstance(base.rdd, ScanRDD):
        out = base.with_rdd(
            ScanRDD(
                base.ctx,
                source,
                base.rdd.columns,
                base.rdd.predicate,
                batched=True,
            ),
            base.schema,
            name=base.name,
            provenance=base.provenance,
        )
        out.source = source
        out.batched = True
        return out
    cached = getattr(base, "_columnar_leaf", None)
    if cached is not None:
        return cached
    out = _to_batched(base)
    out.rdd.persist()
    base._columnar_leaf = out
    return out


def _apply_scan(
    base: ScrubJayDataset, node: "ScanNode", batched: bool = False
) -> ScrubJayDataset:
    """Execute a ScanNode against its catalog dataset.

    Source-backed datasets (ingested via ``session.ingest()``) get a
    real pushed scan: a fresh :class:`~repro.rdd.rdd.ScanRDD` carrying
    the predicate/projection, so pruning happens in the storage layer.
    Datasets without a source (e.g. ``register_rows``) fall back to an
    equivalent lazy filter+project over their existing RDD.

    With ``batched=True`` (columnar execution) the pushed scan decodes
    into ColumnBatch elements; the no-source fallback runs its row
    filter/project and re-batches the result.
    """
    predicate = node.predicate if node.predicate else None
    columns = node.columns
    source = getattr(base, "source", None)
    if source is not None and isinstance(base.rdd, ScanRDD):
        merged = base.rdd.predicate
        if predicate is not None:
            merged = predicate.also(merged) if merged is None \
                else merged.also(predicate)
        cols = columns
        if cols is not None and base.rdd.columns is not None:
            cols = [c for c in cols if c in base.rdd.columns]
        elif cols is None:
            cols = base.rdd.columns
        rdd = ScanRDD(
            base.ctx, source, columns=cols, predicate=merged,
            batched=batched,
        )
    else:
        rdd = base.rdd
        if predicate is not None:
            rdd = rdd.filter(predicate.matches)
        if columns is not None:
            wanted = set(columns)
            rdd = rdd.map(
                lambda row: {k: v for k, v in row.items() if k in wanted}
            ).filter(bool)
    result = base.with_rdd(
        rdd,
        base.schema,
        name=f"{base.name}|scan",
        provenance={
            "op": "scan",
            "dataset": node.dataset_name,
            "predicate": predicate.to_json_dict() if predicate else None,
            "columns": list(columns) if columns is not None else None,
            "input": base.provenance,
        },
    )
    if batched:
        if source is not None and isinstance(result.rdd, ScanRDD):
            result.batched = True
        else:
            result = _to_batched(result)
    return result


class PlanNode:
    """Base node of a derivation DAG."""

    def children(self) -> List["PlanNode"]:
        return []

    def to_json_dict(self) -> dict:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Content hash — the key for the on-disk derivation cache, so
        identical sub-derivations issued by different analysts hit the
        same cache entry."""
        return content_hash(self.to_json_dict())

    def num_steps(self) -> int:
        """Number of derivation operations (loads are free)."""
        return sum(c.num_steps() for c in self.children())


class LoadNode(PlanNode):
    """Load a named dataset from the session catalog."""

    def __init__(self, dataset_name: str) -> None:
        self.dataset_name = dataset_name

    def to_json_dict(self) -> dict:
        return {"load": self.dataset_name}

    def label(self) -> str:
        return f"Load[{self.dataset_name}]"


class ScanNode(PlanNode):
    """Load a named dataset with predicates/projection pushed into the
    scan.

    Produced by the pushdown rewrite (:mod:`repro.core.pushdown`), not
    by the search: semantically it is ``Load`` + the filters it
    absorbed, executed inside the storage layer when the dataset is
    backed by a :class:`~repro.sources.base.DataSource` (zone-map and
    partition-key pruning apply), or as a plain filtered load when it
    is not. Like :class:`LoadNode` it is never entered into the
    derivation cache — it is the leaf read, and its output identity is
    carried by its fingerprint (dataset + predicate + columns), which
    keeps serve-layer result keys predicate-aware for free.
    """

    def __init__(
        self,
        dataset_name: str,
        predicate=None,  # ColumnPredicate | None
        columns: Optional[List[str]] = None,
    ) -> None:
        self.dataset_name = dataset_name
        self.predicate = predicate
        self.columns = sorted(columns) if columns is not None else None

    def to_json_dict(self) -> dict:
        out: dict = {"scan": {"dataset": self.dataset_name}}
        if self.predicate is not None and self.predicate:
            out["scan"]["predicate"] = self.predicate.to_json_dict()
        if self.columns is not None:
            out["scan"]["columns"] = list(self.columns)
        return out

    def label(self) -> str:
        parts = [self.dataset_name]
        if self.predicate is not None and self.predicate:
            parts.append(repr(self.predicate))
        if self.columns is not None:
            parts.append("cols=" + ",".join(self.columns))
        return f"Scan[{' | '.join(parts)}]"


class TransformNode(PlanNode):
    """Apply a transformation to one input plan."""

    def __init__(self, derivation: Transformation, input: PlanNode) -> None:
        self.derivation = derivation
        self.input = input

    def children(self) -> List[PlanNode]:
        return [self.input]

    def num_steps(self) -> int:
        return 1 + self.input.num_steps()

    def to_json_dict(self) -> dict:
        return {
            "transform": self.derivation.to_json_dict(),
            "input": self.input.to_json_dict(),
        }

    def label(self) -> str:
        return self.derivation.describe()


class CombineNode(PlanNode):
    """Apply a combination to two input plans."""

    def __init__(
        self, derivation: Combination, left: PlanNode, right: PlanNode
    ) -> None:
        self.derivation = derivation
        self.left = left
        self.right = right

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def num_steps(self) -> int:
        return 1 + self.left.num_steps() + self.right.num_steps()

    def to_json_dict(self) -> dict:
        return {
            "combine": self.derivation.to_json_dict(),
            "left": self.left.to_json_dict(),
            "right": self.right.to_json_dict(),
        }

    def label(self) -> str:
        return self.derivation.describe()


class DerivationPlan:
    """A complete, executable, serializable derivation sequence."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self,
        catalog: Dict[str, ScrubJayDataset],
        dictionary: SemanticDictionary,
        cache: Optional["DerivationCache"] = None,  # noqa: F821
        tracer=None,
        measure: bool = False,
        columnar: bool = False,
        columnar_off: Sequence[str] = (),
    ) -> ScrubJayDataset:
        """Run the pipeline against actual data.

        ``catalog`` maps dataset names to loaded datasets. When a
        :class:`~repro.core.cache.DerivationCache` is supplied,
        intermediate results are reused/stored by plan fingerprint.

        ``tracer`` (an enabled :class:`~repro.obs.Tracer`) produces
        one ``plan-node`` span per node, mirroring the plan tree, with
        the cache outcome attached; stage/task spans from the RDD
        scheduler nest under the node whose action materialized them.
        ``measure`` additionally forces per-node materialization and
        attaches measured ``rows_out``/``approx_bytes`` counters —
        EXPLAIN ANALYZE mode. Ordinary runs must leave it off: it
        defeats lazy whole-plan pipelining.

        ``columnar`` executes the plan over ColumnBatch elements:
        leaves decode into batches, operators that expose an
        ``apply_batched`` kernel run vectorized, and everything else
        falls back per-operator (explode to rows, apply, re-batch).
        Each choice is recorded as a
        :class:`~repro.rdd.stats.KernelDecision` on the context's
        execution report. Results are identical either way.
        ``columnar_off`` names operators forced straight to the row
        path (no kernel attempt) — the tuner populates it for
        operators whose kernels keep declining.
        """
        return self._execute(
            self.root, catalog, dictionary, cache, tracer, measure,
            columnar, columnar_off,
        )

    def _execute(
        self,
        node: PlanNode,
        catalog: Dict[str, ScrubJayDataset],
        dictionary: SemanticDictionary,
        cache,
        tracer=None,
        measure: bool = False,
        columnar: bool = False,
        columnar_off: Sequence[str] = (),
    ) -> ScrubJayDataset:
        if tracer is not None and tracer.enabled:
            with tracer.span(
                node.label(), kind="plan-node", label=node.label()
            ) as span:
                result = self._execute_node(
                    node, catalog, dictionary, cache, tracer, measure,
                    span, columnar, columnar_off,
                )
                if measure:
                    st = result.stats()
                    span.add("rows_out", st.total_rows)
                    span.add("approx_bytes", st.approx_bytes)
                    if getattr(result, "batched", False):
                        # physical batch count behind the logical rows
                        span.add("batches", result.rdd.count())
                    # the stats() call above materialized the scan, so
                    # its physical read counters are available now
                    scan = getattr(result.rdd, "last_scan", None)
                    if scan:
                        for key, value in scan.items():
                            span.add(f"scan.{key}", value)
                return result
        return self._execute_node(
            node, catalog, dictionary, cache, tracer, measure, None,
            columnar, columnar_off,
        )

    @staticmethod
    def _record_kernel(ds, op, choice, reason, span) -> None:
        report = getattr(ds.ctx, "report", None)
        if report is not None:
            report.add(KernelDecision(op=op, choice=choice, reason=reason))
        if span is not None:
            span.set("kernel", choice)

    def _execute_node(
        self,
        node: PlanNode,
        catalog: Dict[str, ScrubJayDataset],
        dictionary: SemanticDictionary,
        cache,
        tracer,
        measure: bool,
        span,
        columnar: bool = False,
        columnar_off: Sequence[str] = (),
    ) -> ScrubJayDataset:
        if isinstance(node, LoadNode):
            try:
                base = catalog[node.dataset_name]
            except KeyError:
                raise PipelineError(
                    f"plan loads unknown dataset {node.dataset_name!r}"
                ) from None
            return _batched_leaf(base) if columnar else base

        if isinstance(node, ScanNode):
            try:
                base = catalog[node.dataset_name]
            except KeyError:
                raise PipelineError(
                    f"plan scans unknown dataset {node.dataset_name!r}"
                ) from None
            return _apply_scan(base, node, batched=columnar)

        if cache is not None:
            hit = cache.get(node.fingerprint())
            if hit is not None:
                if span is not None:
                    span.set("cache", "hit")
                ctx = next(iter(catalog.values())).ctx
                return hit.to_dataset(ctx)
            if span is not None:
                span.set("cache", "miss")

        if isinstance(node, TransformNode):
            upstream = self._execute(
                node.input, catalog, dictionary, cache, tracer, measure,
                columnar, columnar_off,
            )
            if columnar:
                result = self._transform_columnar(
                    node, upstream, dictionary, span, columnar_off
                )
            else:
                result = node.derivation.apply(upstream, dictionary)
        elif isinstance(node, CombineNode):
            left = self._execute(
                node.left, catalog, dictionary, cache, tracer, measure,
                columnar, columnar_off,
            )
            right = self._execute(
                node.right, catalog, dictionary, cache, tracer, measure,
                columnar, columnar_off,
            )
            if columnar:
                result = self._combine_columnar(
                    node, left, right, dictionary, span, columnar_off
                )
            else:
                result = node.derivation.apply(left, right, dictionary)
        else:
            raise PipelineError(f"unknown plan node {type(node).__name__}")

        if cache is not None:
            cache.put(node.fingerprint(), result)
        return result

    def _transform_columnar(
        self, node: TransformNode, upstream, dictionary, span,
        columnar_off: Sequence[str] = (),
    ) -> ScrubJayDataset:
        """One transformation under columnar execution: try the batch
        kernel, fall back to explode -> row apply -> re-batch."""
        derivation = node.derivation
        kernel = getattr(derivation, "apply_batched", None)
        if derivation.op_name in columnar_off:
            reason = "tuned-off: operator gated off the columnar path"
        elif kernel is None:
            reason = "operator has no batch kernel"
        elif not getattr(upstream, "batched", False):
            reason = "upstream is row-shaped"
        else:
            result = kernel(upstream, dictionary)
            if result is not None:
                self._record_kernel(
                    result, derivation.op_name, "batch",
                    "vectorized kernel", span,
                )
                return result
            reason = "kernel declined the input"
        result = _to_batched(
            derivation.apply(_explode(upstream), dictionary)
        )
        self._record_kernel(
            result, derivation.op_name, "row-fallback", reason, span
        )
        return result

    def _combine_columnar(
        self, node: CombineNode, left, right, dictionary, span,
        columnar_off: Sequence[str] = (),
    ) -> ScrubJayDataset:
        """One combination under columnar execution (same contract as
        :meth:`_transform_columnar`, two inputs)."""
        derivation = node.derivation
        kernel = getattr(derivation, "apply_batched", None)
        if derivation.op_name in columnar_off:
            reason = "tuned-off: operator gated off the columnar path"
        elif kernel is None:
            reason = "operator has no batch kernel"
        else:
            result = kernel(left, right, dictionary)
            if result is not None:
                self._record_kernel(
                    result, derivation.op_name, "batch",
                    "vectorized hash join", span,
                )
                return result
            reason = "kernel declined the input"
        result = _to_batched(
            derivation.apply(_explode(left), _explode(right), dictionary)
        )
        self._record_kernel(
            result, derivation.op_name, "row-fallback", reason, span
        )
        return result

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def derive_schema(
        self,
        catalog_schemas: Dict[str, "Schema"],  # noqa: F821
        dictionary: SemanticDictionary,
    ) -> "Schema":  # noqa: F821
        """Schema-level execution: the output schema this plan would
        produce, computed without touching any data (the same
        near-constant-time path the engine plans with)."""

        def walk(node: PlanNode):
            if isinstance(node, (LoadNode, ScanNode)):
                # a scan filters/projects rows but (by design) leaves
                # the schema intact, so joins planned against the
                # catalog schema stay valid on pushed plans
                try:
                    return catalog_schemas[node.dataset_name]
                except KeyError:
                    raise PipelineError(
                        f"plan loads unknown dataset "
                        f"{node.dataset_name!r}"
                    ) from None
            if isinstance(node, TransformNode):
                return node.derivation.derive_schema(
                    walk(node.input), dictionary
                )
            if isinstance(node, CombineNode):
                return node.derivation.derive_schema(
                    walk(node.left), walk(node.right), dictionary
                )
            raise PipelineError(f"unknown plan node {type(node).__name__}")

        return walk(self.root)

    def num_steps(self) -> int:
        return self.root.num_steps()

    def dataset_names(self) -> List[str]:
        """Distinct catalog dataset names this plan reads (its leaf
        Load/Scan inputs), in first-appearance order. Serve-layer
        result caching keys dependency tracking on this — a feed
        advance on one of these names invalidates the cached answer."""
        out: List[str] = []
        seen = set()

        def walk(node: PlanNode) -> None:
            if isinstance(node, (LoadNode, ScanNode)):
                if node.dataset_name not in seen:
                    seen.add(node.dataset_name)
                    out.append(node.dataset_name)
            for c in node.children():
                walk(c)

        walk(self.root)
        return out

    def operations(self) -> List[str]:
        """Operation names, leaves-first (execution order)."""
        out: List[str] = []

        def walk(node: PlanNode) -> None:
            for c in node.children():
                walk(c)
            if isinstance(node, TransformNode):
                out.append(node.derivation.op_name)
            elif isinstance(node, CombineNode):
                out.append(node.derivation.op_name)
            elif isinstance(node, ScanNode):
                out.append(f"scan:{node.dataset_name}")
            else:
                out.append(f"load:{node.dataset_name}")  # type: ignore[attr-defined]

        walk(self.root)
        return out

    def describe(self) -> str:
        """Render the derivation graph, root first (like Figures 5/7)."""
        lines: List[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + node.label())
            for c in node.children():
                walk(c, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def fingerprint(self) -> str:
        return self.root.fingerprint()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.root.to_json_dict(), indent=indent)

    @staticmethod
    def from_json(
        text: str, registry: DerivationRegistry
    ) -> "DerivationPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PipelineError(f"malformed plan JSON: {exc}") from exc
        return DerivationPlan(_node_from_json(data, registry))

    def __repr__(self) -> str:
        return f"DerivationPlan({self.num_steps()} steps)"


def _node_from_json(data: dict, registry: DerivationRegistry) -> PlanNode:
    if not isinstance(data, dict):
        raise PipelineError(f"plan node must be an object, got {data!r}")
    if "load" in data:
        return LoadNode(data["load"])
    if "scan" in data:
        spec = data["scan"]
        predicate = None
        if spec.get("predicate"):
            predicate = ColumnPredicate.from_json_dict(spec["predicate"])
        return ScanNode(
            spec["dataset"], predicate, spec.get("columns")
        )
    if "transform" in data:
        derivation = registry.instantiate(data["transform"])
        if not isinstance(derivation, Transformation):
            raise PipelineError(
                f"{derivation.op_name!r} is not a transformation"
            )
        return TransformNode(
            derivation, _node_from_json(data["input"], registry)
        )
    if "combine" in data:
        derivation = registry.instantiate(data["combine"])
        if not isinstance(derivation, Combination):
            raise PipelineError(
                f"{derivation.op_name!r} is not a combination"
            )
        return CombineNode(
            derivation,
            _node_from_json(data["left"], registry),
            _node_from_json(data["right"], registry),
        )
    raise PipelineError(
        f"plan node needs one of load/transform/combine: {sorted(data)}"
    )
