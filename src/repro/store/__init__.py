"""A small wide-column NoSQL store (the Cassandra stand-in).

The paper's facility streams monitoring data into a Cassandra cluster;
ScrubJay's NoSQL data wrappers read from it. This package provides the
same data model at laptop scale: keyspaces contain tables, a table has
a partition key (rows sharing it live together) and clustering columns
(rows within a partition are kept sorted by them), writes land in an
in-memory memtable that flushes to immutable on-disk segments, and
reads merge memtable + segments.
"""

from repro.store.wide_column import WideColumnStore, Table

__all__ = ["WideColumnStore", "Table"]
