"""Figure 7: the derivation sequence for the active-frequency query.

Asserts the engine reproduces the structure of the paper's graph for
the query {CPUs → active frequency + CPU/node counter rates} over
PAPI, IPMI, and the static CPU specifications: two count-rate
derivations (one per counter stream), a natural join pulling in the
rated frequency from the CPU specs, the active-frequency derivation,
and a second join relating the CPU-level and node-level streams.

Fidelity note (also in EXPERIMENTS.md): the paper's second join is
drawn as a natural join because its rate datasets omit time; ours
keeps the time domain (Figure 6 plots need it), so the cross-stream
join is the windowed interpolation join. Step count and operation
roles match.
"""

from __future__ import annotations

import pytest

from repro import DerivationEngine, EngineConfig, Query, default_dictionary
from repro.datagen.dat import (
    CPU_SPEC_SCHEMA,
    IPMI_SCHEMA,
    PAPI_SCHEMA,
    ensure_semantics,
)

CATALOG = {
    "papi": PAPI_SCHEMA,
    "cpu_specs": CPU_SPEC_SCHEMA,
    "ipmi": IPMI_SCHEMA,
}

QUERY = Query.of(
    domains=["cpus"],
    values=["active frequency", "instructions per time",
            "memory reads per time"],
)


@pytest.fixture(scope="module")
def engine():
    d = default_dictionary()
    ensure_semantics(d)
    return DerivationEngine(d, config=EngineConfig(interpolation_window=8.0))


def test_fig7_sequence_structure(benchmark, engine):
    plan = benchmark(engine.solve, CATALOG, QUERY)

    ops = [op for op in plan.operations() if not op.startswith("load")]
    # two rate derivations — one per counter stream (Figure 7's two
    # "Derive Count Rate" boxes)
    assert ops.count("derive_rate") == 2
    # the expert derivation appears exactly once, after a join made the
    # rated frequency available
    assert ops.count("derive_active_frequency") == 1
    # two combinations: specs ⋈ CPU rates, and CPU-level × node-level
    joins = [op for op in ops if op.endswith("_join")]
    assert len(joins) == 2
    assert "natural_join" in joins
    assert plan.num_steps() == 5

    loads = {op for op in plan.operations() if op.startswith("load")}
    assert loads == {"load:papi", "load:cpu_specs", "load:ipmi"}

    # ordering: at least one rate derivation precedes the natural join
    # with the specs, which precedes the active-frequency derivation
    assert ops.index("derive_rate") < ops.index("natural_join")
    assert ops.index("natural_join") < ops.index("derive_active_frequency")

    print("\n" + plan.describe())


def test_fig7_raw_counters_never_window_joined(benchmark, engine):
    """The paper's motivation for the rate derivation: cumulative
    counters reset arbitrarily, so no valid plan may attach them across
    a time window. Every interpolation join in the plan must sit above
    a derive_rate on the counter side."""
    plan = benchmark(engine.solve, CATALOG, QUERY)
    from repro.core.pipeline import CombineNode, PlanNode

    def counters_below(node: PlanNode, acc):
        # collect ops of the subtree
        for child in node.children():
            counters_below(child, acc)
        label = node.label()
        acc.append(label)
        return acc

    def walk(node: PlanNode):
        if isinstance(node, CombineNode) and \
                node.derivation.op_name == "interpolation_join":
            right_ops = counters_below(node.right, [])
            if any(l.startswith("Load[papi]") or l.startswith("Load[ipmi]")
                   for l in right_ops):
                assert any("derive_rate" in l for l in right_ops), (
                    "raw counters reached an interpolation join"
                )
        for child in node.children():
            walk(child)

    walk(plan.root)
