"""Measure/Grain semantics and raw-route metric evaluation."""

from __future__ import annotations

import pytest

from repro import Query
from repro.core.query import Grain, Measure, QueryBuilder
from repro.errors import QueryError, QueryValidationError
from repro.metrics.compute import rebucket_partials
from repro.units.temporal import Timestamp

from tests.metrics.conftest import (
    assert_groups_equal,
    close,
    manual_groups,
    power_rows,
)


# ----------------------------------------------------------------------
# Measure / Grain value objects
# ----------------------------------------------------------------------

def test_measure_rejects_unknown_how():
    with pytest.raises(QueryError, match="unknown measure aggregation"):
        Measure("power", "median")


def test_measure_key_is_stable():
    assert Measure("power", "p95").key() == "power_p95"
    assert Measure("power", "mean", window="15m").key() == \
        "power_mean_w900"


def test_grain_parses_duration_spellings():
    assert Grain.of("1h").seconds == 3600.0
    assert Grain.of("15m").seconds == 900.0
    assert Grain.of(60).seconds == 60.0
    with pytest.raises(QueryError, match="cannot parse duration"):
        Grain.of("fortnight")
    with pytest.raises(QueryError, match="positive"):
        Grain.of(0)


def test_grain_divides_requires_exact_nesting():
    assert Grain.of("30m").divides(Grain.of("1h"))
    assert Grain.of("1h").divides(Grain.of("1h"))
    assert not Grain.of("45m").divides(Grain.of("1h"))
    assert not Grain.of("2h").divides(Grain.of("1h"))  # coarser
    assert not Grain.of("30m").divides(Grain.of("1h", "other"))


# ----------------------------------------------------------------------
# builder validation (QueryValidationError)
# ----------------------------------------------------------------------

def test_builder_metric_terms_build():
    q = (QueryBuilder()
         .across("time")
         .measure("power", "mean")
         .per("racks")
         .grain("1h")
         .build())
    assert q.is_metric
    # per dims join the domains; measure dims join the values
    assert set(q.domains) >= {"racks", "time"}
    assert "power" in q.value_dimensions()
    base = q.base()
    assert not base.is_metric
    assert base.measures == ()


def test_per_and_grain_alone_provide_the_domains():
    q = (QueryBuilder()
         .measure("power", "max")
         .per("racks")
         .grain("1h")
         .build())
    assert set(q.domains) == {"racks", "time"}


def test_per_without_measure_is_rejected():
    with pytest.raises(QueryValidationError, match="no .measure"):
        QueryBuilder().across("racks").value("power").per("racks").build()


def test_windowed_measure_without_grain_is_rejected():
    with pytest.raises(QueryValidationError, match="time grain"):
        (QueryBuilder()
         .measure("power", "mean", window="30m")
         .per("racks")
         .build())


def test_empty_builder_is_rejected_with_clause():
    with pytest.raises(QueryValidationError) as e:
        QueryBuilder().value("power").build()
    assert e.value.clause == "across"
    with pytest.raises(QueryValidationError) as e:
        QueryBuilder().across("racks").build()
    assert e.value.clause == "value"


def test_metric_query_round_trips_through_json():
    q = (QueryBuilder()
         .measure("power", "p95")
         .measure("power", "mean", window="30m")
         .per("racks")
         .grain("15m")
         .build())
    assert Query.from_json_dict(q.to_json_dict()) == q


def test_plain_query_json_has_no_metric_keys():
    q = QueryBuilder().across("racks").value("power").build()
    assert set(q.to_json_dict()) == {"domains", "values"}


# ----------------------------------------------------------------------
# rebucket_partials
# ----------------------------------------------------------------------

def test_rebucket_merges_into_coarser_buckets():
    parts = {
        (1, Timestamp(0.0)): (10.0, 1),
        (1, Timestamp(1800.0)): (20.0, 1),
        (2, Timestamp(1800.0)): (5.0, 1),
    }
    out = rebucket_partials(parts, Grain.of("1h"), "mean")
    assert out == {
        (1, Timestamp(0.0)): (30.0, 2),
        (2, Timestamp(0.0)): (5.0, 1),
    }


def test_rebucket_is_idempotent_on_bucketed_keys():
    parts = {(1, Timestamp(3600.0)): (10.0, 2)}
    once = rebucket_partials(parts, Grain.of("1h"), "mean")
    twice = rebucket_partials(once, Grain.of("1h"), "mean")
    assert once == twice == parts


def test_rebucket_identity_without_grain():
    parts = {(1, Timestamp(17.0)): 4.0}
    assert rebucket_partials(parts, None, "sum") is parts


# ----------------------------------------------------------------------
# raw-route evaluation through the session
# ----------------------------------------------------------------------

@pytest.mark.parametrize("how", ["mean", "sum", "min", "max", "count"])
def test_metric_answer_matches_manual_aggregation(power_session, how):
    ans = power_session.ask(
        power_session.query()
        .measure("power", how).per("racks").grain("1h")
    )
    assert ans.decision.route == "raw"
    want = manual_groups(power_rows(), 3600.0, how)
    got = {k: v[f"power_{how}"] for k, v in ans.groups.items()}
    assert_groups_equal(got, want)


def test_percentiles_use_linear_interpolation(power_session):
    ans = power_session.ask(
        power_session.query()
        .measure("power", "p50").measure("power", "p95")
        .per("racks").grain("1h")
    )

    def pct(vals, q):
        s = sorted(vals)
        pos = q * (len(s) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (s[hi] - s[lo]) * (pos - lo)

    buckets = {}
    for row in power_rows():
        b = (row["time"].epoch // 3600.0) * 3600.0
        buckets.setdefault((row["rack"], Timestamp(b)), []).append(
            row["power"]
        )
    for k, vals in buckets.items():
        assert close(ans.groups[k]["power_p50"], pct(vals, 0.50))
        assert close(ans.groups[k]["power_p95"], pct(vals, 0.95))


def test_windowed_measure_covers_trailing_buckets(power_session):
    # window = 2 buckets: each bucket averages itself + the previous one
    ans = power_session.ask(
        power_session.query()
        .measure("power", "mean", window="2h").per("racks").grain("1h")
    )
    per_bucket = manual_groups(power_rows(), 3600.0, "sum")
    counts = manual_groups(power_rows(), 3600.0, "count")
    for (rack, t), _ in per_bucket.items():
        prev = (rack, Timestamp(t.epoch - 3600.0))
        total = per_bucket[(rack, t)] + per_bucket.get(prev, 0.0)
        n = counts[(rack, t)] + counts.get(prev, 0)
        got = ans.groups[(rack, t)]["power_mean_w7200"]
        assert close(got, total / n), (rack, t)


def test_metric_answer_rows_and_series(power_session):
    ans = power_session.ask(
        power_session.query()
        .measure("power", "mean").per("racks").grain("1h")
    )
    assert ans.group_dims == ("racks", "time")
    rows = ans.rows()
    assert len(rows) == len(ans)
    assert {"racks", "time", "power_mean"} <= set(rows[0])
    series = ans.series()
    assert set(series) == {(r,) for r in range(3)}
    for pts in series.values():
        assert [p[0].epoch for p in pts] == [0.0, 3600.0]


def test_measure_without_grain_gives_single_bucketless_groups(
    power_session,
):
    ans = power_session.ask(
        power_session.query().measure("power", "max").per("racks")
    )
    assert ans.group_dims == ("racks",)
    want = {}
    for row in power_rows():
        k = (row["rack"],)
        want[k] = max(want.get(k, float("-inf")), row["power"])
    got = {k: v["power_max"] for k, v in ans.groups.items()}
    assert_groups_equal(got, want)
