"""Failure propagation through the lazy pipeline, on every executor."""

import pytest

from repro.rdd import SJContext


class Boom(RuntimeError):
    pass


def _explode_on(value):
    def fn(x):
        if x == value:
            raise Boom(f"poisoned element {x}")
        return x

    return fn


@pytest.mark.parametrize("kind", ["serial", "threads", "processes"])
def test_narrow_stage_failure_propagates(kind):
    with SJContext(executor=kind, num_workers=2) as ctx:
        r = ctx.parallelize(range(100), 4).map(_explode_on(42))
        with pytest.raises(Exception, match="poisoned element 42"):
            r.collect()


@pytest.mark.parametrize("kind", ["serial", "processes"])
def test_shuffle_map_side_failure_propagates(kind):
    with SJContext(executor=kind, num_workers=2) as ctx:
        r = (
            ctx.parallelize(range(50), 4)
            .map(lambda x: (x % 5, x))
            .mapValues(_explode_on(33))
            .reduceByKey(lambda a, b: a + b)
        )
        with pytest.raises(Exception, match="poisoned element 33"):
            r.collect()


def test_reduce_side_failure_propagates(ctx):
    def bad_merge(a, b):
        raise Boom("merge failed")

    r = ctx.parallelize([(1, 1), (1, 2)], 2).reduceByKey(bad_merge)
    with pytest.raises(Boom):
        r.collect()


def test_failure_does_not_poison_context(ctx):
    r = ctx.parallelize(range(10), 2).map(_explode_on(3))
    with pytest.raises(Boom):
        r.collect()
    # the context keeps working for subsequent healthy jobs
    assert ctx.parallelize(range(10), 2).sum() == 45


def test_process_pool_survives_task_failure():
    with SJContext(executor="processes", num_workers=2) as ctx:
        with pytest.raises(Exception, match="poisoned"):
            ctx.parallelize(range(10), 2).map(_explode_on(5)).collect()
        assert ctx.parallelize(range(10), 2).sum() == 45


def test_failure_in_derivation_pipeline(ctx, dictionary):
    """A failing row inside a derivation surfaces with its message."""
    from repro.core.dataset import ScrubJayDataset
    from repro.core.semantics import Schema, domain

    schema = Schema({
        "nodes": domain("compute nodes", "list<identifier>"),
    })
    # a non-iterable value crashes the explode at execution time
    ds = ScrubJayDataset.from_rows(
        ctx, [{"nodes": [1, 2]}, {"nodes": 7}], schema, "bad"
    )
    from repro.core.transformations import ExplodeDiscrete

    exploded = ExplodeDiscrete("nodes").apply(ds, dictionary)
    with pytest.raises(TypeError):
        exploded.collect()


def test_cached_rdd_not_poisoned_by_downstream_failure(ctx):
    base = ctx.parallelize(range(10), 2).map(lambda x: x * 2).persist()
    bad = base.map(_explode_on(6))
    with pytest.raises(Boom):
        bad.collect()
    assert base.is_cached
    assert base.sum() == 90
