"""NoSQL (wide-column store) data wrapper and unwrapper.

Reads/writes :class:`repro.store.WideColumnStore` tables — the
Cassandra stand-in where the simulated facility's continuously
ingested monitoring streams (LDMS in the paper) land. Rows in the
store already hold typed values, so no textual codec is involved;
fields absent from the schema are dropped on load.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.store.wide_column import WideColumnStore
from repro.wrappers.base import DataWrapper, Unwrapper


class NoSQLWrapper(DataWrapper):
    """Deprecated shim over
    :class:`~repro.sources.table_source.TableSource`.

    Materializes every store partition on the driver, exactly like the
    original wrapper did — use ``session.ingest().table(...)`` for
    lazy per-partition scans with partition-key and zone-map pruning.
    """

    def __init__(
        self,
        store: WideColumnStore,
        keyspace: str,
        table: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        name: Optional[str] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        warnings.warn(
            "NoSQLWrapper is deprecated; use "
            "session.ingest().table(store, keyspace, table, schema) "
            "for a lazy, pruned scan",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            schema, dictionary, name or f"{keyspace}.{table}", num_partitions
        )
        self.store = store
        self.keyspace = keyspace
        self.table = table
        # deferred: repro.sources imports this package's codec module
        from repro.sources.table_source import TableSource

        self._source = TableSource(
            store, keyspace, table, schema, name=self.name
        )

    def rows(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for i in range(self._source.num_partitions()):
            out.extend(self._source.read_partition(i))
        return out


class NoSQLUnwrapper(Unwrapper):
    """Dump a dataset into a (new) wide-column table."""

    def __init__(
        self,
        store: WideColumnStore,
        keyspace: str,
        table: str,
        partition_key: Sequence[str],
        clustering: Sequence[str] = (),
    ) -> None:
        self.store = store
        self.keyspace = keyspace
        self.table = table
        self.partition_key = tuple(partition_key)
        self.clustering = tuple(clustering)

    def save(self, dataset: ScrubJayDataset) -> str:
        table = self.store.create_table(
            self.keyspace,
            self.table,
            self.partition_key,
            self.clustering,
        )
        table.insert_many(dataset.collect())
        table.flush()
        return f"{self.keyspace}.{self.table}"
