"""Global sorting and persistence semantics."""

import pytest


def test_sortBy_ascending(ctx):
    data = [5, 3, 8, 1, 9, 2, 7]
    r = ctx.parallelize(data, 3).sortBy(lambda x: x)
    assert r.collect() == sorted(data)


def test_sortBy_descending(ctx):
    data = list(range(50))
    r = ctx.parallelize(data, 4).sortBy(lambda x: x, ascending=False)
    assert r.collect() == sorted(data, reverse=True)


def test_sortBy_custom_key(ctx):
    data = ["ccc", "a", "bb"]
    assert ctx.parallelize(data).sortBy(len).collect() == ["a", "bb", "ccc"]


def test_sortByKey(ctx):
    data = [(3, "c"), (1, "a"), (2, "b")]
    assert ctx.parallelize(data, 2).sortByKey().collect() == sorted(data)


def test_sortBy_empty(ctx):
    assert ctx.emptyRDD().sortBy(lambda x: x).collect() == []


def test_sortBy_large_spread_over_partitions(ctx):
    import random

    rng = random.Random(3)
    data = [rng.randrange(10**6) for _ in range(2000)]
    r = ctx.parallelize(data, 8).sortBy(lambda x: x, num_partitions=4)
    assert r.collect() == sorted(data)
    assert r.getNumPartitions() == 4


def test_sortBy_duplicate_keys_kept(ctx):
    data = [2, 1, 2, 1, 2]
    assert ctx.parallelize(data, 2).sortBy(lambda x: x).collect() == \
        [1, 1, 2, 2, 2]


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

def test_persist_avoids_recompute(ctx):
    calls = []

    def trace(x):
        calls.append(x)
        return x * 2

    r = ctx.parallelize(range(5), 2).map(trace).persist()
    assert r.collect() == [0, 2, 4, 6, 8]
    first = len(calls)
    assert r.collect() == [0, 2, 4, 6, 8]
    assert len(calls) == first  # no extra calls on second action


def test_unpersist_recomputes(ctx):
    calls = []

    def trace(x):
        calls.append(x)
        return x

    r = ctx.parallelize(range(3), 1).map(trace).persist()
    r.collect()
    r.unpersist()
    r.collect()
    assert len(calls) == 6


def test_persist_mid_chain_caches_prefix(ctx):
    calls = []

    def trace(x):
        calls.append(x)
        return x

    base = ctx.parallelize(range(4), 2).map(trace).persist()
    a = base.map(lambda x: x + 1)
    b = base.map(lambda x: x - 1)
    a.collect()
    b.collect()
    assert len(calls) == 4  # prefix computed once, reused by both


def test_is_cached_flag(ctx):
    r = ctx.parallelize([1]).persist()
    assert not r.is_cached
    r.collect()
    assert r.is_cached
