"""ScrubJay (SC'17) reproduction — semantic derivation of relations
across heterogeneous HPC performance data.

Public API highlights:

- :class:`~repro.session.ScrubJaySession` — the analyst entry point;
- :class:`~repro.core.semantics.Schema` /
  :class:`~repro.core.semantics.SemanticType` — data semantics;
- :class:`~repro.core.query.Query` — logical queries over dimensions;
- :class:`~repro.core.dataset.ScrubJayDataset` — annotated distributed
  datasets on the :mod:`repro.rdd` engine;
- :class:`~repro.core.query.Measure` / :class:`~repro.core.query.Grain`
  — the semantic metrics layer (:mod:`repro.metrics`), with
  materialized :class:`~repro.metrics.rollup.Rollup` tables;
- :mod:`repro.sources` — lazy partitioned ingestion
  (``session.ingest().csv/sql/table/rows``);
- :mod:`repro.wrappers` — CSV/SQL/NoSQL unwrappers (export back to
  storage formats);
- :mod:`repro.datagen` — the synthetic HPC facility used by the case
  studies and benchmarks.
"""

from repro.session import ScrubJaySession
from repro.config import (
    KNOBS,
    ServeConfig,
    TuningProfile,
    diff as config_diff,
    knob_table,
)
from repro.tuning import Tuner, TuningDecision
from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType
from repro.core.dictionary import SemanticDictionary, default_dictionary
from repro.core.dataset import ScrubJayDataset
from repro.core.query import FilterTerm, Grain, Measure, Query, QueryBuilder
from repro.core.answer import Answer
from repro.sources import (
    ColumnPredicate,
    CSVSource,
    DataSource,
    IngestBuilder,
    RowsSource,
    SQLSource,
    TableSource,
)
from repro.core.engine import DerivationEngine, EngineConfig
from repro.core.pipeline import DerivationPlan
from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    to_chrome_trace,
    to_json_tree,
    to_prometheus,
)
from repro.rdd import (
    AdaptiveConfig,
    ExecutionReport,
    FaultInjectingExecutor,
    RetryPolicy,
    SJContext,
)
from repro.serve import (
    QueryClient,
    QueryServer,
    QueryService,
    ServiceSnapshot,
)
from repro.sources.feed_source import FeedSource
from repro.stream import DeltaPlan, Feed, FeedAdvance
from repro.metrics import MetricAnswer, Rollup
from repro.errors import (
    ConfigError,
    FeedError,
    FeedRewoundError,
    QueryTimeoutError,
    QueryValidationError,
    ScrubJayError,
    ServiceOverloadError,
    SourceError,
    TaskError,
    UnsupportedOpError,
    WrapperError,
)
from repro.units import Quantity, Timestamp, TimeSpan

__version__ = "1.0.0"

__all__ = [
    "ScrubJaySession",
    "TuningProfile",
    "ServeConfig",
    "KNOBS",
    "config_diff",
    "knob_table",
    "Tuner",
    "TuningDecision",
    "ConfigError",
    "DOMAIN",
    "VALUE",
    "Schema",
    "SemanticType",
    "SemanticDictionary",
    "default_dictionary",
    "ScrubJayDataset",
    "Query",
    "QueryBuilder",
    "FilterTerm",
    "Measure",
    "Grain",
    "MetricAnswer",
    "Rollup",
    "Answer",
    "DataSource",
    "IngestBuilder",
    "ColumnPredicate",
    "CSVSource",
    "SQLSource",
    "TableSource",
    "RowsSource",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "to_json_tree",
    "to_chrome_trace",
    "to_prometheus",
    "DerivationEngine",
    "EngineConfig",
    "DerivationPlan",
    "SJContext",
    "RetryPolicy",
    "FaultInjectingExecutor",
    "AdaptiveConfig",
    "ExecutionReport",
    "QueryService",
    "QueryServer",
    "QueryClient",
    "ServiceSnapshot",
    "Feed",
    "FeedAdvance",
    "FeedSource",
    "DeltaPlan",
    "FeedError",
    "FeedRewoundError",
    "UnsupportedOpError",
    "ScrubJayError",
    "ServiceOverloadError",
    "QueryTimeoutError",
    "QueryValidationError",
    "TaskError",
    "WrapperError",
    "SourceError",
    "Quantity",
    "Timestamp",
    "TimeSpan",
    "__version__",
]
