"""NoSQL (wide-column store) unwrapper.

Writes :class:`repro.store.WideColumnStore` tables — the Cassandra
stand-in where the simulated facility's continuously ingested
monitoring streams (LDMS in the paper) land. Reading them back goes
through ``session.ingest().table(...)``
(:mod:`repro.sources.table_source`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dataset import ScrubJayDataset
from repro.store.wide_column import WideColumnStore
from repro.wrappers.base import Unwrapper


class NoSQLUnwrapper(Unwrapper):
    """Dump a dataset into a (new) wide-column table."""

    def __init__(
        self,
        store: WideColumnStore,
        keyspace: str,
        table: str,
        partition_key: Sequence[str],
        clustering: Sequence[str] = (),
    ) -> None:
        self.store = store
        self.keyspace = keyspace
        self.table = table
        self.partition_key = tuple(partition_key)
        self.clustering = tuple(clustering)

    def save(self, dataset: ScrubJayDataset) -> str:
        table = self.store.create_table(
            self.keyspace,
            self.table,
            self.partition_key,
            self.clustering,
        )
        table.insert_many(dataset.collect())
        table.flush()
        return f"{self.keyspace}.{self.table}"
