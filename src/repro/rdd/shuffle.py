"""Shuffle machinery: portable hashing and bucket exchange.

A shuffle repartitions data by key between two stages. The map-side
task assigns every record to an output bucket; the driver regroups
buckets (standing in for the network exchange between cluster nodes);
the reduce-side task merges each bucket's records.

Bucket assignment must be *consistent across worker processes*.
Python's builtin ``hash`` is salted per interpreter, so we provide
:func:`portable_hash`, a deterministic recursive hash over the key
types that appear in ScrubJay join keys (strings, numbers, bools,
None, and tuples thereof).
"""

from __future__ import annotations

import zlib
from typing import Any


def portable_hash(key: Any) -> int:
    """Deterministic, process-independent hash for shuffle keys."""
    if key is None:
        return 0x3070
    if isinstance(key, bool):
        return 0x9E37 + int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, float):
        # floats equal to ints must hash equal to them (dict semantics)
        if key.is_integer():
            return int(key)
        return zlib.crc32(repr(key).encode("utf-8"))
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = (h * 1000003) ^ portable_hash(item)
            h &= 0xFFFFFFFFFFFF
        return h
    if isinstance(key, frozenset):
        h = 0x1111
        for item in sorted(portable_hash(i) for i in key):
            h = (h * 31 + item) & 0xFFFFFFFFFFFF
        return h
    # Fall back to the object's own (possibly salted) hash; only safe
    # for single-process executors, so prefer primitive keys.
    return hash(key)


def hash_bucket(key: Any, num_buckets: int) -> int:
    """Map ``key`` to one of ``num_buckets`` output partitions."""
    return portable_hash(key) % num_buckets
