"""Deterministic content hashing.

The derivation cache (paper §5.4) keys intermediate results by the
*content* of the derivation subtree that produced them, so two analysts
issuing derivation sequences that share an expensive prefix reuse the
same cached result. That requires a hash that is stable across
processes and sessions — Python's builtin ``hash`` is salted per
process, so we canonicalise to JSON and hash with SHA-256 instead.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def stable_json(obj: Any) -> str:
    """Serialize ``obj`` to a canonical JSON string.

    Keys are sorted and separators fixed so that logically equal inputs
    always produce byte-identical output. Non-JSON-native objects may
    participate by exposing ``to_json_dict()``.
    """
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def _jsonable(obj: Any) -> Any:
    if hasattr(obj, "to_json_dict"):
        return _jsonable(obj.to_json_dict())
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(str(_jsonable(v)) for v in obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def content_hash(obj: Any) -> str:
    """Return a stable hex digest identifying ``obj`` by content."""
    return hashlib.sha256(stable_json(obj).encode("utf-8")).hexdigest()
