"""Field semantics and dataset schemas (paper §4.2).

Every field of a ScrubJay dataset is annotated with a
:class:`SemanticType` — a keyword triple:

- **relation type** — ``domain`` (a descriptor of *what/where/when* was
  measured: a CPU id, a rack, a point in time) or ``value`` (the
  measurement itself: a temperature, an instruction count);
- **dimension** — the aspect the field lies on (time, temperature,
  compute nodes, …), whose continuous/ordered properties gate the
  operations ScrubJay may apply;
- **units** — the representation (degrees Celsius, datetime,
  identifier, list<identifier>, count per second, …).

A :class:`Schema` maps field names to semantic types and is the *only*
thing the derivation engine reasons about: derivations are planned on
schemas and executed on data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import SemanticError
from repro.util.hashing import content_hash

#: Relation type keywords.
DOMAIN = "domain"
VALUE = "value"
_RELATION_TYPES = (DOMAIN, VALUE)


@dataclass(frozen=True)
class SemanticType:
    """The (relation type, dimension, units) annotation of one field."""

    relation_type: str
    dimension: str
    units: str

    def __post_init__(self) -> None:
        if self.relation_type not in _RELATION_TYPES:
            raise SemanticError(
                f"relation type must be {DOMAIN!r} or {VALUE!r}, "
                f"got {self.relation_type!r}"
            )

    @property
    def is_domain(self) -> bool:
        return self.relation_type == DOMAIN

    @property
    def is_value(self) -> bool:
        return self.relation_type == VALUE

    def with_units(self, units: str) -> "SemanticType":
        return SemanticType(self.relation_type, self.dimension, units)

    def to_json_dict(self) -> dict:
        return {
            "relation_type": self.relation_type,
            "dimension": self.dimension,
            "units": self.units,
        }

    @staticmethod
    def from_json_dict(d: Mapping[str, str]) -> "SemanticType":
        return SemanticType(d["relation_type"], d["dimension"], d["units"])


def domain(dimension: str, units: str) -> SemanticType:
    """Shorthand for a domain annotation."""
    return SemanticType(DOMAIN, dimension, units)


def value(dimension: str, units: str) -> SemanticType:
    """Shorthand for a value annotation."""
    return SemanticType(VALUE, dimension, units)


class Schema:
    """An ordered mapping of field name → :class:`SemanticType`.

    Immutable in spirit: all mutators return new schemas. The engine
    memoizes on :meth:`fingerprint`, a stable content hash.
    """

    def __init__(self, fields: Mapping[str, SemanticType]) -> None:
        self._fields: Dict[str, SemanticType] = dict(fields)

    # ------------------------------------------------------------------
    # mapping interface
    # ------------------------------------------------------------------

    def __getitem__(self, field: str) -> SemanticType:
        try:
            return self._fields[field]
        except KeyError:
            raise SemanticError(f"schema has no field {field!r}") from None

    def __contains__(self, field: str) -> bool:
        return field in self._fields

    def __iter__(self):
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._fields.items(), key=lambda kv: kv[0])))

    def items(self) -> Iterable[Tuple[str, SemanticType]]:
        return self._fields.items()

    def fields(self) -> List[str]:
        return list(self._fields)

    # ------------------------------------------------------------------
    # semantic views
    # ------------------------------------------------------------------

    def domain_fields(self) -> Dict[str, SemanticType]:
        return {f: s for f, s in self._fields.items() if s.is_domain}

    def value_fields(self) -> Dict[str, SemanticType]:
        return {f: s for f, s in self._fields.items() if s.is_value}

    def domain_dimensions(self) -> Set[str]:
        return {s.dimension for s in self._fields.values() if s.is_domain}

    def value_dimensions(self) -> Set[str]:
        return {s.dimension for s in self._fields.values() if s.is_value}

    def dimensions(self) -> Set[str]:
        return {s.dimension for s in self._fields.values()}

    def fields_for(
        self, dimension: str, relation_type: Optional[str] = None
    ) -> List[str]:
        """Field names lying on ``dimension`` (optionally filtered by
        relation type), in schema order."""
        return [
            f
            for f, s in self._fields.items()
            if s.dimension == dimension
            and (relation_type is None or s.relation_type == relation_type)
        ]

    def domain_field(self, dimension: str) -> str:
        """The unique domain field on ``dimension``."""
        fields = self.fields_for(dimension, DOMAIN)
        if not fields:
            raise SemanticError(
                f"schema has no domain field on dimension {dimension!r}"
            )
        if len(fields) > 1:
            raise SemanticError(
                f"schema has multiple domain fields on dimension "
                f"{dimension!r}: {fields}"
            )
        return fields[0]

    # ------------------------------------------------------------------
    # construction of derived schemas
    # ------------------------------------------------------------------

    def with_field(self, name: str, sem: SemanticType) -> "Schema":
        if name in self._fields:
            raise SemanticError(f"field {name!r} already in schema")
        out = dict(self._fields)
        out[name] = sem
        return Schema(out)

    def without_field(self, name: str) -> "Schema":
        if name not in self._fields:
            raise SemanticError(f"field {name!r} not in schema")
        out = dict(self._fields)
        del out[name]
        return Schema(out)

    def replace_field(self, name: str, sem: SemanticType) -> "Schema":
        if name not in self._fields:
            raise SemanticError(f"field {name!r} not in schema")
        out = dict(self._fields)
        out[name] = sem
        return Schema(out)

    def rename_field(self, old: str, new: str) -> "Schema":
        if old not in self._fields:
            raise SemanticError(f"field {old!r} not in schema")
        if new in self._fields:
            raise SemanticError(f"field {new!r} already in schema")
        out = {}
        for f, s in self._fields.items():
            out[new if f == old else f] = s
        return Schema(out)

    def merge(self, other: "Schema", drop: Iterable[str] = ()) -> "Schema":
        """Union of two schemas, dropping ``drop`` fields of ``other``
        and suffixing any remaining name collisions with ``_r``."""
        out = dict(self._fields)
        dropped = set(drop)
        for f, s in other.items():
            if f in dropped:
                continue
            name = f
            while name in out:
                name += "_r"
            out[name] = s
        return Schema(out)

    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash, used as the engine's memoization key."""
        return content_hash(self.to_json_dict())

    def to_json_dict(self) -> dict:
        return {f: s.to_json_dict() for f, s in self._fields.items()}

    @staticmethod
    def from_json_dict(d: Mapping[str, Mapping[str, str]]) -> "Schema":
        return Schema(
            {f: SemanticType.from_json_dict(s) for f, s in d.items()}
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{f}:{s.relation_type[0]}/{s.dimension}" for f, s in self._fields.items()
        )
        return f"Schema({parts})"
