"""In-memory rows as a DataSource (tests, generators, datagen feeds)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.semantics import Schema
from repro.sources.base import DataSource
from repro.sources.predicate import ColumnPredicate


class RowsSource(DataSource):
    """Serve an already-materialized row list in fixed-size slices.

    The slices play the role of storage partitions so that the scan
    machinery (pruning, per-partition reads, stats) behaves uniformly
    across sources; with in-memory data there is nothing physical to
    save, but predicates still shrink what crosses the
    executor boundary.
    """

    def __init__(
        self,
        rows: Sequence[Dict[str, Any]],
        schema: Schema,
        name: str = "rows",
        num_partitions: int = 4,
    ) -> None:
        self._rows = list(rows)
        self._schema = schema
        self.name = name
        n = max(1, min(num_partitions, max(1, len(self._rows))))
        size = -(-len(self._rows) // n) if self._rows else 1
        self._slices: List[Tuple[int, int]] = [
            (i, min(i + size, len(self._rows)))
            for i in range(0, max(1, len(self._rows)), size)
        ] or [(0, 0)]

    def schema(self) -> Schema:
        return self._schema

    def partitions(self) -> Sequence[Tuple[int, int]]:
        return self._slices

    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        rows, _ = self.read_partition_stats(index, columns, predicate)
        return rows

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        start, end = self._slices[index]
        chunk = self._rows[start:end]
        wanted = set(columns) if columns is not None else None
        out: List[Dict[str, Any]] = []
        for row in chunk:
            if predicate is not None and not predicate.matches(row):
                continue
            if wanted is not None:
                row = {k: v for k, v in row.items() if k in wanted}
                if not row:
                    continue
            out.append(row)
        return out, {"rows_read": len(chunk), "bytes_scanned": 0}
