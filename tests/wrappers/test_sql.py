"""SQL (sqlite3) unwrapper round-trips (reads go through SQLSource)."""

import sqlite3

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import WrapperError
from repro.sources import SQLSource
from repro.units.temporal import Timestamp
from repro.wrappers import SQLUnwrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [
    {"node": 1, "time": Timestamp(0.0), "temp": 20.0},
    {"node": 2, "time": Timestamp(60.0), "temp": 21.0},
]


def key(row):
    return tuple(sorted((k, repr(v)) for k, v in row.items()))


def read_all(src):
    out = []
    for i in range(src.num_partitions()):
        out.extend(src.read_partition(i))
    return out


def test_round_trip_table(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    SQLUnwrapper(db, "temps", dictionary).save(ds)
    src = SQLSource(db, SCHEMA, dictionary, table="temps")
    assert sorted(read_all(src), key=key) == sorted(ROWS, key=key)


def test_round_trip_through_ingest(session, ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    SQLUnwrapper(db, "temps", dictionary).save(
        ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    )
    back = session.ingest().sql(db, SCHEMA, table="temps").register("temps")
    assert sorted(back.collect(), key=key) == sorted(ROWS, key=key)


def test_custom_query(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    SQLUnwrapper(db, "temps", dictionary).save(
        ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    )
    src = SQLSource(
        db, SCHEMA, dictionary,
        query='SELECT * FROM temps WHERE node = "2"',
    )
    assert read_all(src) == [ROWS[1]]


def test_column_names_from_cursor_description(ctx, dictionary, tmp_path):
    # the paper's "common data wrapper extracts column names from their
    # schemas": native sqlite tables (typed columns) work too
    db = str(tmp_path / "native.db")
    with sqlite3.connect(db) as conn:
        conn.execute("CREATE TABLE temps (node INTEGER, temp REAL, junk TEXT)")
        conn.execute("INSERT INTO temps VALUES (5, 19.5, 'x')")
    src = SQLSource(db, SCHEMA, dictionary, table="temps")
    assert read_all(src) == [{"node": 5, "temp": 19.5}]


def test_missing_table_raises(ctx, dictionary, tmp_path):
    db = str(tmp_path / "empty.db")
    sqlite3.connect(db).close()
    src = SQLSource(db, SCHEMA, dictionary, table="none")
    with pytest.raises(WrapperError, match="sqlite error"):
        read_all(src)


def test_unwrapper_replaces_table(ctx, dictionary, tmp_path):
    db = str(tmp_path / "perf.db")
    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")
    SQLUnwrapper(db, "temps", dictionary).save(ds)
    SQLUnwrapper(db, "temps", dictionary).save(ds)  # no error, replaced
    src = SQLSource(db, SCHEMA, dictionary, table="temps")
    assert len(read_all(src)) == 2
