"""DeltaPlan: the delta-vs-replay classification matrix, the
union-equals-replay identity, and decision reporting."""

from __future__ import annotations

import types

import pytest

from repro import Query, ScrubJayDataset, ScrubJaySession
from repro.core.pipeline import (
    CombineNode,
    DerivationPlan,
    LoadNode,
    TransformNode,
)
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)
from repro.rdd.stats import DeltaDecision
from repro.stream import DELTA_SAFE_TRANSFORMS, DeltaPlan

from tests.serve.conftest import JOIN_DOMAINS, JOIN_VALUES, row_multiset


def _node(op):
    return types.SimpleNamespace(op_name=op)


def _plan(root):
    return DeltaPlan(DerivationPlan(root))


@pytest.fixture()
def feed_session():
    sj = ScrubJaySession()
    left, right = keyed_tables(120, num_keys=8)
    sj.ingest().feed(KEYED_LEFT_SCHEMA, rows=left).tail("samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    yield sj, left, right
    sj.close()


# ----------------------------------------------------------------------
# classification matrix (pure plan-shape logic)
# ----------------------------------------------------------------------


def test_untouched_plan_classifies_none():
    dp = _plan(TransformNode(_node("filter_range"), LoadNode("a")))
    mode, decisions = dp.classify({"elsewhere"})
    assert mode == "none" and decisions == []


@pytest.mark.parametrize("op", sorted(DELTA_SAFE_TRANSFORMS))
def test_row_local_transforms_are_delta_safe(op):
    dp = _plan(TransformNode(_node(op), LoadNode("a")))
    mode, decisions = dp.classify({"a"})
    assert mode == "delta"
    assert [d.choice for d in decisions] == ["delta"]
    assert decisions[0].op == op


def test_cross_row_transform_forces_replay():
    dp = _plan(TransformNode(_node("derive_rate"), LoadNode("a")))
    mode, decisions = dp.classify({"a"})
    assert mode == "replay"
    assert decisions[0].choice == "replay"
    assert "cross-row" in decisions[0].reason


def test_join_with_one_changed_side_is_delta_safe():
    dp = _plan(CombineNode(
        _node("natural_join"), LoadNode("a"), LoadNode("b")
    ))
    mode, decisions = dp.classify({"a"})
    assert mode == "delta"
    assert decisions[0].op == "natural_join"


def test_join_with_both_sides_changed_forces_replay():
    dp = _plan(CombineNode(
        _node("natural_join"), LoadNode("a"), LoadNode("b")
    ))
    mode, decisions = dp.classify({"a", "b"})
    assert mode == "replay"
    assert "both sides" in decisions[0].reason


def test_interpolation_join_forces_replay_even_one_sided():
    dp = _plan(CombineNode(
        _node("interpolation_join"), LoadNode("a"), LoadNode("b")
    ))
    mode, decisions = dp.classify({"a"})
    assert mode == "replay"
    assert "watermark" in decisions[0].reason


def test_replay_operator_above_safe_path_poisons_the_whole_plan():
    safe_below = TransformNode(_node("filter_equals"), LoadNode("a"))
    dp = _plan(TransformNode(_node("derive_rate"), safe_below))
    mode, decisions = dp.classify({"a"})
    assert mode == "replay"
    choices = {d.op: d.choice for d in decisions}
    assert choices == {"filter_equals": "delta", "derive_rate": "replay"}


def test_unchanged_branch_is_not_examined():
    # only the changed side's operators produce decisions
    left = TransformNode(_node("derive_rate"), LoadNode("a"))
    right = TransformNode(_node("filter_range"), LoadNode("b"))
    dp = _plan(CombineNode(_node("natural_join"), left, right))
    mode, decisions = dp.classify({"b"})
    assert mode == "delta"
    assert {d.op for d in decisions} == {"filter_range", "natural_join"}


# ----------------------------------------------------------------------
# the identity delta execution rests on: f(X ∪ Δ) == f(X) ∪ f(Δ)
# ----------------------------------------------------------------------


def test_delta_union_base_equals_full_replay(feed_session):
    sj, left, _right = feed_session
    feed = sj.feed("samples")
    plan = sj.plan(Query.of(JOIN_DOMAINS, JOIN_VALUES))
    dp = DeltaPlan(plan)
    assert dp.classify({"samples"})[0] == "delta"

    base_catalog = dict(sj.snapshot())
    base_rows = dp.execute_full(base_catalog, sj.dictionary).collect()

    delta = [
        {"node": i % 8, "sample": 1000 + i, "metric_a": 1.0 + i}
        for i in range(10)
    ]
    feed.push(delta)

    delta_ds = ScrubJayDataset.from_rows(
        sj.ctx, delta, KEYED_LEFT_SCHEMA, "samples"
    )
    delta_out = dp.execute_delta(
        base_catalog, {"samples": delta_ds}, sj.dictionary
    ).collect()
    replay = dp.execute_full(dict(sj.snapshot()), sj.dictionary).collect()
    assert row_multiset(base_rows + delta_out) == row_multiset(replay)
    # and the delta execution really only touched the appended rows
    assert len(delta_out) == len(delta)


# ----------------------------------------------------------------------
# decision reporting
# ----------------------------------------------------------------------


def test_decisions_land_on_the_execution_report(feed_session):
    sj, _left, _right = feed_session
    dp = DeltaPlan(sj.plan(Query.of(JOIN_DOMAINS, JOIN_VALUES)))
    _mode, decisions = dp.classify({"samples"})
    assert decisions
    report = sj.ctx.report
    before = len(
        [d for d in report.decisions if d.kind == "delta"]
    )
    dp.record(report, decisions)
    recorded = [d for d in report.decisions if d.kind == "delta"]
    assert len(recorded) == before + len(decisions)
    assert all(isinstance(d, DeltaDecision) for d in recorded)
    # the classification mirrors into labelled counters
    reg = sj.ctx.metrics
    assert reg.counter(
        "stream.delta.decisions", {"choice": "delta"}
    ) >= 1


def test_record_tolerates_absent_report():
    dp = _plan(LoadNode("a"))
    dp.record(None, [DeltaDecision("filter_range", "delta", "r")])
