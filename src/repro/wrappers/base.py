"""Wrapper/unwrapper base classes and the trivial in-memory wrapper."""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional

from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.rdd.context import SJContext


class DataWrapper(ABC):
    """Parses some storage format into a :class:`ScrubJayDataset`.

    Tool experts subclass this for custom formats: implement
    :meth:`rows` (or override :meth:`load` wholesale for formats that
    stream partitions directly).
    """

    def __init__(
        self,
        schema: Schema,
        dictionary: SemanticDictionary,
        name: str,
        num_partitions: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.dictionary = dictionary
        self.name = name
        self.num_partitions = num_partitions

    @abstractmethod
    def rows(self) -> List[Dict[str, Any]]:
        """Parse the source into dict rows (sparse fields omitted)."""

    def load(self, ctx: SJContext) -> ScrubJayDataset:
        """Parse and distribute the source as an annotated dataset."""
        ds = ScrubJayDataset.from_rows(
            ctx, self.rows(), self.schema, self.name, self.num_partitions
        )
        ds.provenance = {"op": "wrap", "wrapper": type(self).__name__,
                         "name": self.name}
        return ds


class RowsWrapper(DataWrapper):
    """Deprecated shim: wrap rows that are already in memory.

    Use ``session.register_rows(...)`` or
    ``session.ingest().rows(data, schema)`` instead; ``rows()`` still
    returns the original list object (not a copy), as it always did.
    """

    def __init__(
        self,
        data: List[Dict[str, Any]],
        schema: Schema,
        dictionary: SemanticDictionary,
        name: str,
        num_partitions: Optional[int] = None,
    ) -> None:
        warnings.warn(
            "RowsWrapper is deprecated; use session.register_rows() "
            "or session.ingest().rows(data, schema)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(schema, dictionary, name, num_partitions)
        self.data = data

    def rows(self) -> List[Dict[str, Any]]:
        return self.data


class Unwrapper(ABC):
    """Converts a dataset back into a storage format (paper §5.4)."""

    @abstractmethod
    def save(self, dataset: ScrubJayDataset) -> Any:
        """Persist the dataset; returns a format-specific handle
        (path, table name, …)."""
