"""repro.columnar — the columnar vectorized execution core.

:class:`ColumnBatch` is the record-batch representation (typed column
buffers, dictionary-encoded strings, validity bitmaps);
:mod:`repro.columnar.kernels` holds the per-operator batch kernels.
The derivation executor (``repro.core.pipeline``) flows batches
through the RDD layer when ``EngineConfig(columnar=True)`` is set,
falling back to the row path per operator when no kernel applies.
"""

from repro.columnar.batch import Column, ColumnBatch, count_rows
from repro.columnar import kernels

__all__ = ["Column", "ColumnBatch", "count_rows", "kernels"]
