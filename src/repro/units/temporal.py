"""Time subspace types: instants and spans.

The paper's semantics distinguish *time stamps* from *time spans* and
rely on expanding "a time range into a set of time stamps within that
range" (the *explode continuous* transformation used on job-queue
logs). Both types are immutable, ordered, hashable, and picklable so
they can flow through RDD shuffles.

Internally both are epoch seconds as floats — time is a continuous
ordered dimension, so floats give interpolation for free.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator, List, Union


@dataclass(frozen=True, order=True)
class Timestamp:
    """An instant in time (epoch seconds)."""

    epoch: float

    @staticmethod
    def from_iso(text: str) -> "Timestamp":
        """Parse an ISO-8601 datetime string."""
        return Timestamp(_dt.datetime.fromisoformat(text).timestamp())

    @staticmethod
    def from_datetime(dt: _dt.datetime) -> "Timestamp":
        return Timestamp(dt.timestamp())

    def to_iso(self) -> str:
        return _dt.datetime.fromtimestamp(self.epoch).isoformat()

    def __add__(self, seconds: float) -> "Timestamp":
        return Timestamp(self.epoch + float(seconds))

    def __sub__(self, other: Union["Timestamp", float]) -> Union[float, "Timestamp"]:
        """Timestamp − Timestamp = seconds; Timestamp − seconds = Timestamp."""
        if isinstance(other, Timestamp):
            return self.epoch - other.epoch
        return Timestamp(self.epoch - float(other))

    def distance(self, other: "Timestamp") -> float:
        """Absolute separation in seconds (the ordered-dimension metric)."""
        return abs(self.epoch - other.epoch)

    def to_json_dict(self) -> dict:
        return {"__timestamp__": self.epoch}

    def __repr__(self) -> str:
        return f"Timestamp({self.to_iso()})"


@dataclass(frozen=True, order=True)
class TimeSpan:
    """A half-open interval of time ``[start, end)`` in epoch seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"TimeSpan end ({self.end}) precedes start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start

    def contains(self, t: Union[Timestamp, float]) -> bool:
        epoch = t.epoch if isinstance(t, Timestamp) else float(t)
        return self.start <= epoch < self.end

    def overlaps(self, other: "TimeSpan") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "TimeSpan") -> "TimeSpan":
        if not self.overlaps(other):
            raise ValueError(f"{self} and {other} do not overlap")
        return TimeSpan(max(self.start, other.start), min(self.end, other.end))

    def explode(self, period: float) -> List[Timestamp]:
        """Expand the span into stamps every ``period`` seconds.

        This is the kernel of the *explode continuous* transformation:
        a job's ``timespan`` becomes the set of instants the job was
        running, so it can be joined against periodically sampled
        sensor readings. The start is always included; stamps step by
        ``period`` while they stay inside the half-open interval. A
        zero-length span yields a single stamp at its start.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if self.duration == 0:
            return [Timestamp(self.start)]
        return [Timestamp(e) for e in _frange(self.start, self.end, period)]

    def iter_stamps(self, period: float) -> Iterator[Timestamp]:
        return iter(self.explode(period))

    def midpoint(self) -> Timestamp:
        return Timestamp((self.start + self.end) / 2.0)

    def to_json_dict(self) -> dict:
        return {"__timespan__": [self.start, self.end]}

    def __repr__(self) -> str:
        return (
            f"TimeSpan({Timestamp(self.start).to_iso()} .. "
            f"{Timestamp(self.end).to_iso()})"
        )


def _frange(start: float, stop: float, step: float) -> Iterator[float]:
    """Float range robust to accumulation error (multiplies, not adds)."""
    i = 0
    value = start
    while value < stop:
        yield value
        i += 1
        value = start + i * step
