"""Portable hashing: determinism and dict-consistency properties."""

from hypothesis import given, strategies as st

from repro.rdd.shuffle import hash_bucket, portable_hash

keys = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)


@given(keys)
def test_hash_is_deterministic(key):
    assert portable_hash(key) == portable_hash(key)


@given(keys, st.integers(1, 64))
def test_bucket_in_range(key, n):
    assert 0 <= hash_bucket(key, n) < n


@given(st.integers(-(2**40), 2**40))
def test_int_float_consistency(i):
    # dict semantics: 2 == 2.0 must land in the same bucket
    assert portable_hash(i) == portable_hash(float(i))


def test_known_types_do_not_use_builtin_hash():
    # Strings must not fall through to the salted builtin hash; the
    # value below is the crc32 of "node-1".
    import zlib

    assert portable_hash("node-1") == zlib.crc32(b"node-1")


def test_tuples_differ_by_order():
    assert portable_hash((1, 2)) != portable_hash((2, 1))


@given(st.lists(st.tuples(st.text(max_size=8), st.integers()), max_size=50),
       st.integers(1, 8))
def test_equal_keys_same_bucket(pairs, n):
    for k, _v in pairs:
        assert hash_bucket(k, n) == hash_bucket(k, n)
