"""Fault tolerance for the RDD engine: retry policy and the task runner.

The paper's substrate (Spark) re-executes lost tasks from lineage; this
module gives the reproduction the same story at two levels:

- **per-task retry** — every executor runs its tasks through
  :func:`run_task_with_retry`, which replays a task (same partition,
  same closure — tasks are deterministic, so replay is exact) with
  exponential backoff when it fails for a *transient* reason, and
  gives up immediately on deterministic application errors.
- **stage replay** — when a whole worker pool dies
  (:class:`~repro.errors.WorkerPoolError`), the scheduler in
  :mod:`repro.rdd.plan` re-runs the failed stage from its lineage
  inputs, which are still materialized driver-side, instead of
  aborting the job.

Both are governed by one :class:`RetryPolicy`, carried by the executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple, Type

from repro.errors import FatalTaskError, TransientTaskError


@dataclass
class RetryPolicy:
    """Budgets and backoff for task retry, stage replay, and degradation.

    Parameters
    ----------
    max_task_attempts:
        Total attempts per task (1 disables per-task retry and its
        wrapper entirely — the zero-overhead path).
    max_stage_attempts:
        Total attempts per stage when the worker pool dies; attempts
        after the first replay the stage from its lineage inputs.
    backoff_base / backoff_factor / max_backoff:
        Exponential backoff: attempt ``k`` (1-based) sleeps
        ``min(base * factor**(k-1), max_backoff)`` seconds before the
        next attempt.
    degrade_after_pool_deaths:
        Consecutive pool deaths after which :class:`ProcessExecutor`
        permanently falls back to in-driver serial execution (logged)
        instead of raising. Must be < ``max_stage_attempts`` for the
        degradation ladder to engage before the stage budget runs out.
    transient_exceptions:
        Exception types treated as retryable. Everything else is
        deterministic → fatal on first occurrence.
    sleep:
        Injectable clock for tests (defaults to ``time.sleep``).
    """

    max_task_attempts: int = 3
    max_stage_attempts: int = 4
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    max_backoff: float = 1.0
    degrade_after_pool_deaths: int = 2
    transient_exceptions: Tuple[Type[BaseException], ...] = (
        TransientTaskError,
        ConnectionError,
        EOFError,
    )
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        if self.max_stage_attempts < 1:
            raise ValueError("max_stage_attempts must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        return min(
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
            self.max_backoff,
        )

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, self.transient_exceptions)


#: Policy used when none is configured.
DEFAULT_RETRY_POLICY = RetryPolicy()


#: Retry policy that disables all retry/replay — the raw seed behaviour.
def no_retry_policy() -> RetryPolicy:
    return RetryPolicy(max_task_attempts=1, max_stage_attempts=1)


def _annotate(exc: BaseException, index: int, attempt: int) -> None:
    """Chain the task's partition index into an exception in place,
    without changing its type (callers match on the original class)."""
    try:
        exc.partition_index = index  # type: ignore[attr-defined]
        exc.add_note(
            f"[repro.rdd] task for partition {index} "
            f"failed on attempt {attempt}"
        )
    except Exception:  # pragma: no cover - exotic exception classes
        pass


def run_task_with_retry(
    fn: Callable[[int, List[Any]], List[Any]],
    index: int,
    items: List[Any],
    policy: RetryPolicy,
) -> List[Any]:
    """Run one partition task under the retry policy.

    Transient failures are retried with exponential backoff up to
    ``policy.max_task_attempts``; exhausting the budget raises
    :class:`~repro.errors.FatalTaskError` chained to the last transient
    cause. Deterministic (non-transient) exceptions propagate unchanged
    on the first attempt, annotated with the partition index.
    """
    attempt = 1
    while True:
        try:
            return fn(index, items)
        except Exception as exc:
            if not policy.is_transient(exc):
                _annotate(exc, index, attempt)
                raise
            if attempt >= policy.max_task_attempts:
                raise FatalTaskError(
                    f"task for partition {index} failed after "
                    f"{attempt} attempts: {exc}",
                    task_index=index,
                    partition_index=index,
                    attempts=attempt,
                ) from exc
            policy.sleep(policy.backoff(attempt))
            attempt += 1


def make_retrying_task(
    fn: Callable[[int, List[Any]], List[Any]], policy: RetryPolicy
) -> Callable[[int, List[Any]], List[Any]]:
    """Bind ``fn`` to the retry runner; identity when retry is disabled
    (``max_task_attempts == 1``) so the no-fault path adds zero frames."""
    if policy.max_task_attempts == 1:
        return fn

    def task(index: int, items: List[Any]) -> List[Any]:
        return run_task_with_retry(fn, index, items, policy)

    return task
