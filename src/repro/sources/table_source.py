"""Wide-column store tables as partition-pruned data sources.

Scan partitions map 1:1 onto the table's partition keys (the
Cassandra model: a partition is the unit of locality). Pruning happens
at two levels:

- **partition-key pruning** (driver-side, :meth:`TableSource.prune`):
  predicate terms over partition-key columns eliminate whole
  partitions before any task is launched;
- **zone-map pruning** (worker-side, inside ``Table.scan``): segments
  whose per-column min/max/null statistics rule out both the partition
  key and the predicate are never unpickled.

Rows already hold typed values (no codec); fields absent from the
schema and None values are dropped.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.semantics import Schema
from repro.sources.base import DataSource, ScanSelection
from repro.sources.predicate import ColumnPredicate
from repro.store.wide_column import WideColumnStore


class TableSource(DataSource):
    """Read one wide-column table, one scan partition per store
    partition key."""

    def __init__(
        self,
        store: WideColumnStore,
        keyspace: str,
        table: str,
        schema: Schema,
        name: Optional[str] = None,
    ) -> None:
        self.store = store
        self.keyspace = keyspace
        self.table_name = table
        self._schema = schema
        self.name = name or f"{keyspace}.{table}"
        self._keys: Optional[List[Tuple]] = None

    def schema(self) -> Schema:
        return self._schema

    def _table(self):
        return self.store.table(self.keyspace, self.table_name)

    # -- driver side ---------------------------------------------------

    def partitions(self) -> Sequence[Tuple]:
        if self._keys is None:
            self._keys = self._table().partitions()
        return self._keys

    def prune(self, predicate: Optional[ColumnPredicate]) -> ScanSelection:
        keys = self.partitions()
        if predicate is None:
            return ScanSelection(tuple(range(len(keys))), len(keys))
        key_cols = self._table().partition_key
        indices = tuple(
            i
            for i, key in enumerate(keys)
            if predicate.partition_may_match(key_cols, key)
        )
        return ScanSelection(
            indices, len(keys), {"pruned_by": "partition-key"}
        )

    # -- append capability (tailing sealed segments) -------------------

    def supports_append(self) -> bool:
        return True

    def refresh(self) -> None:
        """Forget the cached partition-key list so partitions sealed by
        an append become visible to planning."""
        self._keys = None

    def current_offset(self) -> int:
        """Sealed segment count — memtable rows are not feed-visible
        until :meth:`~repro.store.wide_column.Table.append_rows` (or a
        flush) seals them."""
        return self._table().segment_count()

    def append_scan(
        self,
        since_offset: Optional[int] = None,
        until_offset: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Rows of segments sealed in ``[since_offset, until_offset)``,
        filtered to schema fields like :meth:`read_partition_stats`."""
        from repro.errors import FeedRewoundError

        table = self._table()
        count = table.segment_count()
        lo = 0 if since_offset is None else since_offset
        hi = count if until_offset is None else until_offset
        if lo > count or hi > count:
            raise FeedRewoundError(
                f"{self.name}: tail offset {max(lo, hi)} is beyond the "
                f"sealed segment count {count} (segments lost?)",
                since_offset=lo, current_offset=count,
            )
        self._keys = None  # new segments may carry new partition keys
        fields = set(self._schema.fields())
        out: List[Dict[str, Any]] = []
        for record in table.read_segment_range(lo, hi):
            row = {
                k: v
                for k, v in record.items()
                if k in fields and v is not None
            }
            if row:
                out.append(row)
        return out, hi

    # -- worker side ---------------------------------------------------

    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        rows, _ = self.read_partition_stats(index, columns, predicate)
        return rows

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        key = self.partitions()[index]
        fields = set(self._schema.fields())
        wanted = fields if columns is None else fields & set(columns)
        raw, stats = self._table().scan_stats(
            partition=key, columns=None, predicate=predicate
        )
        out: List[Dict[str, Any]] = []
        for record in raw:
            row = {
                k: v
                for k, v in record.items()
                if k in wanted and v is not None
            }
            if row:
                out.append(row)
        return out, stats
    # NB: projection happens here (after the schema-field filter), not
    # in Table.scan — predicate columns need not survive into the row.

    def read_partition_batches_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        """Columnar read: segments decode straight into batches inside
        the store (:meth:`Table.scan_batches`); the schema-field filter
        and projection run as column drops instead of per-row dict
        rebuilds. Row-path equivalent of :meth:`read_partition_stats`
        (None values are nulls; rows empty after projection drop)."""
        key = self.partitions()[index]
        fields = set(self._schema.fields())
        wanted = fields if columns is None else fields & set(columns)
        raw, stats = self._table().scan_batches(
            partition=key, columns=None, predicate=predicate
        )
        out = []
        for batch in raw:
            batch = batch.project(
                [c for c in batch.columns() if c in wanted]
            ).drop_all_null_rows()
            if batch.num_rows:
                out.append(batch)
        return out, stats
