"""Wall-clock timing helper used by the benchmark harnesses."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Usage::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self.start
