"""ScrubJay-provided transformations (paper §4.3, §7.1).

Transformations either infer new information (``derive_rate``,
``derive_ratio``) or change representation (``explode_discrete``,
``explode_continuous``, ``convert_units``, ``rename_field``). All are
expressed as narrow or keyed RDD operations, so they parallelize for
free; none may modify the *dimensions of domain elements* — a
measurement defined over time is never not defined over time.

The two explodes are the paper's denormalizing "transpose" family:
``explode_discrete`` turns a row holding a list (a job's node list)
into one row per element, and ``explode_continuous`` turns a row
holding a span (a job's time range) into one row per contained instant
— exactly the first two steps of the Figure 5 derivation sequence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.columnar import ColumnBatch, kernels
from repro.errors import DerivationError
from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import Transformation, register_derivation
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import DOMAIN, VALUE, Schema, SemanticType
from repro.units.temporal import TimeSpan


@register_derivation
class ExplodeDiscrete(Transformation):
    """Denormalize a list-valued field into one row per element.

    ``{"nodelist": [3, 4, 5], ...}`` becomes three rows with
    ``nodelist_exploded: 3 / 4 / 5``. The field's units go from
    ``list<X>`` to ``X``; its dimension is unchanged.
    """

    op_name = "explode_discrete"

    def __init__(self, field: str) -> None:
        self.field = field

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        if self.field not in schema:
            return False
        sem = schema[self.field]
        return dictionary.unit(sem.units).kind == "list"

    def _out_field(self) -> str:
        return f"{self.field}_exploded"

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        sem = schema[self.field]
        element_units = dictionary.unit(sem.units).element
        assert element_units is not None
        return schema.without_field(self.field).with_field(
            self._out_field(), sem.with_units(element_units)
        )

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field, out_field = self.field, self._out_field()

        def explode(row: Dict[str, Any]) -> List[Dict[str, Any]]:
            if field not in row:
                return []
            out = []
            for element in row[field]:
                new = {k: v for k, v in row.items() if k != field}
                new[out_field] = element
                out.append(new)
            return out

        return dataset.with_rdd(
            dataset.rdd.flatMap(explode),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "input": dataset.provenance},
        )

    @classmethod
    def instantiations(
        cls, schema: Schema, dictionary: SemanticDictionary
    ) -> List["ExplodeDiscrete"]:
        return [
            cls(f)
            for f, sem in schema.items()
            if dictionary.has_unit(sem.units)
            and dictionary.unit(sem.units).kind == "list"
        ]


@register_derivation
class ExplodeContinuous(Transformation):
    """Expand a span-valued field into one row per contained instant.

    A job's ``timespan`` becomes rows stamped every ``period`` seconds,
    turning interval data into point data joinable against periodic
    sensor samples. Units go from ``timespan`` to ``datetime``.
    """

    op_name = "explode_continuous"

    #: default sampling period (seconds) used when the engine
    #: enumerates instantiations; chosen to be finer than typical
    #: facility sensor intervals (2-minute temperatures in the paper).
    DEFAULT_PERIOD = 60.0

    def __init__(self, field: str, period: float = DEFAULT_PERIOD) -> None:
        if period <= 0:
            raise DerivationError(f"period must be positive, got {period}")
        self.field = field
        self.period = period

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        if self.field not in schema:
            return False
        sem = schema[self.field]
        return dictionary.unit(sem.units).kind == "timespan"

    def _out_field(self) -> str:
        return f"{self.field}_exploded"

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        sem = schema[self.field]
        return schema.without_field(self.field).with_field(
            self._out_field(), sem.with_units("datetime")
        )

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field, out_field, period = self.field, self._out_field(), self.period

        def explode(row: Dict[str, Any]) -> List[Dict[str, Any]]:
            span = row.get(field)
            if not isinstance(span, TimeSpan):
                return []
            out = []
            for stamp in span.explode(period):
                new = {k: v for k, v in row.items() if k != field}
                new[out_field] = stamp
                out.append(new)
            return out

        return dataset.with_rdd(
            dataset.rdd.flatMap(explode),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "period": period, "input": dataset.provenance},
        )

    @classmethod
    def instantiations(
        cls, schema: Schema, dictionary: SemanticDictionary
    ) -> List["ExplodeContinuous"]:
        return [
            cls(f)
            for f, sem in schema.items()
            if dictionary.has_unit(sem.units)
            and dictionary.unit(sem.units).kind == "timespan"
        ]


@register_derivation
class ConvertUnits(Transformation):
    """Convert a quantity (or rate) field to different units of the
    same dimension — e.g. minutes → seconds, Fahrenheit → Celsius."""

    op_name = "convert_units"

    def __init__(self, field: str, to_units: str) -> None:
        self.field = field
        self.to_units = to_units

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        if self.field not in schema or not dictionary.has_unit(self.to_units):
            return False
        try:
            dictionary.convert(1.0, schema[self.field].units, self.to_units)
            return True
        except Exception:
            return False

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return schema.replace_field(
            self.field, schema[self.field].with_units(self.to_units)
        )

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field = self.field
        from_units = dataset.schema[field].units
        factor_source = dictionary.registry

        def convert(row: Dict[str, Any]) -> Dict[str, Any]:
            if field not in row:
                return row
            new = dict(row)
            new[field] = factor_source.convert(
                row[field], from_units, self.to_units
            )
            return new

        return dataset.with_rdd(
            dataset.rdd.map(convert),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "to_units": self.to_units,
                        "input": dataset.provenance},
        )


@register_derivation
class RenameField(Transformation):
    """Representation-only rename of a field (semantics unchanged)."""

    op_name = "rename_field"

    def __init__(self, field: str, to: str) -> None:
        self.field = field
        self.to = to

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return self.field in schema and self.to not in schema

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return schema.rename_field(self.field, self.to)

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field, to = self.field, self.to

        def rename(row: Dict[str, Any]) -> Dict[str, Any]:
            if field not in row:
                return row
            new = {k: v for k, v in row.items() if k != field}
            new[to] = row[field]
            return new

        return dataset.with_rdd(
            dataset.rdd.map(rename),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field, "to": to,
                        "input": dataset.provenance},
        )

    def apply_batched(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> Optional[ScrubJayDataset]:
        """Rename as a column-map key swap (no per-row work at all)."""
        self._check(dataset, dictionary)
        field, to = self.field, self.to

        def run(items: List[Any]) -> List[Any]:
            out: List[Any] = []
            for item in items:
                if isinstance(item, ColumnBatch):
                    out.append(kernels.rename_field(item, field, to))
                elif field in item:
                    row = {k: v for k, v in item.items() if k != field}
                    row[to] = item[field]
                    out.append(row)
                else:
                    out.append(item)
            return out

        result = dataset.with_rdd(
            dataset.rdd.mapPartitions(run),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field, "to": to,
                        "input": dataset.provenance},
        )
        result.batched = True
        return result


@register_derivation
class DeriveRate(Transformation):
    """Turn cumulative counters into instantaneous rates (paper §7.3).

    CPU and node data sources record *cumulative counts* that reset at
    arbitrary intervals, so absolute values are meaningless alone. For
    every value field with ``count`` units, this derivation computes
    the rate of change per consecutive pair of samples — grouped by all
    discrete domain fields (the measured entity: node, cpu, socket),
    ordered by the datetime domain field — and is reset-safe: a
    negative delta marks a counter reset and the sample pair is
    skipped for that field.

    Output rows carry the later sample's domain fields plus
    ``<field>_rate`` values in ``count per second``; the original
    cumulative fields are dropped.
    """

    op_name = "derive_rate"

    SUFFIX = "_rate"

    def __init__(self, fields: Optional[List[str]] = None) -> None:
        self.fields = fields

    def _count_fields(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> List[str]:
        out = []
        for f, sem in schema.value_fields().items():
            if self.fields is not None and f not in self.fields:
                continue
            if dictionary.has_unit(sem.units) and \
                    dictionary.unit(sem.units).kind == "count":
                out.append(f)
        return out

    def _time_field(self, schema: Schema,
                    dictionary: SemanticDictionary) -> Optional[str]:
        for f, sem in schema.domain_fields().items():
            if dictionary.has_unit(sem.units) and \
                    dictionary.unit(sem.units).kind == "datetime":
                return f
        return None

    def _group_fields(self, schema: Schema,
                      dictionary: SemanticDictionary) -> List[str]:
        out = []
        for f, sem in schema.domain_fields().items():
            if not dictionary.has_dimension(sem.dimension):
                continue
            if not dictionary.dimension(sem.dimension).interpolatable:
                out.append(f)
        return out

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return bool(self._count_fields(schema, dictionary)) and \
            self._time_field(schema, dictionary) is not None

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        out = schema
        for f in self._count_fields(schema, dictionary):
            sem = schema[f]
            out = out.without_field(f).with_field(
                f + self.SUFFIX,
                SemanticType(VALUE, f"{sem.dimension} per time",
                             "count per second"),
            )
        return out

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        schema = dataset.schema
        count_fields = self._count_fields(schema, dictionary)
        time_field = self._time_field(schema, dictionary)
        group_fields = self._group_fields(schema, dictionary)
        suffix = self.SUFFIX
        assert time_field is not None

        def key(row: Dict[str, Any]):
            return tuple(row.get(f) for f in group_fields)

        def rates(kv) -> List[Dict[str, Any]]:
            _k, rows = kv
            rows = sorted(
                (r for r in rows if time_field in r),
                key=lambda r: r[time_field],
            )
            out = []
            for prev, cur in zip(rows, rows[1:]):
                dt = cur[time_field] - prev[time_field]
                if dt <= 0:
                    continue
                new = {
                    k: v for k, v in cur.items() if k not in count_fields
                }
                any_rate = False
                for f in count_fields:
                    if f not in cur or f not in prev:
                        continue
                    delta = cur[f] - prev[f]
                    if delta < 0:  # counter reset between samples
                        continue
                    new[f + suffix] = delta / dt
                    any_rate = True
                if any_rate:
                    out.append(new)
            return out

        rdd = (
            dataset.rdd.keyBy(key)
            .groupByKey()
            .flatMap(rates)
        )
        return dataset.with_rdd(
            rdd,
            self.derive_schema(schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "fields": count_fields,
                        "input": dataset.provenance},
        )

    @classmethod
    def instantiations(
        cls, schema: Schema, dictionary: SemanticDictionary
    ) -> List["DeriveRate"]:
        inst = cls()
        return [inst] if inst.applies(schema, dictionary) else []


@register_derivation
class DeriveRatio(Transformation):
    """Derive a new value as the ratio of two existing value fields —
    the paper's canonical example: instruction counts / elapsed times
    → instruction rates. Rows with a zero denominator are dropped."""

    op_name = "derive_ratio"

    def __init__(
        self,
        numerator: str,
        denominator: str,
        result_field: str,
        result_dimension: str,
        result_units: str,
        drop_inputs: bool = False,
    ) -> None:
        self.numerator = numerator
        self.denominator = denominator
        self.result_field = result_field
        self.result_dimension = result_dimension
        self.result_units = result_units
        self.drop_inputs = drop_inputs

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return (
            self.numerator in schema
            and self.denominator in schema
            and schema[self.numerator].is_value
            and schema[self.denominator].is_value
            and self.result_field not in schema
        )

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        out = schema.with_field(
            self.result_field,
            SemanticType(VALUE, self.result_dimension, self.result_units),
        )
        if self.drop_inputs:
            out = out.without_field(self.numerator)
            out = out.without_field(self.denominator)
        return out

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        num, den = self.numerator, self.denominator
        result = self.result_field
        drop = (num, den) if self.drop_inputs else ()

        def derive(row: Dict[str, Any]) -> List[Dict[str, Any]]:
            if num not in row or den not in row or not row[den]:
                return []
            new = {k: v for k, v in row.items() if k not in drop}
            new[result] = row[num] / row[den]
            return [new]

        return dataset.with_rdd(
            dataset.rdd.flatMap(derive),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "numerator": num,
                        "denominator": den, "result": result,
                        "input": dataset.provenance},
        )


@register_derivation
class FilterEquals(Transformation):
    """Keep rows whose field equals a literal value.

    Part of the interoperability layer the paper's footnote 1 promises
    ("we recognize the need for filtering and aggregation semantics
    provided by traditional relational database tools"): a filter that
    is a first-class, serializable derivation, so filtered pipelines
    stay reproducible. The schema is unchanged.
    """

    op_name = "filter_equals"

    def __init__(self, field: str, value: Any) -> None:
        self.field = field
        self.value = value

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return self.field in schema

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return schema

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field, value = self.field, self.value
        return dataset.with_rdd(
            dataset.rdd.filter(lambda row: row.get(field) == value),
            dataset.schema,
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "value": value, "input": dataset.provenance},
        )

    def apply_batched(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> Optional[ScrubJayDataset]:
        """Vectorized filter: one mask per batch, same row semantics
        (``row.get(field) == value``); stray row elements filter the
        row way."""
        self._check(dataset, dictionary)
        field, value = self.field, self.value

        def run(items: List[Any]) -> List[Any]:
            out: List[Any] = []
            for item in items:
                if isinstance(item, ColumnBatch):
                    kept = item.filter(
                        kernels.filter_equals_mask(item, field, value)
                    )
                    if kept.num_rows:
                        out.append(kept)
                elif item.get(field) == value:
                    out.append(item)
            return out

        result = dataset.with_rdd(
            dataset.rdd.mapPartitions(run),
            dataset.schema,
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "value": value, "input": dataset.provenance},
        )
        result.batched = True
        return result


@register_derivation
class FilterRange(Transformation):
    """Keep rows whose field lies in ``[low, high)``.

    Only valid on *ordered* dimensions — comparing values along an
    unordered dimension (a node ID is not "less than" another) is
    exactly what the semantics exist to forbid. Datetime fields compare
    by epoch; bounds may be None for one-sided ranges.
    """

    op_name = "filter_range"

    def __init__(self, field: str, low: Optional[float] = None,
                 high: Optional[float] = None) -> None:
        if low is None and high is None:
            raise DerivationError("filter_range needs low and/or high")
        self.field = field
        self.low = low
        self.high = high

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        if self.field not in schema:
            return False
        sem = schema[self.field]
        if not dictionary.has_dimension(sem.dimension):
            return False
        return dictionary.dimension(sem.dimension).ordered

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return schema

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field, low, high = self.field, self.low, self.high

        def keep(row: Dict[str, Any]) -> bool:
            if field not in row:
                return False
            v = row[field]
            epoch = getattr(v, "epoch", v)
            if low is not None and epoch < low:
                return False
            if high is not None and epoch >= high:
                return False
            return True

        return dataset.with_rdd(
            dataset.rdd.filter(keep),
            dataset.schema,
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "low": low, "high": high,
                        "input": dataset.provenance},
        )

    def apply_batched(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> Optional[ScrubJayDataset]:
        """Vectorized range filter. The kernel mirrors ``keep`` exactly:
        missing field fails, datetimes compare by ``.epoch``, NaN passes
        both bound checks, TypeErrors from unorderable values propagate.
        """
        self._check(dataset, dictionary)
        field, low, high = self.field, self.low, self.high

        def keep(row: Dict[str, Any]) -> bool:
            if field not in row:
                return False
            epoch = getattr(row[field], "epoch", row[field])
            if low is not None and epoch < low:
                return False
            if high is not None and epoch >= high:
                return False
            return True

        def run(items: List[Any]) -> List[Any]:
            out: List[Any] = []
            for item in items:
                if isinstance(item, ColumnBatch):
                    kept = item.filter(
                        kernels.filter_range_mask(item, field, low, high)
                    )
                    if kept.num_rows:
                        out.append(kept)
                elif keep(item):
                    out.append(item)
            return out

        result = dataset.with_rdd(
            dataset.rdd.mapPartitions(run),
            dataset.schema,
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "low": low, "high": high,
                        "input": dataset.provenance},
        )
        result.batched = True
        return result


@register_derivation
class SelectFields(Transformation):
    """Keep only the named fields (projection as a derivation).

    The projection counterpart of the filter transformations: a
    first-class, serializable plan step, which the pushdown rewrite
    can translate into scan-level column pruning. Rows that end up
    empty after projection are dropped (a row with no fields carries
    no information).
    """

    op_name = "select_fields"

    def __init__(self, fields: List[str]) -> None:
        if not fields:
            raise DerivationError("select_fields needs at least one field")
        self.fields = list(fields)

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        return all(f in schema for f in self.fields)

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return Schema({f: schema[f] for f in self.fields})

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        keep = frozenset(self.fields)

        def project(row: Dict[str, Any]) -> Dict[str, Any]:
            return {k: v for k, v in row.items() if k in keep}

        return dataset.with_rdd(
            dataset.rdd.map(project).filter(bool),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "fields": list(self.fields),
                        "input": dataset.provenance},
        )

    def apply_batched(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> Optional[ScrubJayDataset]:
        """Projection as column drops (plus the same empty-row drop the
        row path gets from ``filter(bool)``)."""
        self._check(dataset, dictionary)
        fields = list(self.fields)
        keep = frozenset(fields)

        def run(items: List[Any]) -> List[Any]:
            out: List[Any] = []
            for item in items:
                if isinstance(item, ColumnBatch):
                    kept = kernels.select_fields(item, fields)
                    if kept.num_rows:
                        out.append(kept)
                else:
                    row = {k: v for k, v in item.items() if k in keep}
                    if row:
                        out.append(row)
            return out

        result = dataset.with_rdd(
            dataset.rdd.mapPartitions(run),
            self.derive_schema(dataset.schema, dictionary),
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "fields": list(self.fields),
                        "input": dataset.provenance},
        )
        result.batched = True
        return result
