"""Incremental derivation: delta execution over DerivationPlans.

The core observation (following the incremental view-maintenance
lineage: provenance-on-Spark showed maintaining derived structures
beats recomputation for append-mostly workloads) is that ScrubJay
plans are largely built from **union-distributive** operators. For a
plan ``f`` and an appended delta ``Δ`` to input ``X``,

    f(X ∪ Δ, Y) = f(X, Y) ∪ f(Δ, Y)

holds whenever every operator on the path from ``X``'s leaf to the
root is row-local (filter/project/rename/convert/explode/ratio) or a
natural join whose *other* side is unchanged (a join is linear in
each argument separately). Then refreshing a standing answer after an
append means executing the same plan with the changed leaf bound to
just the delta rows — typically orders of magnitude less data — and
unioning into the previous answer (or merging aggregation partials
via :func:`~repro.analysis.aggregate.merge_group_partials`).

Operators that need cross-row context — ``derive_rate`` (adjacent
samples), ``interpolation_join`` (neighbors straddle the watermark),
or a combine with changed data on *both* sides — break the identity;
those plans fall back to **scoped replay**: a full recompute pinned at
the new watermark (time-windowed derivations only ever need the
window reaching back ``max window`` before it). Either way the choice
is recorded as a :class:`~repro.rdd.stats.DeltaDecision` on the
ExecutionReport, so the incremental path is *asserted*, not assumed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.dataset import ScrubJayDataset
from repro.core.pipeline import (
    CombineNode,
    DerivationPlan,
    LoadNode,
    PlanNode,
    ScanNode,
    TransformNode,
)
from repro.errors import PipelineError
from repro.rdd.stats import DeltaDecision

#: transformations that are row-local — applying them to a union of
#: row sets equals the union of applying them to each set
DELTA_SAFE_TRANSFORMS = frozenset({
    "filter_equals",
    "filter_range",
    "rename_field",
    "convert_units",
    "select_fields",
    "explode_discrete",
    "explode_continuous",
    "derive_ratio",
    # snapping a timestamp to its grain bucket is row-local
    "bucket_time",
})

#: combinations linear in each argument separately (delta-safe when
#: exactly one side's inputs changed)
DELTA_SAFE_COMBINES = frozenset({"natural_join"})


class DeltaPlan:
    """A :class:`DerivationPlan` plus its incremental-execution brain.

    ``classify(changed)`` decides delta vs replay for a set of changed
    dataset names; ``execute_delta`` runs the plan with changed leaves
    bound to delta-only datasets. The caller (the serve layer's
    subscription refresh) owns the union/merge of the delta output
    into the standing answer and the watermark bookkeeping.
    """

    def __init__(self, plan: DerivationPlan) -> None:
        self.plan = plan

    def dataset_names(self) -> List[str]:
        return self.plan.dataset_names()

    # -- classification ------------------------------------------------

    def classify(
        self, changed: Sequence[str]
    ) -> Tuple[str, List[DeltaDecision]]:
        """(``"delta"`` | ``"replay"`` | ``"none"``, decisions).

        ``"none"`` means no plan input changed — the standing answer
        is already current. ``"delta"`` means every operator on every
        changed path is union-distributive. Decisions cover each
        operator examined on a changed path; on ``"replay"`` the
        offending operators carry the reason.
        """
        touched_names: Set[str] = set(changed) & set(self.dataset_names())
        if not touched_names:
            return "none", []
        decisions: List[DeltaDecision] = []
        safe = [True]

        def walk(node: PlanNode) -> bool:
            # True when the subtree reads a changed dataset
            if isinstance(node, (LoadNode, ScanNode)):
                return node.dataset_name in touched_names
            if isinstance(node, TransformNode):
                touched = walk(node.input)
                if touched:
                    op = node.derivation.op_name
                    if op in DELTA_SAFE_TRANSFORMS:
                        decisions.append(DeltaDecision(
                            op, "delta",
                            "row-local: distributes over row-set union",
                        ))
                    else:
                        safe[0] = False
                        decisions.append(DeltaDecision(
                            op, "replay",
                            f"{op} needs cross-row context (not "
                            "union-distributive)",
                        ))
                return touched
            if isinstance(node, CombineNode):
                lt = walk(node.left)
                rt = walk(node.right)
                if lt or rt:
                    op = node.derivation.op_name
                    if lt and rt:
                        safe[0] = False
                        decisions.append(DeltaDecision(
                            op, "replay",
                            "changed datasets feed both sides of the "
                            "combine",
                        ))
                    elif op in DELTA_SAFE_COMBINES:
                        decisions.append(DeltaDecision(
                            op, "delta",
                            "join is linear in its single changed side",
                        ))
                    else:
                        safe[0] = False
                        decisions.append(DeltaDecision(
                            op, "replay",
                            f"{op} reads neighbor rows across the "
                            "watermark (window/interpolation context)",
                        ))
                return lt or rt
            raise PipelineError(
                f"unknown plan node {type(node).__name__}"
            )

        walk(self.plan.root)
        return ("delta" if safe[0] else "replay"), decisions

    # -- execution -----------------------------------------------------

    def execute_delta(
        self,
        base_catalog: Dict[str, ScrubJayDataset],
        delta_datasets: Dict[str, ScrubJayDataset],
        dictionary,
        columnar: bool = False,
        columnar_off=(),
    ) -> ScrubJayDataset:
        """Execute the plan with changed leaves bound to delta rows.

        ``base_catalog`` supplies the *unchanged* inputs (for a join's
        static side — pinned at their own watermarks by the caller);
        ``delta_datasets`` maps each changed name to a dataset holding
        only the rows appended in the refresh interval. No derivation
        cache is used: delta bindings share plan fingerprints with the
        full bindings, so caching here would poison full executions.
        """
        catalog = dict(base_catalog)
        catalog.update(delta_datasets)
        return self.plan.execute(
            catalog, dictionary, None, columnar=columnar,
            columnar_off=columnar_off,
        )

    def execute_full(
        self,
        catalog: Dict[str, ScrubJayDataset],
        dictionary,
        columnar: bool = False,
        columnar_off=(),
    ) -> ScrubJayDataset:
        """Scoped replay: full execution against a catalog whose feed
        inputs the caller has pinned (bounded) at the target
        watermarks — never against live, still-growing sources."""
        return self.plan.execute(
            catalog, dictionary, None, columnar=columnar,
            columnar_off=columnar_off,
        )

    def record(self, report, decisions: List[DeltaDecision]) -> None:
        """Publish classification decisions onto an ExecutionReport
        (mirrored into ``stream.delta.decisions`` metrics)."""
        if report is None:
            return
        for d in decisions:
            report.add(d)

    def __repr__(self) -> str:
        return f"DeltaPlan({self.plan!r})"
