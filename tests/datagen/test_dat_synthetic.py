"""DAT bundles and the Figure 3 synthetic tables."""

import pytest

from repro.datagen.dat import (
    ensure_semantics,
    generate_dat1,
    generate_dat2,
)
from repro.datagen.facility import FacilityConfig
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    TIMED_LEFT_SCHEMA,
    TIMED_RIGHT_SCHEMA,
    keyed_tables,
    timed_tables,
)
from repro import ScrubJaySession, default_dictionary


@pytest.fixture(scope="module")
def dat1():
    return generate_dat1(
        facility_config=FacilityConfig(num_racks=4, nodes_per_rack=2),
        duration=1800.0, amg_rack=2, amg_start=300.0, amg_duration=900.0,
        include_aux_feeds=True,
    )


@pytest.fixture(scope="module")
def dat2():
    return generate_dat2(run_duration=120.0, gap=30.0, papi_period=5.0,
                         ipmi_period=6.0, include_ldms=True)


def test_dat1_datasets_present(dat1):
    assert set(dat1.datasets) == {
        "job_queue_log", "node_layout", "rack_temperatures",
        "rack_humidity", "rack_power",
    }


def test_dat1_amg_pinned_to_rack(dat1):
    amg = [r for r in dat1.rows("job_queue_log") if r["job_name"] == "AMG"]
    assert len(amg) == 1
    assert sorted(amg[0]["nodelist"]) == \
        dat1.facility.nodes_in_rack(2)


def test_dat1_schemas_validate(dat1):
    d = default_dictionary()
    ensure_semantics(d)
    for _name, (_rows, schema) in dat1.datasets.items():
        d.validate_schema(schema)


def test_dat1_rejects_bad_amg_rack():
    with pytest.raises(ValueError):
        generate_dat1(
            facility_config=FacilityConfig(num_racks=2, nodes_per_rack=2),
            amg_rack=17,
        )


def test_dat1_register_into_session(dat1):
    with ScrubJaySession() as sj:
        dat1.register(sj)
        assert set(sj.schemas()) == set(dat1.datasets)


def test_dat2_datasets_present(dat2):
    assert set(dat2.datasets) == {"cpu_specs", "papi", "ipmi", "ldms"}


def test_dat2_run_order_mgc_then_prime95(dat2):
    names = [r["job_name"] for r in
             sorted(dat2.scheduler.job_log_rows(),
                    key=lambda r: r["timespan"].start)]
    assert names == ["mg.C"] * 3 + ["prime95"] * 3


def test_dat2_schemas_validate(dat2):
    d = default_dictionary()
    ensure_semantics(d)
    for _name, (_rows, schema) in dat2.datasets.items():
        d.validate_schema(schema)


def test_ensure_semantics_idempotent():
    d = default_dictionary()
    ensure_semantics(d)
    ensure_semantics(d)


# ----------------------------------------------------------------------
# synthetic tables
# ----------------------------------------------------------------------

def test_keyed_tables_shapes():
    left, right = keyed_tables(1000, num_keys=16)
    assert len(left) == 1000
    assert len(right) == 16
    assert {r["node"] for r in left} <= set(range(16))
    d = default_dictionary()
    d.validate_schema(KEYED_LEFT_SCHEMA)
    d.validate_schema(KEYED_RIGHT_SCHEMA)


def test_keyed_tables_deterministic():
    assert keyed_tables(100, seed=1) == keyed_tables(100, seed=1)
    assert keyed_tables(100, seed=1) != keyed_tables(100, seed=2)


def test_timed_tables_shapes():
    left, right = timed_tables(1000, num_keys=10)
    assert len(left) == 1000
    assert right  # right stream covers the same horizon
    d = default_dictionary()
    d.validate_schema(TIMED_LEFT_SCHEMA)
    d.validate_schema(TIMED_RIGHT_SCHEMA)


def test_timed_tables_every_left_row_has_nearby_right():
    left, right = timed_tables(400, num_keys=4)
    from collections import defaultdict

    by_key = defaultdict(list)
    for r in right:
        by_key[r["node"]].append(r["time"].epoch)
    for r in left:
        ts = by_key[r["node"]]
        assert any(abs(t - r["time"].epoch) <= 3.0 for t in ts)
