"""ScrubJaySession: the single analyst entry point."""

import pytest

from repro import (
    Schema,
    ScrubJaySession,
    SemanticType,
    DOMAIN,
    VALUE,
)
from repro.core.derivation import Transformation
from repro.errors import ScrubJayError, SemanticError

SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "temp": SemanticType(VALUE, "temperature", "degrees Celsius"),
})


def test_register_rows_and_lookup(session):
    ds = session.register_rows([{"node": 1, "temp": 20.0}], SCHEMA, "t")
    assert session.dataset("t") is ds
    assert session.schemas() == {"t": SCHEMA}


def test_register_duplicate_name_rejected(session):
    session.register_rows([], SCHEMA, "t")
    with pytest.raises(ScrubJayError, match="already registered"):
        session.register_rows([], SCHEMA, "t")


def test_register_validates_against_dictionary(session):
    bad = Schema({"x": SemanticType(DOMAIN, "not a dim", "identifier")})
    with pytest.raises(SemanticError):
        session.register_rows([], bad, "bad")


def test_unknown_dataset_lookup(session):
    with pytest.raises(ScrubJayError, match="no dataset"):
        session.dataset("ghost")


def test_ingest_csv_registers(session, tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("node,temp\n1,20.0\n")
    ds = session.ingest().csv(str(path), SCHEMA).register("csvdata")
    assert ds.collect() == [{"node": 1, "temp": 20.0}]
    assert "csvdata" in session.schemas()


def test_define_dimension_and_unit(session):
    session.define_dimension("gpu utilization", True, True)
    session.define_unit("gpu percent", "quantity", "gpu utilization")
    schema = Schema({
        "u": SemanticType(VALUE, "gpu utilization", "gpu percent"),
    })
    session.register_rows([], schema, "gpus")


def test_register_session_local_derivation(session):
    class Noop(Transformation):
        op_name = "noop_test_only"

        def __init__(self):
            pass

        def applies(self, schema, dictionary):
            return True

        def derive_schema(self, schema, dictionary):
            return schema

        def apply(self, dataset, dictionary):
            return dataset

    session.register_derivation(Noop)
    assert session.registry.get("noop_test_only") is Noop
    # the global registry is untouched
    from repro.core.derivation import GLOBAL_REGISTRY
    from repro.errors import PipelineError

    with pytest.raises(PipelineError):
        GLOBAL_REGISTRY.get("noop_test_only")


def test_ask_plans_and_executes(fig5_session):
    rows = fig5_session.ask(
        domains=["jobs", "racks"], values=["applications", "heat"]
    ).collect()
    assert rows
    amg = [r for r in rows if r["job_name"] == "AMG"]
    assert amg and all(r["rack"] == 17 for r in amg)
    # planted heat differential: rack 17 hot-cold = 6
    assert amg[0]["heat"] == pytest.approx(6.0, abs=0.5)


def test_context_manager_closes():
    with ScrubJaySession() as sj:
        sj.register_rows([], SCHEMA, "t")
    assert sj.ctx._stopped


def test_explain_renders_plan(fig5_session):
    text = fig5_session.explain(domains=["jobs", "racks"],
                                values=["applications", "heat"])
    assert "Load[job_queue_log]" in text
    assert "interpolation_join" in text


def test_session_forwards_adaptive_knobs():
    from repro import TuningProfile

    profile = TuningProfile(broadcast_threshold=0)
    with ScrubJaySession(profile).ctx as ctx:
        assert ctx.adaptive.broadcast_threshold_bytes == 0
    profile = TuningProfile(
        target_partition_rows=99, broadcast_threshold=123
    )
    sj = ScrubJaySession(profile)
    assert sj.ctx.adaptive.target_partition_rows == 99
    assert sj.ctx.adaptive.broadcast_threshold_bytes == 123
    sj.ctx.stop()


def test_legacy_flat_kwargs_shim_warns_and_folds():
    """Pre-profile flat kwargs still work for one release, each
    construction warning once and folding into the profile."""
    from repro import AdaptiveConfig

    cfg = AdaptiveConfig(target_partition_rows=99)
    with pytest.warns(DeprecationWarning, match="flat ScrubJaySession"):
        sj = ScrubJaySession(adaptive=cfg, broadcast_threshold=123)
    assert sj.ctx.adaptive.target_partition_rows == 99
    assert sj.ctx.adaptive.broadcast_threshold_bytes == 123
    assert sj.profile.provenance(
        "adaptive.broadcast_threshold_bytes") == "user-pinned"
    sj.ctx.stop()

    with pytest.warns(DeprecationWarning, match="executor="):
        sj = ScrubJaySession(executor="threads")
    assert sj.profile.get("executor.kind") == "threads"
    sj.ctx.stop()

    from repro.errors import ConfigError
    with pytest.raises(ConfigError, match="unknown ScrubJaySession"):
        ScrubJaySession(bogus_knob=1)
