"""QueryBuilder: fluent construction, session-bound terminals, and the
legacy-form deprecation."""

from __future__ import annotations

import pytest

from repro import Query, QueryBuilder
from repro.core.query import ValueTerm
from repro.errors import QueryError


def test_build_produces_frozen_query():
    q = (QueryBuilder()
         .across("jobs", "racks")
         .value("heat", units="W")
         .build())
    assert q == Query(
        ("jobs", "racks"), (ValueTerm("heat", "W"),)
    )


def test_builder_equivalent_to_query_of():
    built = (QueryBuilder()
             .across("racks")
             .values("heat", "power")
             .build())
    assert built == Query.of(["racks"], ["heat", "power"])


def test_accumulation_across_calls():
    q = (QueryBuilder()
         .across("jobs")
         .across("racks")
         .value("heat")
         .values("power", "temperature")
         .build())
    assert q.domains == ("jobs", "racks")
    assert [t.dimension for t in q.values] == [
        "heat", "power", "temperature"
    ]


def test_build_requires_domains_and_values():
    with pytest.raises(QueryError):
        QueryBuilder().value("heat").build()
    with pytest.raises(QueryError):
        QueryBuilder().across("racks").build()


def test_unbound_terminals_raise():
    b = QueryBuilder().across("racks").value("heat")
    with pytest.raises(QueryError):
        b.plan()
    with pytest.raises(QueryError):
        b.ask()
    with pytest.raises(QueryError):
        b.explain()


def test_session_bound_builder_plans(fig5_session):
    plan = (fig5_session.query()
            .across("racks")
            .value("heat")
            .plan())
    assert "derive_heat" in plan.operations()


def test_session_bound_builder_asks(fig5_session):
    answer = (fig5_session.query()
              .across("racks")
              .value("heat")
              .ask())
    assert answer.plan is not None
    assert len(answer.collect()) > 0
    assert list(answer) == answer.collect()


def test_session_bound_builder_explains(fig5_session):
    text = (fig5_session.query()
            .across("racks")
            .value("heat")
            .explain())
    assert "derive_heat" in text


def test_legacy_two_argument_query_warns(fig5_session):
    with pytest.warns(DeprecationWarning, match="fluent builder"):
        plan = fig5_session.query(
            domains=["racks"], values=["heat"]
        )
    assert "derive_heat" in plan.operations()


def test_query_with_built_query_does_not_warn(fig5_session):
    import warnings

    q = Query.of(["racks"], ["heat"])
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        plan = fig5_session.query(q)
        fig5_session.query()  # bare builder is the blessed path
    assert "derive_heat" in plan.operations()


def test_repr_shows_accumulated_terms():
    b = QueryBuilder().across("racks").value("heat", units="W")
    assert "racks" in repr(b)
    assert "heat[W]" in repr(b)
