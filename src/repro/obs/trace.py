"""Hierarchical spans and the Tracer that produces them.

Design constraints, in order of importance:

1. **Off means free.** Every instrumentation point in the hot path
   (scheduler stages, executor tasks, plan nodes) guards on
   ``tracer.enabled`` or receives :data:`NOOP_SPAN`; a disabled
   tracer costs one attribute read and no allocation. The fig3
   overhead gate in ``benchmarks/harness.py --smoke`` enforces <5%.
2. **Thread-correct.** The "current span" stack is thread-local, so
   service worker threads tracing concurrent queries never splice
   each other's trees. Completed root spans land in one bounded,
   lock-guarded deque.
3. **Cross-process comparable.** Timestamps are ``time.perf_counter()``
   readings; on Linux that is CLOCK_MONOTONIC, which is system-wide,
   so task timings reported back from forked/spawned executor workers
   (via the scheduler's result side-channel) land on the same axis as
   driver-side spans.

Spans may also be recorded retroactively with explicit start/end
times — the serve layer uses this for queue-wait, which is over
before tracing of the query body begins.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, named region with counters, attributes, children.

    ``kind`` is the coarse taxonomy exporters group by: ``"query"``,
    ``"solve"``, ``"plan-node"``, ``"stage"``, ``"task"``,
    ``"cache"``, or ``""`` for ad-hoc regions.
    """

    __slots__ = (
        "name", "kind", "attrs", "counters",
        "start", "end", "children", "status",
    )

    def __init__(
        self,
        name: str,
        kind: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: Dict[str, float] = {}
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.status: str = "ok"

    # -- counters / attributes -----------------------------------------

    def add(self, counter: str, n: float = 1) -> None:
        """Increment a counter attached to this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def set(self, key: str, value: Any) -> None:
        """Set an attribute (non-additive annotation) on this span."""
        self.attrs[key] = value

    # -- timing --------------------------------------------------------

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    # -- structure -----------------------------------------------------

    def child(
        self,
        name: str,
        kind: str = "",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> "Span":
        """Attach and return a new child span (caller times it)."""
        span = Span(name, kind, attrs)
        self.children.append(span)
        return span

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (depth-first) with this name, or None."""
        for c in self.children:
            if c.name == name:
                return c
            hit = c.find(name)
            if hit is not None:
                return hit
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSON-tree exporter's unit)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class NoopSpan:
    """The do-nothing span handed out by a disabled tracer.

    Mutating methods discard their arguments; structural reads return
    empty values. A single module-level instance (:data:`NOOP_SPAN`)
    is shared by everyone, so the disabled path allocates nothing.
    """

    __slots__ = ()

    name = ""
    kind = ""
    status = "ok"
    start = 0.0
    end = 0.0
    duration = 0.0

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}

    @property
    def counters(self) -> Dict[str, float]:
        return {}

    @property
    def children(self) -> List[Span]:
        return []

    def add(self, counter: str, n: float = 1) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass

    def child(self, name: str, kind: str = "", attrs=None) -> "NoopSpan":
        return self

    def find(self, name: str) -> None:
        return None

    def walk(self):
        return iter(())

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NoopSpan()"


NOOP_SPAN = NoopSpan()


class Tracer:
    """Produces span trees; one per :class:`~repro.rdd.context.SJContext`.

    ``enabled`` is a plain mutable attribute: ``explain(analyze=True)``
    flips it on around one execution and restores it, and every layer
    holding a reference to the tracer (scheduler, engine, serve)
    observes the change because the object is shared, never copied.

    Completed *root* spans are kept in a bounded deque
    (``max_roots``); read them with :meth:`roots`, :meth:`last_root`.
    The current-span stack is thread-local.
    """

    def __init__(self, enabled: bool = True, max_roots: int = 64) -> None:
        self.enabled = enabled
        self._roots: "deque[Span]" = deque(maxlen=max_roots)
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span stack ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "",
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a span as a context manager.

        Nested calls on the same thread build the tree; the outermost
        span becomes a root and is retained. Disabled tracers yield
        the shared :data:`NOOP_SPAN` and record nothing.
        """
        if not self.enabled:
            yield NOOP_SPAN  # type: ignore[misc]
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(name, kind, attrs if attrs else None)
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        span.start = time.perf_counter()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end = time.perf_counter()
            stack.pop()
            if parent is None:
                with self._lock:
                    self._roots.append(span)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        kind: str = "",
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-elapsed region retroactively.

        ``start``/``end`` are ``perf_counter`` readings. Attached
        under ``parent`` when given, else under the thread's current
        span, else retained as a root. Returns :data:`NOOP_SPAN` when
        disabled.
        """
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        span = Span(name, kind, attrs if attrs else None)
        span.start = start
        span.end = end
        target = parent if parent is not None else self.current()
        if target is not None and not isinstance(target, NoopSpan):
            target.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        return span

    # -- retained roots ------------------------------------------------

    def roots(self) -> List[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def last_root(self) -> Optional[Span]:
        with self._lock:
            return self._roots[-1] if self._roots else None

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def __repr__(self) -> str:
        return f"Tracer(enabled={self.enabled}, roots={len(self._roots)})"
