"""Task executors: the simulated cluster.

The paper runs Spark over 10 worker nodes with 32 cores each. Here a
single machine stands in, with three interchangeable executors:

- :class:`SerialExecutor` — runs tasks in the driver, in order. The
  default: deterministic, zero overhead, ideal for tests.
- :class:`ThreadExecutor` — a thread pool. Python's GIL limits it for
  pure-Python work, but it exercises concurrent scheduling.
- :class:`ProcessExecutor` — a process pool; each worker process plays
  the role of a cluster node. Closures are shipped with cloudpickle
  (lambdas and nested functions are first-class in ScrubJay pipelines,
  which the stdlib pickler cannot serialize), partition data with the
  stdlib pickler.

All executors implement one method, :meth:`Executor.run_partition_tasks`,
which applies ``fn(index, items) -> items`` to every partition and
returns the transformed partitions in input order.
"""

from __future__ import annotations

import concurrent.futures
import os
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional

import cloudpickle

from repro.errors import ExecutorError
from repro.rdd.partition import Partition

PartitionFunc = Callable[[int, List[Any]], List[Any]]


class Executor(ABC):
    """Runs one task per partition and collects results in order."""

    #: number of simulated cluster nodes (1 for the serial executor)
    num_workers: int = 1

    @abstractmethod
    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        """Apply ``fn`` to every partition, returning new partitions."""

    def shutdown(self) -> None:
        """Release any worker resources. Idempotent."""


class SerialExecutor(Executor):
    """Run all tasks sequentially in the driver process."""

    num_workers = 1

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        return [Partition(p.index, fn(p.index, p.data)) for p in partitions]


class ThreadExecutor(Executor):
    """Run tasks on a shared thread pool."""

    def __init__(self, num_workers: Optional[int] = None) -> None:
        self.num_workers = num_workers or min(8, os.cpu_count() or 1)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="sj-worker"
        )

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        futures = [self._pool.submit(fn, p.index, p.data) for p in partitions]
        return [
            Partition(p.index, f.result())
            for p, f in zip(partitions, futures)
        ]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _invoke_pickled_task(payload: bytes) -> List[Any]:
    """Worker-side entry point for the no-fork fallback: unpickle
    (fn, index, items) and run it. The payload is cloudpickle-serialized
    to support lambdas and closures."""
    fn, index, items = cloudpickle.loads(payload)
    return fn(index, items)


# Stage state inherited by fork-per-stage workers (copy-on-write): the
# driver sets these immediately before forking the stage pool, so the
# workers see the task function and input partitions for free — no
# driver-side pickling of inputs. Only task *results* cross IPC, which
# plays the role of the network in the real system.
_STAGE_FN: Optional[PartitionFunc] = None
_STAGE_PARTITIONS: Optional[List[Partition]] = None


def _run_stage_task(index: int) -> List[Any]:
    assert _STAGE_FN is not None and _STAGE_PARTITIONS is not None
    p = _STAGE_PARTITIONS[index]
    return _STAGE_FN(p.index, p.data)


class ProcessExecutor(Executor):
    """Run tasks on a process pool — each process simulates a node.

    On platforms with ``fork`` (Linux), a fresh pool is forked per
    stage: the workers inherit the driver's memory copy-on-write, so
    task inputs (partitions, closures) ship for free and only results
    are pickled back. This mirrors Spark executors reading their map
    inputs locally and shuffling only outputs — without it, the driver
    serializing every input partition becomes a serial bottleneck that
    masks all scaling. Elsewhere, a persistent pool with cloudpickled
    payloads is used.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        self.num_workers = num_workers or min(8, os.cpu_count() or 1)
        import multiprocessing

        try:
            self._mp_ctx = multiprocessing.get_context("fork")
            self._use_fork = True
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._mp_ctx = multiprocessing.get_context()
            self._use_fork = False
        self._fallback_pool: Optional[
            concurrent.futures.ProcessPoolExecutor
        ] = None

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        if not partitions:
            return []
        if self._use_fork:
            return self._run_forked_stage(fn, partitions)
        return self._run_pickled(fn, partitions)

    def _run_forked_stage(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        global _STAGE_FN, _STAGE_PARTITIONS
        _STAGE_FN, _STAGE_PARTITIONS = fn, partitions
        try:
            workers = min(self.num_workers, len(partitions))
            with self._mp_ctx.Pool(processes=workers) as pool:
                results = pool.map(
                    _run_stage_task, range(len(partitions)), chunksize=1
                )
        except Exception as exc:
            if isinstance(exc, ExecutorError):
                raise
            # worker exceptions propagate as-is from pool.map; pool
            # breakage becomes an ExecutorError
            if "terminated" in str(exc).lower():
                raise ExecutorError(f"worker pool died: {exc}") from exc
            raise
        finally:
            _STAGE_FN = _STAGE_PARTITIONS = None
        return [
            Partition(p.index, r) for p, r in zip(partitions, results)
        ]

    def _run_pickled(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:  # pragma: no cover - non-POSIX fallback
        if self._fallback_pool is None:
            self._fallback_pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.num_workers, mp_context=self._mp_ctx
            )
        payloads = [
            cloudpickle.dumps((fn, p.index, p.data)) for p in partitions
        ]
        try:
            futures = [
                self._fallback_pool.submit(_invoke_pickled_task, payload)
                for payload in payloads
            ]
            return [
                Partition(p.index, f.result())
                for p, f in zip(partitions, futures)
            ]
        except concurrent.futures.process.BrokenProcessPool as exc:
            raise ExecutorError(f"worker pool died: {exc}") from exc

    def shutdown(self) -> None:
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown(wait=True)
            self._fallback_pool = None


class SimulatedClusterExecutor(Executor):
    """Deterministic cluster-timing simulation on one core.

    Machines with a single usable CPU (like CI containers) cannot show
    real multiprocess speedup, so strong-scaling studies use this
    executor instead: every task runs serially and is *timed*, then the
    stage's wall-clock on an ``num_workers``-node cluster is modelled
    as the critical path of a longest-processing-time assignment of
    tasks to workers. Time the driver spends *between* stages — the
    shuffle exchange — is charged serially, so scaling stays
    Amdahl-limited exactly like the shuffle-bound joins in the paper's
    Figure 3.

    Read :attr:`simulated_elapsed` after the job; call :meth:`reset`
    before starting a measurement.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        self.num_workers = num_workers or 1
        self.simulated_elapsed = 0.0
        self._last_return: Optional[float] = None

    def reset(self) -> None:
        self.simulated_elapsed = 0.0
        self._last_return = None

    def run_partition_tasks(
        self, fn: PartitionFunc, partitions: List[Partition]
    ) -> List[Partition]:
        import time

        now = time.perf_counter()
        if self._last_return is not None:
            # driver-side (serial) time since the previous stage ended:
            # shuffle regroup, lineage walking, result handling
            self.simulated_elapsed += now - self._last_return
        durations: List[float] = []
        out: List[Partition] = []
        for p in partitions:
            t0 = time.perf_counter()
            data = fn(p.index, p.data)
            durations.append(time.perf_counter() - t0)
            out.append(Partition(p.index, data))
        # LPT list scheduling onto the simulated workers
        loads = [0.0] * self.num_workers
        for d in sorted(durations, reverse=True):
            loads[loads.index(min(loads))] += d
        self.simulated_elapsed += max(loads) if durations else 0.0
        self._last_return = time.perf_counter()
        return out


_EXECUTOR_KINDS = {
    "serial": SerialExecutor,
    "threads": ThreadExecutor,
    "processes": ProcessExecutor,
    "simulated": SimulatedClusterExecutor,
}


def make_executor(kind: str, num_workers: Optional[int] = None) -> Executor:
    """Build an executor by name: ``serial``, ``threads`` or ``processes``."""
    try:
        cls = _EXECUTOR_KINDS[kind]
    except KeyError:
        raise ExecutorError(
            f"unknown executor kind {kind!r}; expected one of "
            f"{sorted(_EXECUTOR_KINDS)}"
        ) from None
    if cls is SerialExecutor:
        return cls()
    return cls(num_workers)
