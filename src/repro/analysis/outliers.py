"""Outlier ranking — how §7.2 spots AMG on rack 17.

"We sorted the results with respect to heat and quickly identified an
outlier": :func:`rank_groups` reproduces that workflow (rank groups by
an aggregate of a value field), and :func:`zscore_outliers` flags the
groups whose aggregate deviates beyond a z-score threshold.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.dataset import ScrubJayDataset
from repro.analysis.aggregate import group_aggregate


def rank_groups(
    dataset: ScrubJayDataset,
    group_fields: Sequence[str],
    value_field: str,
    how: str = "max",
    descending: bool = True,
) -> List[Tuple[Tuple, Any]]:
    """Groups sorted by their aggregated value, strongest first."""
    agg = group_aggregate(dataset, group_fields, value_field, how)
    return sorted(
        ((k, v) for k, v in agg.items() if v is not None),
        key=lambda kv: kv[1],
        reverse=descending,
    )


def zscore_outliers(
    dataset: ScrubJayDataset,
    group_fields: Sequence[str],
    value_field: str,
    how: str = "max",
    threshold: float = 2.0,
) -> List[Tuple[Tuple, float, float]]:
    """Groups whose aggregate deviates more than ``threshold`` standard
    deviations from the across-group mean.

    Returns ``(group, aggregate, zscore)`` sorted by |z| descending.
    """
    ranked = rank_groups(dataset, group_fields, value_field, how)
    values = [v for _k, v in ranked]
    if len(values) < 2:
        return []
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    if var == 0:
        return []
    std = math.sqrt(var)
    out = [
        (k, v, (v - mean) / std)
        for k, v in ranked
        if abs(v - mean) / std >= threshold
    ]
    return sorted(out, key=lambda t: abs(t[2]), reverse=True)
