"""Shuffle tuning: auto partition counts, skew splitting, hash
memoization, range sampling, and the union defensive copy."""

from __future__ import annotations

import operator
from collections import Counter

import pytest

from repro.rdd import AdaptiveConfig, SJContext
from repro.rdd.shuffle import portable_hash


@pytest.fixture()
def ctx():
    with SJContext(executor="serial", default_parallelism=4) as c:
        yield c


# ----------------------------------------------------------------------
# auto-selected reduce partition counts
# ----------------------------------------------------------------------

def test_explicit_partition_count_is_respected(ctx):
    pairs = [(i % 10, 1) for i in range(200)]
    r = ctx.parallelize(pairs, 4).reduceByKey(operator.add, 7)
    assert len(r._materialize()) == 7
    d = ctx.report.shuffles()[-1]
    assert d.requested_partitions == 7
    assert d.chosen_partitions == 7
    assert d.reason == "explicit"


def test_auto_partition_count_from_stats():
    cfg = AdaptiveConfig(target_partition_rows=50)
    with SJContext(executor="serial", default_parallelism=4,
                   adaptive=cfg) as ctx:
        pairs = [(i, 1) for i in range(400)]  # 400 distinct keys
        got = dict(ctx.parallelize(pairs, 4)
                   .reduceByKey(operator.add).collect())
        d = ctx.report.shuffles()[-1]
    assert got == {i: 1 for i in range(400)}
    assert d.requested_partitions is None
    assert d.chosen_partitions == 8  # 400 rows / 50 per partition
    assert "stats" in d.reason


def test_auto_partition_count_capped_by_distinct_keys():
    cfg = AdaptiveConfig(target_partition_rows=10)
    with SJContext(executor="serial", default_parallelism=4,
                   adaptive=cfg) as ctx:
        pairs = [(i % 3, 1) for i in range(300)]  # only 3 keys
        got = dict(ctx.parallelize(pairs, 4)
                   .reduceByKey(operator.add).collect())
        d = ctx.report.shuffles()[-1]
    assert got == {0: 100, 1: 100, 2: 100}
    assert d.chosen_partitions <= 3


def test_disabled_adaptive_uses_default_parallelism():
    with SJContext(executor="serial", default_parallelism=6,
                   adaptive=AdaptiveConfig(enabled=False)) as ctx:
        ctx.parallelize([(i, 1) for i in range(50)], 4) \
            .reduceByKey(operator.add).collect()
        d = ctx.report.shuffles()[-1]
    assert d.chosen_partitions == 6
    assert d.reason == "default-parallelism"


def test_shuffle_volume_reflects_map_side_combine(ctx):
    # 1000 records, 5 distinct keys, 4 map partitions: at most 20
    # combined pairs cross the exchange
    pairs = [(i % 5, 1) for i in range(1000)]
    got = dict(ctx.parallelize(pairs, 4).reduceByKey(operator.add)
               .collect())
    assert got == {k: 200 for k in range(5)}
    d = ctx.report.shuffles()[-1]
    assert d.input_rows == 1000
    assert d.shuffled_pairs <= 20
    assert ctx.report.shuffle_volume() == d.shuffled_pairs


# ----------------------------------------------------------------------
# skew splitting
# ----------------------------------------------------------------------

def _skew_ctx(**over):
    kw = dict(skew_min_pairs=50, skew_factor=2.0,
              target_partition_rows=100)
    kw.update(over)
    return SJContext(executor="serial", default_parallelism=4,
                     adaptive=AdaptiveConfig(**kw))


def test_skewed_bucket_is_split_and_result_correct():
    # skew is measured on post-combine pairs, so the realistic shape
    # is many distinct keys hash-colliding into one bucket: int keys
    # portable-hash to themselves, so multiples of 4 all hit bucket 0
    # of a 4-way shuffle
    pairs = [(4 * i, i) for i in range(300)] + \
        [(4 * i + r, i) for r in (1, 2, 3) for i in range(30)]
    with _skew_ctx() as ctx:
        r = ctx.parallelize(pairs, 4).groupByKey(4)
        got = {k: sorted(vs) for k, vs in r.collect()}
        d = ctx.report.shuffles()[-1]
    want: dict = {}
    for k, v in pairs:
        want.setdefault(k, []).append(v)
    want = {k: sorted(vs) for k, vs in want.items()}
    assert got == want
    assert d.skewed_buckets == [0], "the hot bucket must be detected"
    assert d.output_partitions > d.chosen_partitions


def test_single_hot_key_is_not_split():
    # one key = one combiner per map task; all land in one sub-bucket,
    # so the scheduler must detect the skew but fall through cleanly
    # (splitting one key would break the reduce-side merge)
    pairs = [("only", i) for i in range(500)]
    with _skew_ctx(skew_min_pairs=2) as ctx:
        got = ctx.parallelize(pairs, 4).groupByKey(3).collect()
        d = ctx.report.shuffles()[-1]
    assert len(got) == 1
    assert sorted(got[0][1]) == list(range(500))
    assert d.skewed_buckets, "the hot bucket is detected..."
    assert d.output_partitions == d.chosen_partitions  # ...but not split


def test_skew_split_keeps_equal_keys_together():
    # reduceByKey over a split bucket only merges correctly if equal
    # keys land in the same sub-bucket: 16 hot keys, all multiples of
    # 4, each repeated 125 times
    pairs = [(4 * (i % 16), 1) for i in range(2000)]
    with _skew_ctx() as ctx:
        got = dict(ctx.parallelize(pairs, 5).reduceByKey(operator.add, 4)
                   .collect())
        d = ctx.report.shuffles()[-1]
    assert got == {4 * k: 125 for k in range(16)}
    assert d.skewed_buckets == [0]
    assert d.output_partitions > d.chosen_partitions


def test_no_split_below_min_pairs():
    pairs = [(1, 1)] * 30 + [(2, 2)]  # lopsided but tiny
    with _skew_ctx(skew_min_pairs=1000) as ctx:
        ctx.parallelize(pairs, 2).groupByKey(2).collect()
        d = ctx.report.shuffles()[-1]
    assert d.skewed_buckets == []
    assert d.output_partitions == d.chosen_partitions


# ----------------------------------------------------------------------
# hash memoization (correctness under repeated composite keys)
# ----------------------------------------------------------------------

def test_composite_key_shuffle_matches_driver_oracle(ctx):
    # composite tuple keys repeated many times per map task exercise
    # the per-task bucket memoization; results must match a plain dict
    pairs = [
        ((f"node{i % 7}", i % 3), i) for i in range(600)
    ]
    want: dict = {}
    for k, v in pairs:
        want[k] = want.get(k, 0) + v
    got = dict(ctx.parallelize(pairs, 6).reduceByKey(operator.add)
               .collect())
    assert got == want


def test_memoized_bucketing_matches_portable_hash(ctx):
    # every key in one output partition must hash to that bucket —
    # memoization may only cache, never change, the routing
    pairs = [((i % 11, "x"), i) for i in range(300)]
    parts = ctx.parallelize(pairs, 4).reduceByKey(operator.add, 4) \
        ._materialize()
    for p in parts:
        for k, _v in p.data:
            assert portable_hash(k) % 4 == p.index


# ----------------------------------------------------------------------
# range-partition sampling (satellite fix)
# ----------------------------------------------------------------------

def test_sort_with_empty_partitions(ctx):
    # 3 elements over 1 source partition, sorted into 4: most range
    # buckets are empty and must not break sampling
    r = ctx.parallelize([3, 1, 2], 1).sortBy(lambda x: x, True, 4)
    assert r.collect() == [1, 2, 3]


def test_sort_all_source_partitions_empty(ctx):
    src = ctx.parallelize([1, 2], 2).filter(lambda x: x > 99)
    assert src.sortBy(lambda x: x).collect() == []


def test_sort_single_element(ctx):
    assert ctx.parallelize([42], 1).sortBy(lambda x: x).collect() == [42]


def test_sort_n1_output_partition(ctx):
    data = [5, 3, 9, 1, 7]
    r = ctx.parallelize(data, 3).sortBy(lambda x: x, True, 1)
    assert r.collect() == sorted(data)


def test_sort_descending(ctx):
    data = list(range(50))
    r = ctx.parallelize(data, 4).sortBy(lambda x: x, False, 3)
    assert r.collect() == sorted(data, reverse=True)


def test_sort_descending_with_duplicates_and_empties(ctx):
    data = [2, 2, 2, 1, 9, 9, 0]
    r = ctx.parallelize(data, 7).sortBy(lambda x: x, False, 5)
    assert r.collect() == sorted(data, reverse=True)


def test_sort_large_skewed_partitions(ctx):
    # one huge partition next to tiny ones: the fixed stride samples
    # each at its own rate instead of degenerating to every-row
    data = list(range(1000, 0, -1)) + [0]
    r = ctx.union([
        ctx.parallelize(data[:1000], 1),
        ctx.parallelize(data[1000:], 1),
    ]).sortBy(lambda x: x)
    assert r.collect() == sorted(data)


def test_sort_sampling_is_bounded():
    # the sample budget must be per-partition, independent of the
    # output partition count (the old formula over-sampled)
    from repro.rdd.plan import RANGE_SAMPLE_BUDGET
    calls = 0

    def key(x):
        nonlocal calls
        calls += 1
        return x

    with SJContext(executor="serial", default_parallelism=4) as ctx:
        data = list(range(10_000))
        ctx.parallelize(data, 2).sortBy(key, True, 64).collect()
    # sampling pass: at most budget+1 keys per source partition; the
    # map and sort passes then hash each row once or twice more
    sample_calls = calls - 2 * len(data)
    assert 0 < sample_calls <= 2 * (RANGE_SAMPLE_BUDGET + 1)


# ----------------------------------------------------------------------
# union defensive copy (satellite fix)
# ----------------------------------------------------------------------

def test_union_does_not_alias_persisted_parent(ctx):
    left = ctx.parallelize([1, 2, 3], 1).map(lambda x: x).persist()
    right = ctx.parallelize([4], 1)
    u = ctx.union([left, right])
    # a downstream op that mutates its input partitions in place must
    # not corrupt the persisted parent's cache
    u._materialize()[0].data.append(99)
    assert sorted(left.collect()) == [1, 2, 3]
    assert sorted(u.collect()) == [1, 2, 3, 4]


def test_union_repeated_same_parent(ctx):
    r = ctx.parallelize([1, 2], 2)
    u = ctx.union([r, r])
    assert sorted(u.collect()) == [1, 1, 2, 2]
    parts = u._materialize()
    assert [p.index for p in parts] == list(range(len(parts)))


def test_union_of_union_keeps_parents_intact(ctx):
    a = ctx.parallelize([1], 1).map(lambda x: x).persist()
    a.collect()
    before = [list(p.data) for p in a._materialize()]
    u = ctx.union([ctx.union([a, a]), a])
    for p in u._materialize():
        p.data.clear()
    assert [list(p.data) for p in a._materialize()] == before
