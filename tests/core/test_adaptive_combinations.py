"""Adaptive execution at the combination layer.

NaturalJoin routes through the adaptive join node, InterpolationJoin
may broadcast its binned right side; in both cases the physical
strategy must be invisible in the results and visible in the
ExecutionReport.
"""

from __future__ import annotations

import pytest

from repro.core.combinations import InterpolationJoin, NaturalJoin
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.rdd import SJContext
from repro.units.temporal import Timestamp

LEFT = Schema({
    "node": domain("compute nodes", "identifier"),
    "power": value("power", "watts"),
})
RIGHT = Schema({
    "node": domain("compute nodes", "identifier"),
    "rack": domain("racks", "identifier"),
})

TLEFT = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "power": value("power", "watts"),
})
TRIGHT = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})


def _shuffle_ctx():
    return SJContext(executor="serial", default_parallelism=4,
                     broadcast_threshold=0)


def _natural_rows():
    left = [{"node": n % 8, "power": float(n)} for n in range(200)]
    right = [{"node": n, "rack": 100 + n % 3} for n in range(8)]
    return left, right


def _run_natural(ctx, dictionary, left, right):
    lds = ScrubJayDataset.from_rows(ctx, left, LEFT, "l", 5)
    rds = ScrubJayDataset.from_rows(ctx, right, RIGHT, "r", 2)
    rows = NaturalJoin().apply(lds, rds, dictionary).collect()
    return sorted(rows, key=lambda r: (r["node"], r["power"]))


def test_natural_join_selects_broadcast_adaptively(ctx, dictionary):
    left, right = _natural_rows()
    _run_natural(ctx, dictionary, left, right)
    joins = ctx.report.joins()
    assert joins, "NaturalJoin must go through the adaptive planner"
    d = joins[-1]
    assert d.strategy == "broadcast"
    assert d.adaptive, "strategy must be *chosen*, not hardcoded"
    assert d.build_side == "right"  # 8 rows vs 200


def test_natural_join_same_rows_broadcast_vs_shuffle(ctx, dictionary):
    left, right = _natural_rows()
    adaptive = _run_natural(ctx, dictionary, left, right)
    assert ctx.report.broadcast_joins()
    with _shuffle_ctx() as sctx:
        shuffled = _run_natural(sctx, dictionary, left, right)
        assert sctx.report.joins()[-1].strategy == "shuffle"
        assert not sctx.report.broadcast_joins()
    assert adaptive == shuffled
    assert len(adaptive) == 200  # every left row matches one right row


def test_interp_join_broadcasts_small_bin_side(ctx, dictionary):
    lrows = [
        {"node": n % 2, "time": Timestamp(float(t)), "power": float(t)}
        for n in range(2) for t in range(0, 100, 5)
    ]
    rrows = [
        {"node": n, "time": Timestamp(float(t)), "temp": 20.0 + t}
        for n in range(2) for t in range(0, 100, 7)
    ]
    lds = ScrubJayDataset.from_rows(ctx, lrows, TLEFT, "l", 4)
    rds = ScrubJayDataset.from_rows(ctx, rrows, TRIGHT, "r", 4)
    out = InterpolationJoin(window=10.0).apply(lds, rds, dictionary)
    rows = out.collect()
    assert rows
    interp = [d for d in ctx.report.joins()
              if d.op == "interpolation_join"]
    assert interp and interp[-1].strategy == "broadcast"


def test_interp_join_same_rows_broadcast_vs_shuffle(dictionary):
    lrows = [
        {"node": n, "time": Timestamp(float(t)), "power": float(n + t)}
        for n in range(3) for t in range(0, 60, 4)
    ]
    rrows = [
        {"node": n, "time": Timestamp(float(t)), "temp": 20.0 + n + t}
        for n in range(3) for t in range(0, 60, 9)
    ]

    def run(ctx):
        lds = ScrubJayDataset.from_rows(ctx, lrows, TLEFT, "l", 4)
        rds = ScrubJayDataset.from_rows(ctx, rrows, TRIGHT, "r", 4)
        rows = InterpolationJoin(window=8.0).apply(
            lds, rds, dictionary
        ).collect()
        return sorted(
            rows, key=lambda r: (r["node"], r["time"].epoch)
        )

    with SJContext(executor="serial", default_parallelism=4) as bctx:
        broadcast = run(bctx)
        assert any(
            d.op == "interpolation_join" and d.strategy == "broadcast"
            for d in bctx.report.joins()
        )
    with _shuffle_ctx() as sctx:
        shuffled = run(sctx)
        assert any(
            d.op == "interpolation_join" and d.strategy == "shuffle"
            for d in sctx.report.joins()
        )
    assert broadcast == shuffled


def test_dataset_exposes_stats_and_report(ctx, dictionary):
    left, right = _natural_rows()
    lds = ScrubJayDataset.from_rows(ctx, left, LEFT, "l", 5)
    stats = lds.stats()
    assert stats.total_rows == 200
    assert stats.approx_bytes > 0
    assert lds.execution_report is ctx.report


def test_natural_join_report_disabled_cleanly(dictionary):
    from repro.rdd import AdaptiveConfig
    left, right = _natural_rows()
    with SJContext(executor="serial", default_parallelism=4,
                   adaptive=AdaptiveConfig(enabled=False)) as ctx:
        rows = _run_natural(ctx, dictionary, left, right)
        d = ctx.report.joins()[-1]
    assert d.strategy == "shuffle"
    assert not d.adaptive
    assert len(rows) == 200
