"""The analyst-facing query (paper §5.1).

Unlike traditional query languages of table names and columns, a
ScrubJay query names only *dimensions*: the domain dimensions of
interest (what entities the answer should relate — CPUs, racks, jobs)
and the value dimensions of interest (what measurements to attach —
temperatures, frequencies, heat), with optional units. The derivation
engine finds a sequence of derivations producing a dataset containing
a relation between all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError, QueryValidationError

ValueSpec = Union[str, Tuple[str, str]]

#: aggregation functions a Measure may request; mirrors
#: repro.analysis.aggregate._AGGREGATORS
MEASURE_HOWS = ("sum", "mean", "min", "max", "count", "p50", "p95")

_DURATION_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_duration(spec: Union[str, int, float]) -> float:
    """Parse a time-span spec — ``"30s"``, ``"15m"``, ``"1h"``,
    ``"1d"``, or plain seconds — into seconds."""
    if isinstance(spec, (int, float)):
        seconds = float(spec)
    else:
        text = str(spec).strip().lower()
        try:
            if text and text[-1] in _DURATION_SUFFIXES:
                seconds = float(text[:-1]) * _DURATION_SUFFIXES[text[-1]]
            else:
                seconds = float(text)
        except ValueError:
            raise QueryError(
                f"cannot parse duration {spec!r}; expected seconds or "
                "a number suffixed with s/m/h/d (e.g. '1h', '15m')"
            ) from None
    if seconds <= 0:
        raise QueryError(f"duration must be positive, got {spec!r}")
    return seconds


@dataclass(frozen=True)
class Measure:
    """One requested aggregate: a value dimension reduced with ``how``.

    ``how`` is one of sum/mean/min/max/count/p50/p95. ``window``
    (seconds) makes it a *windowed* measure: at each time bucket the
    aggregate covers the trailing window of buckets rather than just
    the bucket itself (requires a grain). A measure names a
    *dimension* like the rest of the query; the metrics layer resolves
    it to the answer schema's field.
    """

    dimension: str
    how: str = "mean"
    window: Optional[float] = None

    def __post_init__(self) -> None:
        if self.how not in MEASURE_HOWS:
            raise QueryError(
                f"unknown measure aggregation {self.how!r}; expected "
                f"one of {list(MEASURE_HOWS)}"
            )
        if self.window is not None:
            object.__setattr__(
                self, "window", parse_duration(self.window)
            )

    def key(self) -> str:
        """Stable result-column key, e.g. ``power_p95``."""
        base = f"{self.dimension}_{self.how}"
        if self.window is not None:
            base += f"_w{self.window:g}"
        return base

    def to_json_dict(self) -> dict:
        out: dict = {"dimension": self.dimension, "how": self.how}
        if self.window is not None:
            out["window"] = self.window
        return out

    @staticmethod
    def from_json_dict(d: dict) -> "Measure":
        return Measure(d["dimension"], d.get("how", "mean"),
                       d.get("window"))

    def __str__(self) -> str:
        s = f"{self.how}({self.dimension})"
        if self.window is not None:
            s += f" over {self.window:g}s"
        return s


@dataclass(frozen=True)
class Grain:
    """The time resolution of a metric answer: bucket width in seconds
    over a datetime domain dimension (default ``"time"``)."""

    seconds: float
    dimension: str = "time"

    def __post_init__(self) -> None:
        object.__setattr__(self, "seconds", parse_duration(self.seconds))

    @staticmethod
    def of(spec: Union[str, int, float],
           dimension: str = "time") -> "Grain":
        return Grain(parse_duration(spec), dimension)

    def divides(self, other: "Grain") -> bool:
        """True when buckets of this grain nest exactly into buckets
        of the (coarser or equal) ``other`` grain."""
        if self.dimension != other.dimension:
            return False
        ratio = other.seconds / self.seconds
        return abs(ratio - round(ratio)) < 1e-9 and round(ratio) >= 1

    def bucket(self, epoch: float) -> float:
        return (epoch // self.seconds) * self.seconds

    def to_json_dict(self) -> dict:
        return {"seconds": self.seconds, "dimension": self.dimension}

    @staticmethod
    def from_json_dict(d: dict) -> "Grain":
        return Grain(d["seconds"], d.get("dimension", "time"))

    def __str__(self) -> str:
        return f"{self.seconds:g}s/{self.dimension}"


@dataclass(frozen=True)
class ValueTerm:
    """One requested measurement: a dimension, optionally with units."""

    dimension: str
    units: Optional[str] = None

    def to_json_dict(self) -> dict:
        return {"dimension": self.dimension, "units": self.units}


@dataclass(frozen=True)
class FilterTerm:
    """One restriction on a queried dimension.

    Like the rest of the query, it names a *dimension*, not a field —
    the engine resolves it against the solved plan's schema and appends
    the corresponding filter derivation (which the pushdown rewrite
    then collapses into the leaf scans). ``op`` is ``"eq"`` (field ==
    value) or ``"range"`` (low ≤ field < high, either bound optional).
    """

    dimension: str
    op: str = "eq"
    value: object = None
    low: Optional[float] = None
    high: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in ("eq", "range"):
            raise QueryError(f"unknown filter op {self.op!r}")
        if self.op == "range" and self.low is None and self.high is None:
            raise QueryError(
                "a range filter needs at least one of low/high"
            )

    def to_json_dict(self) -> dict:
        out: dict = {"dimension": self.dimension, "op": self.op}
        if self.op == "eq":
            out["value"] = self.value
        else:
            out["low"] = self.low
            out["high"] = self.high
        return out

    @staticmethod
    def from_json_dict(d: dict) -> "FilterTerm":
        return FilterTerm(
            d["dimension"],
            d.get("op", "eq"),
            d.get("value"),
            d.get("low"),
            d.get("high"),
        )

    def __str__(self) -> str:
        if self.op == "eq":
            return f"{self.dimension} == {self.value!r}"
        lo = "" if self.low is None else f"{self.low} <= "
        hi = "" if self.high is None else f" < {self.high}"
        return f"{lo}{self.dimension}{hi}"


@dataclass(frozen=True)
class Query:
    """A set of domain dimensions and value dimensions of interest.

    Example — the paper's §7.2 heat query::

        Query(domains=("jobs", "racks"),
              values=("applications", "heat"))
    """

    domains: Tuple[str, ...]
    values: Tuple[ValueTerm, ...]
    #: optional restrictions on dimensions; the engine appends them to
    #: the solved plan (and the pushdown rewrite collapses them into
    #: the leaf scans). Default empty keeps pre-filter queries —
    #: including their JSON form and fingerprints — unchanged.
    filters: Tuple[FilterTerm, ...] = ()
    #: optional metric terms (see repro.metrics): requested aggregates,
    #: grouping domain dimensions, and time grain. All default-empty so
    #: plain queries serialize (and hash) exactly as before.
    measures: Tuple[Measure, ...] = ()
    per: Tuple[str, ...] = ()
    grain: Optional[Grain] = None

    @staticmethod
    def of(
        domains: Sequence[str],
        values: Sequence[ValueSpec],
        filters: Sequence[FilterTerm] = (),
        measures: Sequence[Measure] = (),
        per: Sequence[str] = (),
        grain: Optional[Grain] = None,
    ) -> "Query":
        """Build a query from plain strings / (dimension, units) pairs."""
        if not domains:
            raise QueryError("a query needs at least one domain dimension")
        if not values:
            raise QueryError("a query needs at least one value dimension")
        terms: List[ValueTerm] = []
        for v in values:
            if isinstance(v, str):
                terms.append(ValueTerm(v))
            else:
                dim, units = v
                terms.append(ValueTerm(dim, units))
        return Query(tuple(domains), tuple(terms), tuple(filters),
                     tuple(measures), tuple(per), grain)

    @property
    def is_metric(self) -> bool:
        """True when the query carries measure terms and should be
        answered by the metrics layer (bucket + aggregate), not as a
        raw relation."""
        return bool(self.measures)

    def base(self) -> "Query":
        """The raw relational part — what the derivation engine solves.
        Identity for plain queries."""
        if not self.is_metric:
            return self
        return Query(self.domains, self.values, self.filters)

    def validate(self, dictionary) -> None:
        """Check every referenced dimension/unit keyword exists."""
        for dim in self.domains:
            if not dictionary.has_dimension(dim):
                raise QueryError(f"unknown domain dimension {dim!r}")
        for term in self.values:
            if not dictionary.has_dimension(term.dimension):
                raise QueryError(
                    f"unknown value dimension {term.dimension!r}"
                )
            if term.units is not None and not dictionary.has_unit(term.units):
                raise QueryError(f"unknown units {term.units!r}")
        for flt in self.filters:
            if not dictionary.has_dimension(flt.dimension):
                raise QueryError(
                    f"unknown filter dimension {flt.dimension!r}"
                )
            if flt.op == "range" and \
                    not dictionary.dimension(flt.dimension).ordered:
                raise QueryError(
                    f"range filter on unordered dimension "
                    f"{flt.dimension!r}"
                )
        for m in self.measures:
            if not dictionary.has_dimension(m.dimension):
                raise QueryError(
                    f"unknown measure dimension {m.dimension!r}"
                )
        for dim in self.per:
            if not dictionary.has_dimension(dim):
                raise QueryError(f"unknown per dimension {dim!r}")
        if self.grain is not None and \
                not dictionary.has_dimension(self.grain.dimension):
            raise QueryError(
                f"unknown grain dimension {self.grain.dimension!r}"
            )

    def value_dimensions(self) -> List[str]:
        return [t.dimension for t in self.values]

    def to_json_dict(self) -> dict:
        out = {
            "domains": list(self.domains),
            "values": [t.to_json_dict() for t in self.values],
        }
        # Only present when used, so unfiltered queries serialize (and
        # hash, e.g. for serve-layer plan keys) exactly as before.
        if self.filters:
            out["filters"] = [f.to_json_dict() for f in self.filters]
        # Likewise metric terms: absent keys keep plain-query JSON
        # (and every derived cache key) byte-identical.
        if self.measures:
            out["measures"] = [m.to_json_dict() for m in self.measures]
            if self.per:
                out["per"] = list(self.per)
            if self.grain is not None:
                out["grain"] = self.grain.to_json_dict()
        return out

    @staticmethod
    def from_json_dict(d: dict) -> "Query":
        grain = d.get("grain")
        return Query(
            tuple(d["domains"]),
            tuple(
                ValueTerm(t["dimension"], t.get("units"))
                for t in d["values"]
            ),
            tuple(
                FilterTerm.from_json_dict(f)
                for f in d.get("filters", ())
            ),
            tuple(
                Measure.from_json_dict(m)
                for m in d.get("measures", ())
            ),
            tuple(d.get("per", ())),
            Grain.from_json_dict(grain) if grain else None,
        )

    def __str__(self) -> str:
        vals = ", ".join(
            t.dimension + (f" [{t.units}]" if t.units else "")
            for t in self.values
        )
        out = f"Query(domains: {', '.join(self.domains)}; values: {vals}"
        if self.filters:
            out += "; where: " + ", ".join(str(f) for f in self.filters)
        if self.measures:
            out += "; measures: " + ", ".join(
                str(m) for m in self.measures
            )
            if self.per:
                out += "; per: " + ", ".join(self.per)
            if self.grain is not None:
                out += f"; grain: {self.grain}"
        return out + ")"


class QueryBuilder:
    """Fluent construction of a :class:`Query`.

    The builder is the primary analyst-facing way to phrase a
    question::

        q = (session.query()
             .across("jobs", "racks")
             .value("heat", units="W")
             .build())

    Each call appends and returns the builder; :meth:`build` freezes
    the accumulated terms into the immutable :class:`Query`
    (``Query.of`` remains as a thin one-shot delegate). Builders
    handed out by :meth:`ScrubJaySession.query` are session-bound and
    additionally offer the terminals :meth:`plan`, :meth:`ask`, and
    :meth:`explain`, which build and immediately hand the query to
    the session.
    """

    def __init__(self, session=None) -> None:
        self._session = session
        self._domains: List[str] = []
        self._values: List[ValueTerm] = []
        self._filters: List[FilterTerm] = []
        self._measures: List[Measure] = []
        self._per: List[str] = []
        self._grain: Optional[Grain] = None

    # -- accumulation --------------------------------------------------

    def across(self, *domains: str) -> "QueryBuilder":
        """Add domain dimensions the answer must relate."""
        self._domains.extend(domains)
        return self

    def value(
        self, dimension: str, units: Optional[str] = None
    ) -> "QueryBuilder":
        """Add one value dimension, optionally with requested units."""
        self._values.append(ValueTerm(dimension, units))
        return self

    def values(self, *dimensions: str) -> "QueryBuilder":
        """Add several value dimensions (default units)."""
        self._values.extend(ValueTerm(d) for d in dimensions)
        return self

    def where(
        self,
        dimension: str,
        equals: object = None,
        at_least: Optional[float] = None,
        below: Optional[float] = None,
        between: Optional[Tuple[float, float]] = None,
    ) -> "QueryBuilder":
        """Restrict a dimension: ``equals=`` for exact match, or
        ``at_least=``/``below=``/``between=(lo, hi)`` for a half-open
        range ``lo ≤ x < hi`` on an ordered dimension. The engine
        resolves the dimension against the answer's schema and the
        pushdown rewrite carries the restriction into the leaf scans.
        """
        range_args = [at_least, below, between]
        if equals is not None and any(a is not None for a in range_args):
            raise QueryError(
                "where() takes either equals= or range bounds, not both"
            )
        if between is not None and (at_least is not None
                                    or below is not None):
            raise QueryError(
                "where() takes either between= or at_least=/below=, "
                "not both"
            )
        if equals is not None:
            self._filters.append(FilterTerm(dimension, "eq", equals))
            return self
        if between is not None:
            at_least, below = between
        if at_least is None and below is None:
            raise QueryError(
                "where() needs equals=, at_least=, below=, or between="
            )
        # Timestamps compare by epoch in filter_range; accept them here.
        low = getattr(at_least, "epoch", at_least)
        high = getattr(below, "epoch", below)
        self._filters.append(FilterTerm(dimension, "range", None, low, high))
        return self

    # -- metric terms (see repro.metrics) ------------------------------

    def measure(
        self,
        dimension: str,
        how: str = "mean",
        window: Optional[Union[str, float]] = None,
    ) -> "QueryBuilder":
        """Request an aggregate of a value dimension: ``how`` is one of
        sum/mean/min/max/count/p50/p95; ``window`` (``"5m"``-style or
        seconds) makes it a trailing-window measure over the grain."""
        self._measures.append(Measure(dimension, how, window))
        return self

    def per(self, *dimensions: str) -> "QueryBuilder":
        """Group the measures per these domain dimensions (e.g.
        ``.per("rack")`` for per-rack aggregates)."""
        self._per.extend(dimensions)
        return self

    def grain(
        self,
        spec: Union[str, int, float],
        dimension: str = "time",
    ) -> "QueryBuilder":
        """Bucket the measures at this time resolution (``"1h"``,
        ``"15m"``, or seconds) over a datetime domain dimension."""
        self._grain = Grain.of(spec, dimension)
        return self

    # -- terminals -----------------------------------------------------

    def build(self) -> Query:
        """Freeze into an immutable :class:`Query`.

        Raises :class:`~repro.errors.QueryValidationError` (naming the
        missing clause) on an empty builder and on inconsistent metric
        terms — instead of failing deep in the engine."""
        if (self._per or self._grain is not None) and not self._measures:
            raise QueryValidationError(
                "per()/grain() shape measures, but no .measure(...) "
                "was added",
                clause="measure",
            )
        domains = list(self._domains)
        for dim in self._per:
            if dim not in domains:
                domains.append(dim)
        values = list(self._values)
        if self._measures:
            if self._grain is not None and \
                    self._grain.dimension not in domains:
                domains.append(self._grain.dimension)
            have = {t.dimension for t in values}
            for m in self._measures:
                if m.dimension not in have:
                    values.append(ValueTerm(m.dimension))
                    have.add(m.dimension)
            if self._grain is None and \
                    any(m.window is not None for m in self._measures):
                raise QueryValidationError(
                    "a windowed measure needs a time grain; add "
                    ".grain('1h') (or similar)",
                    clause="grain",
                )
        if not domains:
            raise QueryValidationError(
                "query has no domain dimensions; add .across(...) "
                "(or .per(...) for a metric query)",
                clause="across",
            )
        if not values:
            raise QueryValidationError(
                "query has no value dimensions; add .value(...) or "
                ".measure(...)",
                clause="value",
            )
        # filters may name columns the query does not select (the
        # engine resolves them against the answer's schema at plan
        # time), so no mention check here
        return Query(
            tuple(domains), tuple(values), tuple(self._filters),
            tuple(self._measures), tuple(self._per), self._grain,
        )

    def _require_session(self, what: str):
        if self._session is None:
            raise QueryError(
                f"this builder is not bound to a session; build() the "
                f"query and pass it to a session to {what} it"
            )
        return self._session

    def plan(self):
        """Build and plan (but do not execute) via the bound session."""
        return self._require_session("plan").plan(self.build())

    def ask(self):
        """Build, plan, and execute via the bound session; returns the
        session's :class:`~repro.core.answer.Answer`."""
        return self._require_session("ask").ask(self.build())

    def explain(self, analyze: bool = False) -> str:
        """Build and render the plan via the bound session (optionally
        EXPLAIN ANALYZE — see :meth:`ScrubJaySession.explain`)."""
        return self._require_session("explain").explain(
            self.build(), analyze=analyze
        )

    def __repr__(self) -> str:
        vals = ", ".join(
            t.dimension + (f"[{t.units}]" if t.units else "")
            for t in self._values
        )
        return (
            f"QueryBuilder(across: {', '.join(self._domains) or '-'}; "
            f"values: {vals or '-'})"
        )
