"""Fleet-wide profile convergence: shards plan with the router's knobs.

A sharded fleet in which one shard broadcasts where another shuffles
gives inconsistent per-shard timings and (with skewed placements)
inconsistent latency cliffs — so a router-side knob change must reach
every shard process, and the sync round must *prove* it did.
"""

from __future__ import annotations

from repro import ScrubJaySession, TuningProfile
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)


def make_router(profile=None, shards=2):
    sj = ScrubJaySession(profile or TuningProfile())
    left, right = keyed_tables(48, num_keys=4)
    sj.register_rows(left, KEYED_LEFT_SCHEMA, name="samples")
    sj.register_rows(right, KEYED_RIGHT_SCHEMA, name="lookup")
    router = sj.serve(shards=shards, num_workers=1)
    return sj, router


def shard_profiles(router):
    """Each live shard's profile block, via the public metrics op."""
    out = []
    for handle in router._each_handle():
        resp = handle.request({"op": "metrics"})
        assert resp.get("ok")
        out.append(resp["metrics"]["profile"])
    return out


def test_fleet_converges_to_one_profile_version():
    sj, router = make_router()
    try:
        # a router-side tuned adjustment (what the online tuner does)
        sj.profile.tune("adaptive.broadcast_threshold_bytes", 4096)
        router.push_profile()  # raises ShardStateError on divergence
        profiles = shard_profiles(router)
        versions = {p["version"] for p in profiles}
        assert len(versions) == 1, f"fleet diverged: {versions}"
        for p in profiles:
            knob = p["knobs"]["adaptive.broadcast_threshold_bytes"]
            assert knob == {"value": 4096, "provenance": "tuned"}
    finally:
        router.close()
        sj.close()


def test_knob_change_auto_pushes_without_explicit_sync():
    """The router registers a profile listener: tuning a knob reaches
    the fleet without any explicit push/mutation in between."""
    sj, router = make_router()
    try:
        sj.profile.tune("adaptive.broadcast_threshold_bytes", 2048)
        values = {
            p["knobs"]["adaptive.broadcast_threshold_bytes"]["value"]
            for p in shard_profiles(router)
        }
        assert values == {2048}
    finally:
        router.close()
        sj.close()


def test_shards_inherit_router_planner_knobs_at_fork():
    """User-pinned engine/adaptive knobs travel in the fork config, so
    a shard plans like the router from its very first query."""
    sj, router = make_router(profile=TuningProfile(
        columnar=True, broadcast_threshold=1 << 10))
    try:
        for p in shard_profiles(router):
            assert p["knobs"]["engine.columnar"]["value"] is True
            assert p["knobs"]["adaptive.broadcast_threshold_bytes"] == {
                "value": 1 << 10, "provenance": "user-pinned",
            }
    finally:
        router.close()
        sj.close()
