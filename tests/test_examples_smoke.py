"""Smoke tests keeping the runnable examples runnable.

Each example is executed as a subprocess, exactly as the README tells
users to run it; a non-zero exit (import error, API drift, assertion
inside the example) fails the suite. The two heavyweight case-study
examples are covered by the integration tests and the Figure 4/6
benchmarks instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

FAST_EXAMPLES = [
    "quickstart.py",
    "reproducible_pipeline.py",
    "nosql_ingestion.py",
    "dashboard_metrics.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"


def test_every_example_has_a_docstring_and_main():
    for name in os.listdir(EXAMPLES_DIR):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(EXAMPLES_DIR, name)) as f:
            text = f.read()
        assert '"""' in text.split("\n", 2)[-1] or text.startswith(
            '#!'
        ), f"{name} lacks a docstring"
        assert 'if __name__ == "__main__":' in text, (
            f"{name} is not runnable as a script"
        )
