"""CSV files as byte-range-partitioned data sources.

The driver reads the header line and the file size, then aligns naive
byte-range boundaries to true record starts with a single quote-parity
pass over the data region: a newline only ends a record when it falls
outside quoted cells, so boundaries never split a quoted field and
never sit ambiguously on a row boundary. Each scan partition owns the
half-open byte range between two aligned boundaries and is decoded
worker-side; readers seek straight to ``start`` (always a record
start) and parse quote-aware records until the range is exhausted.
Quoted cells containing embedded newlines are handled exactly — a
record spanning lines is accumulated until its quotes balance.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.errors import FeedRewoundError, SourceError
from repro.sources.base import DataSource
from repro.sources.predicate import ColumnPredicate
from repro.wrappers.codec import decode_value


class CSVSource(DataSource):
    """Read a headered CSV file lazily, one byte range per partition."""

    def __init__(
        self,
        path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        name: Optional[str] = None,
        num_partitions: int = 4,
        end_offset: Optional[int] = None,
    ) -> None:
        self.path = path
        self._schema = schema
        self.dictionary = dictionary
        self.name = name or path
        self.num_partitions_hint = max(1, num_partitions)
        #: frozen byte bound for `bounded()` snapshots (None = live file)
        self.end_offset = end_offset
        self._layout: Optional[Tuple[List[str], int, int]] = None
        self._ranges: Optional[List[Tuple[int, int]]] = None

    def schema(self) -> Schema:
        return self._schema

    # -- driver side ---------------------------------------------------

    def _read_layout(self) -> Tuple[List[str], int, int]:
        """(header columns, data start offset, file size)."""
        if self._layout is not None:
            return self._layout
        try:
            size = os.path.getsize(self.path)
            with open(self.path, "rb") as f:
                header_line = f.readline()
                data_start = f.tell()
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        if self.end_offset is not None:
            size = min(size, self.end_offset)
        text = header_line.decode("utf-8").rstrip("\r\n")
        if not text:
            raise SourceError(f"{self.path}: empty CSV (no header)")
        header = next(csv.reader([text]))
        if not any(c in self._schema for c in header):
            raise SourceError(
                f"{self.path}: no CSV column matches the schema "
                f"fields {self._schema.fields()}"
            )
        self._layout = (header, data_start, size)
        return self._layout

    def partitions(self) -> Sequence[Tuple[int, int]]:
        if self._ranges is not None:
            return self._ranges
        _header, data_start, size = self._read_layout()
        span = max(0, size - data_start)
        n = self.num_partitions_hint
        if span == 0:
            self._ranges = [(data_start, data_start)]
            return self._ranges
        n = min(n, span)
        step = -(-span // n)
        naive = list(range(data_start + step, size, step))
        aligned = self._align_to_record_starts(naive, data_start, size)
        ranges: List[Tuple[int, int]] = []
        prev = data_start
        for bound in aligned + [size]:
            ranges.append((prev, bound))
            prev = bound
        self._ranges = ranges
        return self._ranges

    def _align_to_record_starts(
        self, targets: List[int], data_start: int, size: int
    ) -> List[int]:
        """Snap each naive boundary to the first true record start at or
        after it (one sequential quote-parity pass; boundaries beyond
        the last newline snap to end-of-file)."""
        if not targets:
            return []
        aligned: List[int] = []
        ti = 0
        parity = 0
        pos = data_start
        chunk_size = 1 << 16
        try:
            with open(self.path, "rb") as f:
                f.seek(data_start)
                while ti < len(targets) and pos < size:
                    chunk = f.read(chunk_size)
                    if not chunk:
                        break
                    if parity == 0 and b'"' not in chunk:
                        # quote-free chunk: every newline ends a record
                        while ti < len(targets):
                            scan_from = max(0, targets[ti] - pos - 1)
                            idx = chunk.find(b"\n", scan_from)
                            if idx < 0:
                                break
                            start = pos + idx + 1
                            while ti < len(targets) and \
                                    targets[ti] <= start:
                                aligned.append(start)
                                ti += 1
                    else:
                        for off, byte in enumerate(chunk):
                            if byte == 0x22:  # '"'
                                parity ^= 1
                            elif byte == 0x0A and parity == 0:
                                start = pos + off + 1
                                while ti < len(targets) and \
                                        targets[ti] <= start:
                                    aligned.append(start)
                                    ti += 1
                                if ti >= len(targets):
                                    break
                    pos += len(chunk)
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        aligned.extend(size for _ in range(len(targets) - ti))
        return aligned

    # -- worker side ---------------------------------------------------

    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        rows, _ = self.read_partition_stats(index, columns, predicate)
        return rows

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        header, _data_start, _size = self._read_layout()
        start, end = self.partitions()[index]
        known = [c for c in header if c in self._schema]
        if columns is None:
            decoded_cols = known
        else:
            need = set(columns)
            if predicate is not None:
                need.update(predicate.columns())
            decoded_cols = [c for c in known if c in need]
        wanted = None if columns is None else set(columns)

        out: List[Dict[str, Any]] = []
        rows_read = 0
        try:
            with open(self.path, "rb") as f:
                f.seek(start)  # aligned boundaries are record starts
                while f.tell() < end:
                    raw = f.readline()
                    if not raw:
                        break
                    # a quoted cell may span lines: keep reading until
                    # the record's quotes balance
                    while raw.count(b'"') % 2 == 1:
                        cont = f.readline()
                        if not cont:
                            break
                        raw += cont
                    text = raw.decode("utf-8")
                    if text.endswith("\n"):
                        text = text[:-1]
                    if text.endswith("\r"):
                        text = text[:-1]
                    if not text:
                        continue
                    fields = next(csv.reader([text]))
                    record = dict(zip(header, fields))
                    rows_read += 1
                    row: Dict[str, Any] = {}
                    for col in decoded_cols:
                        value = decode_value(
                            record.get(col), self._schema[col],
                            self.dictionary,
                        )
                        if value is not None:
                            row[col] = value
                    if not row:
                        continue
                    if predicate is not None and not predicate.matches(row):
                        continue
                    if wanted is not None:
                        row = {k: v for k, v in row.items() if k in wanted}
                        if not row:
                            continue
                    out.append(row)
                consumed = f.tell() - start
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        return out, {
            "rows_read": rows_read,
            "bytes_scanned": max(0, consumed),
        }

    # -- append capability (tailing a growing file) --------------------

    def supports_append(self) -> bool:
        return self.end_offset is None

    def refresh(self) -> None:
        """Forget cached layout/ranges so new appends are visible."""
        self._layout = None
        self._ranges = None

    def current_offset(self) -> int:
        """Byte offset just past the last *committed* record."""
        _rows, offset = self.append_scan(None, None)
        return offset

    def bounded(self, offset: int) -> "CSVSource":
        """A frozen byte-clamped view over ``[header, offset)`` — no
        materialization; partition ranges are computed inside the
        clamp. ``offset`` must be a committed record boundary (as
        returned by :meth:`append_scan`)."""
        snap = CSVSource(
            self.path, self._schema, self.dictionary, name=self.name,
            num_partitions=self.num_partitions_hint, end_offset=offset,
        )
        return snap

    def tail(
        self,
        since_offset: Optional[int] = None,
        until_offset: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Alias for :meth:`append_scan` — tail a growing CSV file."""
        return self.append_scan(since_offset, until_offset)

    def append_scan(
        self,
        since_offset: Optional[int] = None,
        until_offset: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Decode rows committed in ``[since_offset, until_offset)``.

        A record is *committed* only when it is newline-terminated with
        balanced quotes — a torn final line (a writer mid-append) or a
        quoted cell whose closing quote has not landed yet is left for
        the next scan and the returned offset stops before it, so no
        row is ever delivered twice or split across scans.
        """
        # re-stat fresh: the cached layout is for frozen scan planning
        self._layout = None
        self._ranges = None
        header, data_start, size = self._read_layout()
        start = data_start if since_offset is None else since_offset
        if start > size:
            raise FeedRewoundError(
                f"{self.path}: tail offset {start} is beyond the file "
                f"end {size} (file truncated or rewritten?)",
                since_offset=start, current_offset=size,
            )
        if until_offset is not None and until_offset > size:
            raise FeedRewoundError(
                f"{self.path}: requested bound {until_offset} is beyond "
                f"the file end {size}",
                since_offset=start, current_offset=size,
            )
        bound = size if until_offset is None else until_offset
        known = [c for c in header if c in self._schema]
        out: List[Dict[str, Any]] = []
        committed = start
        try:
            with open(self.path, "rb") as f:
                f.seek(start)
                while f.tell() < bound:
                    raw = f.readline()
                    if not raw:
                        break
                    while raw.count(b'"') % 2 == 1:
                        cont = f.readline()
                        if not cont:
                            break
                        raw += cont
                    if raw.count(b'"') % 2 == 1 or \
                            not raw.endswith(b"\n"):
                        break  # torn record: writer not done yet
                    if f.tell() > bound:
                        break  # record straddles the requested bound
                    text = raw.decode("utf-8").rstrip("\r\n")
                    committed = f.tell()
                    if not text:
                        continue
                    fields = next(csv.reader([text]))
                    record = dict(zip(header, fields))
                    row: Dict[str, Any] = {}
                    for col in known:
                        value = decode_value(
                            record.get(col), self._schema[col],
                            self.dictionary,
                        )
                        if value is not None:
                            row[col] = value
                    if row:
                        out.append(row)
        except OSError as exc:
            raise SourceError(f"cannot read {self.path}: {exc}") from exc
        return out, committed
