"""The lazy, partitioned, lineage-tracked dataset (a ScrubJayRDD).

Mirrors the Spark RDD programming model the paper builds on (§4.1):
transformations are *lazy* — they only record lineage — and actions
(``collect``, ``count``, ``reduce``, …) trigger evaluation. Narrow
transformations pipeline inside a partition; key-based transformations
introduce a shuffle and split the lineage into stages (see
:mod:`repro.rdd.plan` for the scheduler).

Rows in ScrubJay are variable-length named tuples, represented here as
plain dicts; the RDD itself is agnostic to element type.
"""

from __future__ import annotations

import builtins
import random
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.rdd.partition import Partition

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdd.context import SJContext
    from repro.rdd.stats import RDDStats


class RDD:
    """Base class: holds context, lineage, and persistence state.

    Subclasses define how their partitions derive from their parents';
    the scheduler in :mod:`repro.rdd.plan` interprets the lineage.
    """

    def __init__(self, ctx: "SJContext") -> None:
        self.ctx = ctx
        self._persist = False
        self._cached: Optional[List[Partition]] = None
        #: sampled statistics, cached once collected (see RDD.stats);
        #: safe to cache because lineage is immutable and deterministic
        self._stats: Optional["RDDStats"] = None

    # ------------------------------------------------------------------
    # lineage interface (overridden by subclasses)
    # ------------------------------------------------------------------

    def parents(self) -> List["RDD"]:
        """Immediate lineage parents."""
        return []

    def num_partitions(self) -> int:
        raise NotImplementedError

    def toDebugString(self) -> str:
        """Render the lineage tree, one RDD per line (Spark parity).

        Useful when a fault-tolerance log names a replayed stage and
        you want to see which lineage it re-executed. Cached RDDs are
        marked — they are replay barriers: recovery never recomputes
        above a materialized cache.
        """
        lines: List[str] = []

        def walk(rdd: "RDD", depth: int) -> None:
            mark = " [cached]" if rdd.is_cached else ""
            lines.append(
                f"{'  ' * depth}{type(rdd).__name__}"
                f"[{rdd.num_partitions()}]{mark}"
            )
            for parent in rdd.parents():
                walk(parent, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def persist(self) -> "RDD":
        """Cache this RDD's partitions on first materialization."""
        self._persist = True
        return self

    cache = persist

    def unpersist(self) -> "RDD":
        """Drop any cached partitions and stop caching."""
        self._persist = False
        self._cached = None
        self._stats = None
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached is not None

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------

    def mapPartitionsWithIndex(
        self, fn: Callable[[int, List[Any]], List[Any]]
    ) -> "RDD":
        """Apply ``fn(index, items) -> items`` to each partition."""
        return MappedPartitionsRDD(self, fn)

    def mapPartitions(self, fn: Callable[[List[Any]], List[Any]]) -> "RDD":
        return self.mapPartitionsWithIndex(lambda _i, items: fn(items))

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.mapPartitionsWithIndex(
            lambda _i, items: [fn(x) for x in items]
        )

    def flatMap(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.mapPartitionsWithIndex(
            lambda _i, items: [y for x in items for y in fn(x)]
        )

    def filter(self, fn: Callable[[Any], bool]) -> "RDD":
        return self.mapPartitionsWithIndex(
            lambda _i, items: [x for x in items if fn(x)]
        )

    def glom(self) -> "RDD":
        """Collapse each partition into a single list element."""
        return self.mapPartitionsWithIndex(lambda _i, items: [list(items)])

    def keyBy(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda x: (fn(x), x))

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def mapValues(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def flatMapValues(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.flatMap(lambda kv: [(kv[0], v) for v in fn(kv[1])])

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli sample; deterministic given ``seed``."""

        def _sample(index: int, items: List[Any]) -> List[Any]:
            rng = random.Random(seed * 1_000_003 + index)
            return [x for x in items if rng.random() < fraction]

        return self.mapPartitionsWithIndex(_sample)

    # ------------------------------------------------------------------
    # structural transformations
    # ------------------------------------------------------------------

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle."""
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute elements round-robin over ``num_partitions``
        (incurs a shuffle)."""
        return RepartitionedRDD(self, num_partitions)

    # ------------------------------------------------------------------
    # shuffle (key-based) transformations
    # ------------------------------------------------------------------

    def combineByKey(
        self,
        create: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """The single shuffle primitive all key-based ops build on.

        Performs a map-side combine per partition (Spark's combiner
        optimization), shuffles the partial combiners by key, and
        merges them on the reduce side, yielding ``(key, combiner)``
        pairs.

        With ``num_partitions=None`` the reduce partition count is
        chosen at run time from input statistics (rows per partition
        target, capped by the distinct-key estimate) when the context
        has adaptive execution enabled; otherwise it falls back to
        ``ctx.default_parallelism``.
        """
        return ShuffledRDD(
            self,
            num_partitions,
            create,
            merge_value,
            merge_combiners,
        )

    def reduceByKey(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        return self.combineByKey(lambda v: v, fn, fn, num_partitions)

    def groupByKey(self, num_partitions: Optional[int] = None) -> "RDD":
        def _extend(acc: List[Any], acc2: List[Any]) -> List[Any]:
            acc.extend(acc2)
            return acc

        def _append(acc: List[Any], v: Any) -> List[Any]:
            acc.append(v)
            return acc

        return self.combineByKey(
            lambda v: [v], _append, _extend, num_partitions
        )

    def aggregateByKey(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        import copy

        return self.combineByKey(
            lambda v: seq_fn(copy.deepcopy(zero), v),
            seq_fn,
            comb_fn,
            num_partitions,
        )

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        return (
            self.map(lambda x: (x, None))
            .reduceByKey(lambda a, _b: a, num_partitions)
            .keys()
        )

    def subtract(self, other: "RDD",
                 num_partitions: Optional[int] = None) -> "RDD":
        """Elements of this RDD absent from ``other`` (duplicates kept).

        Elements must be hashable (they become shuffle keys)."""
        return (
            self.map(lambda x: (x, False))
            .cogroup(other.map(lambda x: (x, True)), num_partitions)
            .flatMap(
                lambda kv: [kv[0]] * len(kv[1][0]) if not kv[1][1] else []
            )
        )

    def intersection(self, other: "RDD",
                     num_partitions: Optional[int] = None) -> "RDD":
        """Distinct elements present in both RDDs."""
        return (
            self.map(lambda x: (x, False))
            .cogroup(other.map(lambda x: (x, True)), num_partitions)
            .flatMap(
                lambda kv: [kv[0]] if kv[1][0] and kv[1][1] else []
            )
        )

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Group two keyed RDDs: ``(k, (list_self, list_other))``."""
        tagged = self.mapValues(lambda v: (0, v)).union(
            other.mapValues(lambda v: (1, v))
        )

        def _create(tv: Tuple[int, Any]) -> Tuple[List[Any], List[Any]]:
            pair: Tuple[List[Any], List[Any]] = ([], [])
            pair[tv[0]].append(tv[1])
            return pair

        def _merge_value(pair, tv):
            pair[tv[0]].append(tv[1])
            return pair

        def _merge_combiners(pa, pb):
            pa[0].extend(pb[0])
            pa[1].extend(pb[1])
            return pa

        return tagged.combineByKey(
            _create, _merge_value, _merge_combiners, num_partitions
        )

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner equi-join of keyed RDDs: ``(k, (v_self, v_other))``.

        Always the shuffle (cogroup) plan. Use :meth:`adaptiveJoin`
        to let run-time statistics pick broadcast-hash instead.
        """
        return self.cogroup(other, num_partitions).flatMap(
            lambda kv: [
                (kv[0], (a, b)) for a in kv[1][0] for b in kv[1][1]
            ]
        )

    def adaptiveJoin(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Inner equi-join whose physical plan is chosen at run time.

        The scheduler materializes both inputs, collects sampled
        statistics, and picks broadcast-hash (small side shipped whole
        to every task, no shuffle) or the shuffle cogroup plan —
        recording the decision in the context's
        :class:`~repro.rdd.stats.ExecutionReport`. Output is identical
        to :meth:`join` up to element order within partitions.
        """
        return AdaptiveJoinRDD(self, other, num_partitions, "auto")

    def broadcastJoin(self, other: "RDD", build_side: str = "right") -> "RDD":
        """Inner equi-join forced to the broadcast-hash strategy.

        ``build_side`` names the side materialized into the driver-built
        hash map (``"right"`` = ``other``); the other side streams.
        """
        if build_side not in ("left", "right"):
            raise ValueError(
                f"build_side must be 'left' or 'right', got {build_side!r}"
            )
        return AdaptiveJoinRDD(self, other, None, f"broadcast-{build_side}")

    def leftOuterJoin(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self.cogroup(other, num_partitions).flatMap(
            lambda kv: [
                (kv[0], (a, b))
                for a in kv[1][0]
                for b in (kv[1][1] or [None])
            ]
        )

    def partitionBy(self, num_partitions: int) -> "RDD":
        """Hash-partition keyed elements so equal keys share a partition."""
        return self.groupByKey(num_partitions).flatMap(
            lambda kv: [(kv[0], v) for v in kv[1]]
        )

    def sortBy(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Globally sort by ``key_fn`` via sampled range partitioning."""
        return RangePartitionedRDD(
            self,
            key_fn,
            ascending,
            num_partitions or self.ctx.default_parallelism,
        )

    def sortByKey(
        self, ascending: bool = True, num_partitions: Optional[int] = None
    ) -> "RDD":
        return self.sortBy(lambda kv: kv[0], ascending, num_partitions)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def _materialize(self) -> List[Partition]:
        return self.ctx.scheduler.materialize(self)

    def collect(self) -> List[Any]:
        """Compute and return all elements in partition order."""
        return [x for p in self._materialize() for x in p.data]

    def count(self) -> int:
        return sum(len(p) for p in self._materialize())

    def isEmpty(self) -> bool:
        return self.count() == 0

    def take(self, n: int) -> List[Any]:
        out: List[Any] = []
        for p in self._materialize():
            for x in p.data:
                out.append(x)
                if len(out) >= n:
                    return out
        return out

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise ValueError("first() on an empty RDD")
        return taken[0]

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        parts = [
            p.data for p in self._materialize() if p.data
        ]
        if not parts:
            raise ValueError("reduce() on an empty RDD")
        partials = []
        for data in parts:
            acc = data[0]
            for x in data[1:]:
                acc = fn(acc, x)
            partials.append(acc)
        acc = partials[0]
        for x in partials[1:]:
            acc = fn(acc, x)
        return acc

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        acc = zero
        for p in self._materialize():
            for x in p.data:
                acc = fn(acc, x)
        return acc

    def aggregate(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
    ) -> Any:
        import copy

        partials = []
        for p in self._materialize():
            acc = copy.deepcopy(zero)
            for x in p.data:
                acc = seq_fn(acc, x)
            partials.append(acc)
        acc = copy.deepcopy(zero)
        for partial in partials:
            acc = comb_fn(acc, partial)
        return acc

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def mean(self) -> float:
        total, n = self.aggregate(
            (0.0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if n == 0:
            raise ValueError("mean() on an empty RDD")
        return total / n

    def countByKey(self) -> Dict[Any, int]:
        out: Dict[Any, int] = {}
        for k, _v in self.collect():
            out[k] = out.get(k, 0) + 1
        return out

    def countByValue(self) -> Dict[Any, int]:
        out: Dict[Any, int] = {}
        for x in self.collect():
            out[x] = out.get(x, 0) + 1
        return out

    def lookup(self, key: Any) -> List[Any]:
        """All values whose key equals ``key``."""
        return self.filter(lambda kv: kv[0] == key).values().collect()

    def foreach(self, fn: Callable[[Any], None]) -> None:
        for x in self.collect():
            fn(x)

    def zipWithIndex(self) -> "RDD":
        """Pair each element with its global index.

        Materializes this RDD eagerly (partition sizes are needed to
        assign offsets), like Spark's extra job for the same op.
        """
        parts = self._materialize()
        offset = 0
        new_parts: List[Partition] = []
        for p in parts:
            new_parts.append(
                Partition(
                    p.index,
                    [(x, offset + i) for i, x in enumerate(p.data)],
                )
            )
            offset += len(p.data)
        return SourceRDD(self.ctx, new_parts)

    def top(self, n: int, key_fn: Optional[Callable[[Any], Any]] = None) -> List[Any]:
        """The ``n`` largest elements, descending."""
        return sorted(self.collect(), key=key_fn, reverse=True)[:n]

    def getNumPartitions(self) -> int:
        return self.num_partitions()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def stats(self, keyed: bool = False) -> "RDDStats":
        """Sampled statistics for this RDD (materializes it).

        Collected driver-side from the materialized partitions (no
        extra stages) and cached on the RDD; the scheduler also fills
        the cache when a persisted RDD first materializes. With
        ``keyed=True`` the elements are treated as ``(key, value)``
        pairs and a sampled key census adds distinct/heavy-hitter
        estimates.
        """
        from repro.rdd.stats import collect_stats

        if self._stats is None or (
            keyed and self._stats.distinct_keys is None
        ):
            self._stats = collect_stats(
                self._materialize(),
                getattr(self.ctx, "adaptive", None),
                keyed=keyed,
            )
        return self._stats


class SourceRDD(RDD):
    """An RDD whose partitions live in the driver (from ``parallelize``)."""

    def __init__(self, ctx: "SJContext", partitions: List[Partition]) -> None:
        super().__init__(ctx)
        self.partitions = partitions

    def num_partitions(self) -> int:
        return len(self.partitions)


class ScanRDD(RDD):
    """A leaf RDD that reads lazily from a
    :class:`~repro.sources.base.DataSource`.

    Partitions map 1:1 onto the source's surviving partitions after
    driver-side pruning (``source.prune(predicate)``); each task reads
    its partition inside the worker — projected to ``columns`` and
    filtered by ``predicate`` as close to storage as the source
    allows. The scheduler fills :attr:`last_scan` with the aggregated
    read statistics after every materialization.
    """

    def __init__(
        self,
        ctx: "SJContext",
        source: Any,
        columns: Optional[List[str]] = None,
        predicate: Any = None,
        batched: bool = False,
    ) -> None:
        super().__init__(ctx)
        self.source = source
        self.columns = list(columns) if columns is not None else None
        self.predicate = predicate
        #: True = partitions hold ColumnBatch elements (the source is
        #: read through ``read_partition_batches_stats``); downstream
        #: row counting goes through the batch-aware helpers
        self.batched = batched
        #: {"rows_read", "bytes_scanned", "segments_read",
        #:  "segments_skipped", "partitions_total",
        #:  "partitions_scanned"} — set by Scheduler._compute_scan
        self.last_scan: Optional[Dict[str, Any]] = None

    def with_columns(self, columns: Iterable[str]) -> "ScanRDD":
        """A copy projected to ``columns`` (intersected with any
        existing projection)."""
        cols = list(columns)
        if self.columns is not None:
            cols = [c for c in cols if c in self.columns]
        return ScanRDD(
            self.ctx, self.source, cols, self.predicate,
            batched=self.batched,
        )

    def num_partitions(self) -> int:
        return max(1, self.source.num_partitions())


class MappedPartitionsRDD(RDD):
    """Narrow transformation: one output partition per parent partition."""

    def __init__(
        self, parent: RDD, fn: Callable[[int, List[Any]], List[Any]]
    ) -> None:
        super().__init__(parent.ctx)
        self.parent = parent
        self.fn = fn

    def parents(self) -> List[RDD]:
        return [self.parent]

    def num_partitions(self) -> int:
        return self.parent.num_partitions()


class UnionRDD(RDD):
    """Concatenation of several RDDs' partitions (no shuffle)."""

    def __init__(self, ctx: "SJContext", rdds: List[RDD]) -> None:
        super().__init__(ctx)
        self.rdds = rdds

    def parents(self) -> List[RDD]:
        return list(self.rdds)

    def num_partitions(self) -> int:
        return sum(r.num_partitions() for r in self.rdds)


class CoalescedRDD(RDD):
    """Merge parent partitions into fewer, without moving data by key."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(parent.ctx)
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.parent = parent
        self._n = num_partitions

    def parents(self) -> List[RDD]:
        return [self.parent]

    def num_partitions(self) -> int:
        return builtins.min(self._n, builtins.max(1, self.parent.num_partitions()))


class RepartitionedRDD(RDD):
    """Round-robin redistribution over ``num_partitions`` (a shuffle)."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(parent.ctx)
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.parent = parent
        self._n = num_partitions

    def parents(self) -> List[RDD]:
        return [self.parent]

    def num_partitions(self) -> int:
        return self._n


class ShuffledRDD(RDD):
    """Key-based shuffle with map-side combine (``combineByKey``).

    ``num_partitions=None`` defers the reduce partition count to the
    scheduler, which sizes it from input statistics at run time.
    """

    def __init__(
        self,
        parent: RDD,
        num_partitions: Optional[int],
        create: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
    ) -> None:
        super().__init__(parent.ctx)
        if num_partitions is not None and num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.parent = parent
        self._n = num_partitions
        self.create = create
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners

    def parents(self) -> List[RDD]:
        return [self.parent]

    def num_partitions(self) -> int:
        # the auto case is an estimate; the scheduler picks the actual
        # count from input statistics at materialization time
        return self._n or self.ctx.default_parallelism


class AdaptiveJoinRDD(RDD):
    """Inner equi-join whose physical strategy is decided at run time.

    Lineage stays lazy: the node only records its two keyed parents
    and a strategy hint. When the scheduler materializes it, both
    parents are computed, sampled statistics are collected (and cached
    on the parents), and the context's planner picks broadcast-hash or
    shuffle — after the inputs exist, so the decision sees actual
    sizes, the way Spark AQE re-plans between stages.
    """

    def __init__(
        self,
        left: RDD,
        right: RDD,
        num_partitions: Optional[int] = None,
        strategy: str = "auto",
    ) -> None:
        super().__init__(left.ctx)
        self.left = left
        self.right = right
        self._n = num_partitions
        #: "auto" | "broadcast-left" | "broadcast-right" | "shuffle"
        self.strategy = strategy

    def parents(self) -> List[RDD]:
        return [self.left, self.right]

    def num_partitions(self) -> int:
        # an estimate: the actual count depends on the chosen strategy
        # (broadcast preserves the stream side's partitioning; shuffle
        # repartitions) and is only known once materialized
        return builtins.max(1, self.left.num_partitions())


class RangePartitionedRDD(RDD):
    """Global sort: sample key boundaries, range-shuffle, sort buckets."""

    def __init__(
        self,
        parent: RDD,
        key_fn: Callable[[Any], Any],
        ascending: bool,
        num_partitions: int,
    ) -> None:
        super().__init__(parent.ctx)
        self.parent = parent
        self.key_fn = key_fn
        self.ascending = ascending
        self._n = num_partitions

    def parents(self) -> List[RDD]:
        return [self.parent]

    def num_partitions(self) -> int:
        return self._n
