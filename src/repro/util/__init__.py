"""Small shared utilities: stable hashing, JSON helpers, timers, and
adaptive benchmark-timing statistics."""

from repro.util.benchstats import TimingResult, measure, summarize, t_critical
from repro.util.hashing import content_hash, stable_json
from repro.util.timer import Timer

__all__ = [
    "content_hash",
    "stable_json",
    "Timer",
    "TimingResult",
    "measure",
    "summarize",
    "t_critical",
]
