"""End-to-end integration: the conclusion's future-work analysis —
relating application behaviour to network and filesystem utilization.

Exercises the engine's generality: the same derivation machinery that
produced Figures 5 and 7, pointed at a brand-new domain (links,
filesystem servers) it has never seen, derives the analogous
pipelines unaided.
"""

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.analysis import rank_groups
from repro.datagen.facility import FacilityConfig
from repro.datagen.network import NETWORK_PROFILES, generate_dat3


@pytest.fixture(scope="module")
def dat3_session():
    dat = generate_dat3(
        facility_config=FacilityConfig(num_racks=4, nodes_per_rack=4),
        duration=2400.0,
        counter_period=15.0,
    )
    with ScrubJaySession(
        TuningProfile(interpolation_window=30.0)
    ) as sj:
        dat.register(sj)
        yield dat, sj


def test_network_query_plan_shape(dat3_session):
    _dat, sj = dat3_session
    plan = (sj.query().across("jobs", "network links")
            .values("applications", "link bytes per time").plan())
    ops = [op for op in plan.operations() if not op.startswith("load")]
    # structurally the Figure 5 pattern on a new domain: explodes,
    # a rate derivation, one exact join, one windowed join
    assert "explode_discrete" in ops
    assert "explode_continuous" in ops
    assert "derive_rate" in ops
    assert "natural_join" in ops
    assert "interpolation_join" in ops


def test_network_rates_track_workload_profiles(dat3_session):
    dat, sj = dat3_session
    result = sj.ask(domains=["jobs", "network links"],
                    values=["applications", "link bytes per time"])
    result.persist()
    ranked = rank_groups(result, ["job_name"], "bytes_rate", "mean")
    assert len(ranked) >= 2
    measured = dict((k[0], v) for k, v in ranked)
    # relative ordering of mean link rates must follow the planted
    # steady-state profiles for every pair of observed workloads
    for a in measured:
        for b in measured:
            pa = NETWORK_PROFILES[a]["bytes_rate"]
            pb = NETWORK_PROFILES[b]["bytes_rate"]
            if pa > 1.5 * pb:
                assert measured[a] > measured[b], (a, b, measured)


def test_filesystem_query_end_to_end(dat3_session):
    dat, sj = dat3_session
    result = sj.ask(domains=["jobs", "filesystems"],
                    values=["applications", "pending operations"])
    rows = result.collect()
    assert rows
    # every row relates a job instant to a filesystem server's queue
    assert {"job_name", "fs_server", "pending_ops"} <= set(rows[0])
    dims = result.schema.domain_dimensions()
    assert {"jobs", "filesystems", "time", "compute nodes"} <= dims


def test_checkpoint_congestion_spikes_visible(dat3_session):
    """The intro's scenario: checkpoint phases pile write ops onto a
    filesystem server, and *every* application assigned to that server
    observes the queue spike — interference, not attribution. The
    derived relation must expose those spikes, and at least one
    checkpointing application must be running during a near-peak one
    (it is the cause, so it is present)."""
    dat, sj = dat3_session
    result = sj.ask(domains=["jobs", "filesystems"],
                    values=["applications", "pending operations"])
    rows = [r for r in result.collect() if "pending_ops" in r]
    assert rows
    values = [r["pending_ops"] for r in rows]
    mean = sum(values) / len(values)
    peak = max(values)
    assert peak > 3 * mean, "no congestion spikes in the derived data"

    near_peak_apps = {
        r["job_name"] for r in rows if r["pending_ops"] > 0.8 * peak
    }
    assert any(
        NETWORK_PROFILES[a]["ckpt_period"] > 0 for a in near_peak_apps
    ), f"no checkpointing app present at the spike: {near_peak_apps}"
