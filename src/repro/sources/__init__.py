"""Partitioned, predicate-aware data sources (the scan pipeline).

The successor to :mod:`repro.wrappers` for ingestion: a
:class:`DataSource` exposes driver-cheap ``partitions()`` and
worker-side ``read_partition(i, columns, predicate)``, so datasets are
scanned lazily and selectively instead of materialized on the driver.
Use them through the fluent builder::

    session.ingest().csv("temps.csv", schema).register("temps")

See DESIGN.md "Storage and scan pushdown".
"""

from repro.sources.base import DataSource, ScanSelection, project_row
from repro.sources.csv_source import CSVSource
from repro.sources.feed_source import FeedSource
from repro.sources.ingest import IngestBuilder
from repro.sources.predicate import ColumnPredicate, EqTerm, RangeTerm
from repro.sources.rows_source import RowsSource
from repro.sources.sql_source import SQLSource
from repro.sources.table_source import TableSource

__all__ = [
    "ColumnPredicate",
    "CSVSource",
    "DataSource",
    "EqTerm",
    "FeedSource",
    "IngestBuilder",
    "project_row",
    "RangeTerm",
    "RowsSource",
    "ScanSelection",
    "SQLSource",
    "TableSource",
]
