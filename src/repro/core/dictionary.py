"""The semantic dictionary (paper §4.2, "Semantic Dictionary").

Problems arise when multiple keywords mean the same thing (*synonyms*)
or one keyword means different things (*homonyms*). The dictionary is
the single authority on available dimension and unit keywords and
rejects both:

- registering an existing keyword with a different meaning is a
  homonym → :class:`~repro.errors.DictionaryError`;
- registering a new unit keyword whose full conversion signature
  (kind, dimension, scale, offset) duplicates an existing unit is a
  synonym → :class:`~repro.errors.DictionaryError` (reuse the existing
  keyword instead).

Datasets are validated against the active dictionary before they enter
the catalog, so every annotation the engine reasons over resolves to
exactly one meaning.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.errors import DictionaryError, SemanticError, UnitError
from repro.core.semantics import Schema
from repro.units.registry import (
    Dimension,
    Unit,
    UnitRegistry,
    default_registry,
)


class SemanticDictionary:
    """Keyword authority: dimensions + units, synonym/homonym-free."""

    def __init__(self, registry: Optional[UnitRegistry] = None) -> None:
        self.registry = registry or UnitRegistry()
        # Mutation is rare (expert-driven keyword definition) but may
        # now happen while served queries plan against the dictionary:
        # the lock makes each definition atomic, and the version
        # counter lets plan/result caches key on dictionary state and
        # drop stale entries after any successful mutation.
        self._lock = threading.RLock()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every successful definition."""
        return self._version

    # Dictionaries ride inside scan tasks (a CSV/SQL source decodes
    # values in workers), so they must survive pickling to process
    # executors; the lock is per-process state and is recreated fresh.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # keyword definition
    # ------------------------------------------------------------------

    def define_dimension(
        self,
        name: str,
        continuous: bool,
        ordered: bool,
        description: str = "",
    ) -> Dimension:
        """Add a dimension keyword; idempotent for identical meanings."""
        dim = Dimension(name, continuous, ordered, description)
        with self._lock:
            is_new = not self.registry.has_dimension(name)
            try:
                out = self.registry.register_dimension(dim)
            except UnitError as exc:
                raise DictionaryError(
                    f"homonym: dimension keyword {name!r} already has a "
                    f"different meaning"
                ) from exc
            if is_new:  # idempotent re-definition leaves caches valid
                self._version += 1
            return out

    def define_unit(
        self,
        name: str,
        kind: str,
        dimension: Optional[str] = None,
        scale: float = 1.0,
        offset: float = 0.0,
    ) -> Unit:
        """Add a unit keyword, enforcing the no-synonym/no-homonym rule."""
        unit = Unit(name, kind, dimension, scale, offset)
        with self._lock:
            # Synonym check: an identical conversion signature under a
            # different keyword would make two keywords mean one thing.
            sig = self._signature(unit)
            if sig is not None:
                for existing in self.registry.units().values():
                    if (
                        existing.name != name
                        and self._signature(existing) == sig
                    ):
                        raise DictionaryError(
                            f"synonym: unit keyword {name!r} duplicates "
                            f"the meaning of {existing.name!r}; reuse "
                            f"that keyword"
                        )
            is_new = not self.registry.has_unit(name)
            try:
                out = self.registry.register_unit(unit)
            except UnitError as exc:
                raise DictionaryError(
                    f"homonym: unit keyword {name!r} already has a "
                    f"different meaning"
                ) from exc
            if is_new:
                self._version += 1
            return out

    @staticmethod
    def _signature(unit: Unit) -> Optional[Tuple]:
        # Only dimension-anchored quantity units have a meaningful full
        # conversion signature; generic representational units
        # (identifier, label, …) are legitimately shared across fields
        # and dimensions, so they are exempt from synonym detection.
        if unit.kind != "quantity" or unit.dimension is None:
            return None
        return ("quantity", unit.dimension, unit.scale, unit.offset)

    # ------------------------------------------------------------------
    # lookup / validation
    # ------------------------------------------------------------------

    def dimension(self, name: str) -> Dimension:
        try:
            return self.registry.dimension(name)
        except UnitError as exc:
            raise DictionaryError(str(exc)) from exc

    def unit(self, name: str) -> Unit:
        try:
            return self.registry.unit(name)
        except UnitError as exc:
            raise DictionaryError(str(exc)) from exc

    def has_dimension(self, name: str) -> bool:
        return self.registry.has_dimension(name)

    def has_unit(self, name: str) -> bool:
        return self.registry.has_unit(name)

    def interpolatable(self, dimension: str) -> bool:
        """True when values on ``dimension`` may be interpolated
        (continuous and ordered)."""
        return self.dimension(dimension).interpolatable

    def convert(self, value: float, from_unit: str, to_unit: str) -> float:
        return self.registry.convert(value, from_unit, to_unit)

    def validate_schema(self, schema: Schema) -> None:
        """Check every annotation against the dictionary.

        Raises :class:`~repro.errors.SemanticError` on the first field
        whose dimension or unit keyword is unknown, or whose unit is
        anchored to a *different* dimension than the field claims.
        """
        for field, sem in schema.items():
            if not self.has_dimension(sem.dimension):
                raise SemanticError(
                    f"field {field!r}: unknown dimension keyword "
                    f"{sem.dimension!r}"
                )
            if not self.has_unit(sem.units):
                raise SemanticError(
                    f"field {field!r}: unknown unit keyword {sem.units!r}"
                )
            unit = self.unit(sem.units)
            if unit.dimension is not None and unit.dimension != sem.dimension:
                raise SemanticError(
                    f"field {field!r}: unit {sem.units!r} lies on "
                    f"dimension {unit.dimension!r}, not {sem.dimension!r}"
                )


def default_dictionary() -> SemanticDictionary:
    """The dictionary shipped with ScrubJay: the default registry's
    dimensions and units (see :func:`repro.units.registry.default_registry`)."""
    return SemanticDictionary(default_registry())
