"""Materialized rollup tables: pre-aggregated measure sets at a grain.

``session.rollup(name, query)`` takes a metric query and materializes
its answer — one wide row per (per-dims, time bucket) group — into the
wide-column store, registering the result in the session catalog so
the engine's schema search sees it like any other dataset. The
materialization itself is an ordinary derivation plan (``base plan →
bucket_time → rollup_aggregate``), so it serializes and EXPLAINs.

Two states are kept per rollup:

- the **table**: finalized values, scanned by whoever queries the
  rollup dataset directly;
- the **partial state**: unfinalized mergeable aggregation states per
  group (``mean`` → ``(sum, count)``), which is what lets the router
  re-aggregate a rollup to any coarser grain or per-dim subset
  *exactly* for decomposable measures, and what lets a feed delta fold
  in at O(delta) via the PR-8 incremental-refresh path.

Routing (:meth:`Rollup.can_answer`): decomposable aggregates
(sum/count/min/max/mean) accept any query whose grain the rollup's
grain divides and whose per-dims are a subset; non-decomposable ones
(p50/p95) only ever route to the exact grain and per-dim set — anything
else falls back to raw.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueryError, ScrubJayError
from repro.analysis.aggregate import (
    DECOMPOSABLE_AGGS,
    _merge_for,
)
from repro.core.dataset import ScrubJayDataset
from repro.core.pipeline import DerivationPlan, TransformNode
from repro.core.query import Query
from repro.metrics.compute import (
    finalize_metric,
    merge_metric_partials,
    metric_group_fields,
    metric_partials,
)
from repro.metrics.derive import BucketTime, RollupAggregate
from repro.rdd.rdd import ScanRDD
from repro.rdd.stats import RollupDecision
from repro.stream import DeltaPlan
from repro.units.temporal import Timestamp

_STORE_KEYSPACE = "rollups"


def pinned_catalog(session, watermarks: Dict[str, int]
                   ) -> Dict[str, ScrubJayDataset]:
    """The session catalog with each feed dataset in ``watermarks``
    swapped for a frozen snapshot bounded at its watermark (the
    serve layer's no-mixed-watermark rule, session-side)."""
    catalog = session.snapshot()
    for name, mark in watermarks.items():
        feed = session.feeds.get(name)
        if feed is None:
            continue
        src = feed.source.bounded(mark)
        src.name = name
        ds = ScrubJayDataset(
            ScanRDD(session.ctx, src),
            src.schema(),
            name,
            provenance={"op": "scan",
                        "source": type(src).__name__,
                        "name": name, "bounded_at": mark},
        )
        ds.source = src
        catalog[name] = ds
    return catalog


def rows_from_state(
    state: Dict[str, Dict[Tuple, Any]],
    group_fields: List[str],
    query: Query,
) -> List[Dict[str, Any]]:
    """Finalized wide rows from a per-measure partial state."""
    final = finalize_metric(state, query)
    rows: List[Dict[str, Any]] = []
    for g in sorted(final, key=repr):
        row = dict(zip(group_fields, g))
        for mkey, val in final[g].items():
            if val is not None:
                row[mkey] = val
        rows.append(row)
    return rows


class Rollup:
    """One materialized rollup: its defining metric query, plan,
    partial state, table, and feed watermarks."""

    def __init__(self, session, name: str, query: Query) -> None:
        if not query.is_metric:
            raise QueryError(
                f"rollup {name!r} needs a metric query; add "
                ".measure(...) (and usually .per()/.grain())"
            )
        if query.grain is None:
            raise QueryError(
                f"rollup {name!r} needs a time grain; add .grain('1h')"
            )
        self.session = session
        self.name = name
        self.query = query
        #: per-measure partial state {measure_key: {group: partial}}
        self.state: Dict[str, Dict[Tuple, Any]] = {}
        self.watermarks: Dict[str, int] = {}
        self.refreshes = 0
        self.delta_refreshes = 0
        self._version = 0
        self._lock = threading.RLock()
        # Solve the base relation once; the rollup plan wraps it.
        self.base_plan = session.engine.solve(
            session.schemas(), query.base()
        )
        schema = self.base_plan.derive_schema(
            session.schemas(), session.dictionary
        )
        gf, tfield = metric_group_fields(schema, query)
        self.group_fields = gf
        self.time_field = tfield
        #: the materialization plan — base → bucket_time →
        #: rollup_aggregate — a plain serializable DerivationPlan
        node = TransformNode(
            BucketTime(tfield, query.grain.seconds),
            self.base_plan.root,
        )
        node = TransformNode(
            RollupAggregate(gf, list(query.measures)), node
        )
        self.plan = DerivationPlan(node)
        self.delta_plan = DeltaPlan(self.base_plan)
        self.feed_names = tuple(
            n for n in self.base_plan.dataset_names()
            if n in session.feeds
        )

    # -- materialization ----------------------------------------------

    def materialize(self) -> "Rollup":
        """Compute the rollup at the current feed watermarks, write
        its table, and register it in the catalog."""
        session = self.session
        with self._lock:
            marks = {
                n: session.feeds[n].watermark for n in self.feed_names
            }
            base = self.delta_plan.execute_full(
                pinned_catalog(session, marks),
                session.dictionary,
                columnar=session.engine.config.columnar,
                columnar_off=session.engine.config.columnar_off_ops,
            )
            self.state = metric_partials(base, self.query)
            self.watermarks = marks
            self._publish()
        return self

    def _publish(self) -> None:
        """Rebuild the finalized table from the partial state and
        swap it into the store + catalog (caller holds the lock)."""
        session = self.session
        rows = rows_from_state(self.state, self.group_fields, self.query)
        store = session._rollup_store()
        self._version += 1
        table = f"{self.name}_v{self._version}"
        partition_key = self.group_fields[:-1] or [self.group_fields[-1]]
        store.create_table(
            _STORE_KEYSPACE, table, partition_key,
            clustering=(self.group_fields[-1],)
            if len(self.group_fields) > 1 else (),
        )
        store.append_rows(_STORE_KEYSPACE, table, rows)
        schema = self._table_schema()
        try:
            session.drop(self.name)
        except ScrubJayError:
            pass
        session.ingest().table(
            store, _STORE_KEYSPACE, table, schema
        ).register(self.name)

    def _table_schema(self):
        base_schema = self.base_plan.derive_schema(
            self.session.schemas(), self.session.dictionary
        )
        agg = RollupAggregate(self.group_fields, list(self.query.measures))
        return agg.derive_schema(base_schema, self.session.dictionary)

    @property
    def dataset(self) -> ScrubJayDataset:
        return self.session.dataset(self.name)

    # -- routing -------------------------------------------------------

    def can_answer(self, query: Query) -> bool:
        """Can this rollup's stored state answer ``query`` exactly?"""
        rq = self.query
        if not query.is_metric:
            return False
        exact_grain = False
        if query.grain is not None:
            if not rq.grain.divides(query.grain):
                return False
            exact_grain = abs(
                rq.grain.seconds - query.grain.seconds
            ) < 1e-9
        if not set(query.per) <= set(rq.per):
            return False
        exact_per = set(query.per) == set(rq.per)
        available = {(m.dimension, m.how) for m in rq.measures}
        for m in query.measures:
            if (m.dimension, m.how) not in available:
                return False
            decomposable = m.how in DECOMPOSABLE_AGGS
            if m.window is not None and not decomposable:
                return False
            if not decomposable and not (exact_grain and exact_per):
                # p50/p95 cannot be re-aggregated from coarser
                # partials — exact-grain, exact-group reads only
                return False
        # filters must match; extra equality filters on per-dims are
        # fine (they restrict whole groups post-aggregation)
        if set(rq.filters) - set(query.filters):
            return False
        for f in set(query.filters) - set(rq.filters):
            if f.op != "eq" or f.dimension not in query.per:
                return False
        return True

    def answer(self, query: Query) -> Dict[Tuple, Dict[str, Any]]:
        """Answer a metric query from the partial state: project the
        group keys onto the query's per-dims, re-bucket to its grain,
        merge, and finalize."""
        with self._lock:
            per_idx = [self.query.per.index(d) for d in query.per]
            group_filters = [
                (query.per.index(f.dimension), f.value)
                for f in set(query.filters) - set(self.query.filters)
            ]
            parts: Dict[str, Dict[Tuple, Any]] = {}
            for m in query.measures:
                mkey = m.key()
                # the stored state is keyed by *this* rollup's measure
                # keys; match on (dimension, how) so e.g. a windowed
                # mean query reads the plain per-bucket mean partials
                # (windows apply at finalize, not in the state)
                src = {}
                for rm in self.query.measures:
                    if (rm.dimension, rm.how) == (m.dimension, m.how):
                        src = self.state.get(rm.key(), {})
                        break
                merge = _merge_for(m.how)
                projected: Dict[Tuple, Any] = {}
                for key, val in src.items():
                    per_vals, bucket = key[:-1], key[-1]
                    nk = tuple(per_vals[i] for i in per_idx)
                    if query.grain is not None:
                        epoch = getattr(bucket, "epoch", bucket)
                        nk = nk + (
                            Timestamp(query.grain.bucket(epoch)),
                        )
                    if any(nk[i] != v for i, v in group_filters):
                        continue
                    projected[nk] = (
                        merge(projected[nk], val)
                        if nk in projected else val
                    )
                parts[mkey] = projected
        return finalize_metric(parts, query)

    # -- freshness (the PR-8 incremental-refresh path) -----------------

    def refresh(self) -> Dict[str, Any]:
        """Bring the rollup to its feeds' current watermarks —
        incrementally (delta partials merged into the standing state)
        when the base plan is delta-safe, by scoped replay otherwise —
        then republish the table."""
        session = self.session
        with self._lock:
            base = dict(self.watermarks)
            targets = dict(base)
            changed = set()
            for n in self.feed_names:
                feed = session.feeds.get(n)
                if feed is None:
                    continue
                targets[n] = feed.watermark
                if targets[n] != base.get(n):
                    changed.add(n)
            if not changed:
                return {"name": self.name, "refreshed": False}
            mode, decisions = self.delta_plan.classify(changed)
            self.delta_plan.record(
                getattr(session.ctx, "report", None), decisions
            )
            if mode == "delta":
                deltas: Dict[str, ScrubJayDataset] = {}
                for n in sorted(changed):
                    feed = session.feeds[n]
                    rows, _ = feed.source.append_scan(
                        base.get(n, 0), targets[n]
                    )
                    deltas[n] = ScrubJayDataset.from_rows(
                        session.ctx, rows,
                        session.dataset(n).schema, n,
                    )
                pinned = {
                    n: base[n] for n in self.feed_names
                    if n not in changed and n in base
                }
                result = self.delta_plan.execute_delta(
                    pinned_catalog(session, pinned), deltas,
                    session.dictionary,
                    columnar=session.engine.config.columnar,
                    columnar_off=session.engine.config.columnar_off_ops,
                )
                part = metric_partials(result, self.query)
                merge_metric_partials(self.state, part, self.query)
                self.delta_refreshes += 1
            else:
                result = self.delta_plan.execute_full(
                    pinned_catalog(session, targets),
                    session.dictionary,
                    columnar=session.engine.config.columnar,
                    columnar_off=session.engine.config.columnar_off_ops,
                )
                self.state = metric_partials(result, self.query)
            self.watermarks = targets
            self.refreshes += 1
            self._publish()
            return {
                "name": self.name,
                "refreshed": True,
                "mode": mode,
                "watermarks": dict(targets),
            }

    def __repr__(self) -> str:
        return (
            f"Rollup({self.name!r}, grain={self.query.grain}, "
            f"per={list(self.query.per)}, "
            f"measures={[str(m) for m in self.query.measures]}, "
            f"groups={sum(len(v) for v in self.state.values())})"
        )


def choose_rollup(
    rollups: Dict[str, Rollup], query: Query
) -> Tuple[Optional[Rollup], RollupDecision]:
    """Route a metric query: the **coarsest** registered rollup that
    can answer it exactly, or raw. Always returns a
    :class:`RollupDecision` explaining the choice."""
    requested = query.grain.seconds if query.grain else None
    eligible = [r for r in rollups.values() if r.can_answer(query)]
    if eligible:
        win = max(eligible, key=lambda r: r.query.grain.seconds)
        return win, RollupDecision(
            route="rollup",
            rollup=win.name,
            requested_grain=requested,
            rollup_grain=win.query.grain.seconds,
            candidates=len(eligible),
            reason=(
                f"coarsest of {len(eligible)} eligible rollup(s) "
                f"at grain {win.query.grain.seconds:g}s"
            ),
        )
    if not rollups:
        reason = "no rollups registered"
    elif any(
        m.how not in DECOMPOSABLE_AGGS for m in query.measures
    ):
        reason = (
            "non-decomposable measure (p50/p95) needs an exact-grain, "
            "exact-group rollup; none registered"
        )
    else:
        reason = (
            "no registered rollup covers the requested "
            "measures/per/grain"
        )
    return None, RollupDecision(
        route="raw",
        rollup=None,
        requested_grain=requested,
        rollup_grain=None,
        candidates=0,
        reason=reason,
    )
