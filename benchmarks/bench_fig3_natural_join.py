"""Figure 3 (top row): Natural Join scaling.

Paper: 2M–40M rows on a 10-node × 32-core cluster — time grows
linearly with rows (left panel); fixed 40M rows over 1–10 nodes —
strong scaling with diminishing returns from the shuffle bottleneck
(right panel).

Here: 20k–160k rows (pure-Python rows cost ~100× Spark's JVM rows per
row). This machine exposes a single CPU core, so cluster timing is
*simulated*: every task is executed and timed for real, then stage
wall-clock is the critical path of an LPT assignment of tasks onto N
workers, while driver-side shuffle exchange stays serial
(:class:`repro.rdd.executors.SimulatedClusterExecutor`). The shapes
under test: linear growth in rows, speedup in workers, sublinear due
to the serial shuffle.
"""

from __future__ import annotations

import pytest

from repro import SJContext, ScrubJayDataset, default_dictionary
from repro.core.combinations import NaturalJoin
from repro.datagen.synthetic import (
    KEYED_LEFT_SCHEMA,
    KEYED_RIGHT_SCHEMA,
    keyed_tables,
)

ROW_COUNTS = [20_000, 40_000, 80_000, 160_000]
WORKER_COUNTS = [1, 2, 4, 8, 10]
STRONG_SCALING_ROWS = 160_000
PARTITIONS = 20  # fixed decomposition, like fixed data on the cluster

_DICT = default_dictionary()


@pytest.fixture(scope="module")
def tables():
    return keyed_tables(max(ROW_COUNTS), num_keys=1024)


@pytest.fixture(scope="module")
def rows_recorder(recorder_factory):
    return recorder_factory(
        "fig3a_natural_join_rows", "rows", "sim_seconds"
    )


@pytest.fixture(scope="module")
def scaling_recorder(recorder_factory):
    return recorder_factory(
        "fig3b_natural_join_strong_scaling", "workers", "sim_seconds"
    )


def _run_join(workers, left_rows, right_rows):
    """Run the join on a simulated cluster; returns (sim_seconds, count)."""
    # broadcast_threshold=0 pins the shuffle path: these panels
    # reproduce the paper's *shuffle-bound* scaling shapes, which the
    # adaptive broadcast join (benchmarked separately below and in
    # harness.py) would otherwise optimize away.
    with SJContext(
        executor="simulated", num_workers=workers,
        default_parallelism=PARTITIONS, broadcast_threshold=0,
    ) as ctx:
        left = ScrubJayDataset.from_rows(
            ctx, left_rows, KEYED_LEFT_SCHEMA, "left", PARTITIONS
        )
        right = ScrubJayDataset.from_rows(
            ctx, right_rows, KEYED_RIGHT_SCHEMA, "right", PARTITIONS
        )
        ctx.executor.reset()
        count = NaturalJoin().apply(left, right, _DICT).count()
        return ctx.executor.simulated_elapsed, count


@pytest.mark.parametrize("num_rows", ROW_COUNTS)
def test_fig3a_time_vs_rows(benchmark, tables, rows_recorder, num_rows):
    left_all, right = tables
    left = left_all[:num_rows]
    sim_s, count = benchmark.pedantic(
        _run_join, args=(10, left, right), rounds=1, iterations=1
    )
    assert count == num_rows  # every left row matches exactly one key
    benchmark.extra_info["sim_seconds"] = sim_s
    rows_recorder.add(num_rows, sim_s, "10 workers (simulated)")


def test_fig3a_shape_is_linear(benchmark, rows_recorder, shape):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape check only
    xs = [x for x, _y, _n in rows_recorder.rows]
    ys = [y for _x, y, _n in rows_recorder.rows]
    assert len(xs) == len(ROW_COUNTS)
    shape.assert_roughly_linear(xs, ys)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig3b_strong_scaling(benchmark, tables, scaling_recorder, workers):
    left_all, right = tables
    left = left_all[:STRONG_SCALING_ROWS]
    sim_s, count = benchmark.pedantic(
        _run_join, args=(workers, left, right), rounds=1, iterations=1
    )
    assert count == STRONG_SCALING_ROWS
    benchmark.extra_info["sim_seconds"] = sim_s
    scaling_recorder.add(workers, sim_s, f"{STRONG_SCALING_ROWS} rows")


def test_fig3b_shape_speedup(benchmark, scaling_recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # shape check only
    times = {x: y for x, y, _n in scaling_recorder.rows}
    assert len(times) == len(WORKER_COUNTS)
    # monotone-ish decrease with a real gain at 10 workers; the paper's
    # panel shows ~1.5× from 1 → 10 nodes
    assert times[10] < times[1] / 1.3
    # diminishing returns: nowhere near perfectly linear speedup
    assert times[10] > times[1] / 10.0


# ----------------------------------------------------------------------
# adaptive broadcast vs forced shuffle (BENCH_fig3.json)
# ----------------------------------------------------------------------

def test_fig3_broadcast_vs_shuffle_speedup(benchmark):
    """With the lookup side under the broadcast threshold, the
    adaptively selected broadcast-hash join must beat the forced
    shuffle path by >= 1.5x wall-clock; the run (timings + chosen
    strategies + ExecutionReport evidence) lands in
    ``benchmarks/results/BENCH_fig3.json``."""
    import harness

    payload = benchmark.pedantic(
        harness.run_comparison,
        kwargs=dict(row_counts=[80_000], repeats=3),
        rounds=1, iterations=1,
    )
    harness.write_json(payload)
    assert harness.check_smoke(payload) == []

    adaptive = next(
        r for r in payload["runs"] if r["mode"] == "adaptive"
    )
    forced = next(
        r for r in payload["runs"] if r["mode"] == "forced-shuffle"
    )
    speedup = forced["wall_seconds"] / adaptive["wall_seconds"]
    print(
        f"\nadaptive (broadcast): {adaptive['wall_seconds']:.4f} s"
        f"\nforced shuffle:       {forced['wall_seconds']:.4f} s"
        f"\nspeedup:              {speedup:.2f}x"
    )
    benchmark.extra_info["adaptive_s"] = adaptive["wall_seconds"]
    benchmark.extra_info["shuffle_s"] = forced["wall_seconds"]
    benchmark.extra_info["speedup"] = speedup

    # the optimizer must have *chosen* broadcast from statistics
    assert adaptive["join_strategy"] == "broadcast"
    assert adaptive["strategy_adaptive"] is True
    assert forced["join_strategy"] == "shuffle"
    # the shuffle actually moved data; the broadcast path moved none
    assert forced["shuffled_pairs"] > 0
    assert adaptive["shuffled_pairs"] == 0
    assert speedup >= 1.5
