"""Quantity: a numeric value paired with a unit.

ScrubJay "constructs a high-level object with the appropriate
functionality" for annotated values (§4.2); :class:`Quantity` is that
object for measurements. Arithmetic and comparison are only permitted
within a dimension and perform conversion automatically, so mixing
Celsius and Fahrenheit is safe while mixing Celsius and node IDs is a
:class:`~repro.errors.UnitError`.
"""

from __future__ import annotations

from typing import Union

from repro.errors import UnitError
from repro.units.registry import UnitRegistry, default_registry

_DEFAULT = None


def _default() -> UnitRegistry:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = default_registry()
    return _DEFAULT


class Quantity:
    """An immutable measurement: ``Quantity(21.5, "degrees Celsius")``."""

    __slots__ = ("value", "unit", "_registry")

    def __init__(
        self,
        value: float,
        unit: str,
        registry: Union[UnitRegistry, None] = None,
    ) -> None:
        self.value = float(value)
        self.unit = unit
        self._registry = registry or _default()
        # Fail fast on unknown units.
        self._registry.unit(unit)

    # ------------------------------------------------------------------

    def to(self, unit: str) -> "Quantity":
        """Convert to another unit of the same dimension."""
        return Quantity(
            self._registry.convert(self.value, self.unit, unit),
            unit,
            self._registry,
        )

    def _coerce(self, other: "Quantity") -> float:
        if not isinstance(other, Quantity):
            raise UnitError(
                f"expected a Quantity, got {type(other).__name__}"
            )
        return self._registry.convert(other.value, other.unit, self.unit)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "Quantity") -> "Quantity":
        return Quantity(self.value + self._coerce(other), self.unit, self._registry)

    def __sub__(self, other: "Quantity") -> "Quantity":
        return Quantity(self.value - self._coerce(other), self.unit, self._registry)

    def __mul__(self, scalar: float) -> "Quantity":
        if isinstance(scalar, Quantity):
            raise UnitError("Quantity*Quantity products are not supported; "
                            "use rate units ('X per Y') for derived units")
        return Quantity(self.value * scalar, self.unit, self._registry)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Quantity":
        if isinstance(scalar, Quantity):
            raise UnitError("Quantity/Quantity division is not supported; "
                            "use rate units ('X per Y') for derived units")
        return Quantity(self.value / scalar, self.unit, self._registry)

    def __neg__(self) -> "Quantity":
        return Quantity(-self.value, self.unit, self._registry)

    # ------------------------------------------------------------------
    # comparison (converts, so 1 minute == 60 seconds)
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Quantity):
            return NotImplemented
        try:
            return self.value == self._coerce(other)
        except UnitError:
            return False

    def __lt__(self, other: "Quantity") -> bool:
        return self.value < self._coerce(other)

    def __le__(self, other: "Quantity") -> bool:
        return self.value <= self._coerce(other)

    def __gt__(self, other: "Quantity") -> bool:
        return self.value > self._coerce(other)

    def __ge__(self, other: "Quantity") -> bool:
        return self.value >= self._coerce(other)

    def __hash__(self) -> int:
        u = self._registry.unit(self.unit)
        if u.kind == "quantity" and u.dimension is not None:
            return hash((u.dimension, self.value * u.scale + u.offset))
        return hash((self.unit, self.value))

    def __repr__(self) -> str:
        return f"Quantity({self.value!r}, {self.unit!r})"
