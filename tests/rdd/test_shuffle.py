"""Portable hashing: determinism and dict-consistency properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShuffleKeyError
from repro.rdd import SJContext
from repro.rdd.shuffle import hash_bucket, portable_hash
from repro.units import Timestamp

keys = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)


@given(keys)
def test_hash_is_deterministic(key):
    assert portable_hash(key) == portable_hash(key)


@given(keys, st.integers(1, 64))
def test_bucket_in_range(key, n):
    assert 0 <= hash_bucket(key, n) < n


@given(st.integers(-(2**40), 2**40))
def test_int_float_consistency(i):
    # dict semantics: 2 == 2.0 must land in the same bucket
    assert portable_hash(i) == portable_hash(float(i))


def test_known_types_do_not_use_builtin_hash():
    # Strings must not fall through to the salted builtin hash; the
    # value below is the crc32 of "node-1".
    import zlib

    assert portable_hash("node-1") == zlib.crc32(b"node-1")


def test_tuples_differ_by_order():
    assert portable_hash((1, 2)) != portable_hash((2, 1))


@given(st.lists(st.tuples(st.text(max_size=8), st.integers()), max_size=50),
       st.integers(1, 8))
def test_equal_keys_same_bucket(pairs, n):
    for k, _v in pairs:
        assert hash_bucket(k, n) == hash_bucket(k, n)


# ----------------------------------------------------------------------
# strict mode: keys without a process-stable hash
# ----------------------------------------------------------------------

class _OpaqueKey:
    """Hashable, but only via the salted builtin hash."""

    def __init__(self, value):
        self.value = value

    def __hash__(self):
        return hash(("opaque", self.value))

    def __eq__(self, other):
        return isinstance(other, _OpaqueKey) and self.value == other.value


class _ProtocolKey(_OpaqueKey):
    def __portable_hash__(self):
        return self.value * 7


def test_strict_rejects_opaque_keys():
    with pytest.raises(ShuffleKeyError, match="process-stable"):
        portable_hash(_OpaqueKey(1), strict=True)


def test_non_strict_falls_back_to_builtin_hash():
    assert portable_hash(_OpaqueKey(1)) == hash(_OpaqueKey(1))


def test_strict_rejects_opaque_keys_nested_in_tuples():
    with pytest.raises(ShuffleKeyError):
        portable_hash((1, _OpaqueKey(2)), strict=True)


def test_portable_hash_protocol_honored_in_strict_mode():
    assert portable_hash(_ProtocolKey(3), strict=True) == 21


def test_dataclass_keys_are_portable_in_strict_mode():
    a = portable_hash(Timestamp(12.5), strict=True)
    b = portable_hash(Timestamp(12.5), strict=True)
    assert a == b
    assert portable_hash(Timestamp(13.0), strict=True) != a


def test_negative_zero_same_bucket_as_zero():
    for n in (2, 3, 7):
        assert hash_bucket(-0.0, n) == hash_bucket(0.0, n)


def test_negative_ints_bucket_in_range():
    for k in (-1, -(2**40), -17):
        for n in (1, 2, 8):
            assert 0 <= hash_bucket(k, n, strict=True) < n


def test_opaque_keys_rejected_under_process_executor():
    # Regression: the silent salted-hash fallback used to mis-bucket
    # these keys across workers, quietly dropping groupByKey matches.
    pairs = [(_OpaqueKey(i % 3), i) for i in range(12)]
    with SJContext(executor="processes", num_workers=2) as ctx:
        with pytest.raises(ShuffleKeyError):
            ctx.parallelize(pairs, 4).groupByKey().collect()


def test_opaque_keys_still_work_under_serial_executor():
    pairs = [(_OpaqueKey(i % 3), i) for i in range(12)]
    with SJContext(executor="serial") as ctx:
        got = {
            k.value: sorted(v)
            for k, v in ctx.parallelize(pairs, 4).groupByKey().collect()
        }
    assert got == {0: [0, 3, 6, 9], 1: [1, 4, 7, 10], 2: [2, 5, 8, 11]}


def test_timestamp_keys_group_correctly_under_process_executor():
    pairs = [(Timestamp(float(i % 3)), i) for i in range(12)]
    with SJContext(executor="processes", num_workers=2) as ctx:
        got = {
            k.epoch: sorted(v)
            for k, v in ctx.parallelize(pairs, 4).groupByKey().collect()
        }
    assert got == {0.0: [0, 3, 6, 9], 1.0: [1, 4, 7, 10], 2.0: [2, 5, 8, 11]}
