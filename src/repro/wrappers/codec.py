"""Text encoding/decoding of semantically typed values.

CSV cells and SQL columns are text/primitive; ScrubJay rows hold typed
objects (Timestamps, TimeSpans, lists). The codec converts in both
directions, driven entirely by the field's semantic annotation — the
unit's *kind* decides the representation:

==============  =======================================
kind            textual form
==============  =======================================
quantity/rate   float literal
count           int literal
identifier      int when numeric, else verbatim string
label           verbatim string
datetime        ISO-8601 (decoded) / epoch float accepted
timespan        ``start..end`` epoch floats
list            ``;``-separated encoded elements
==============  =======================================
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import WrapperError
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import SemanticType
from repro.units.temporal import Timestamp, TimeSpan

LIST_SEP = ";"
SPAN_SEP = ".."


def decode_value(
    text: Optional[str], sem: SemanticType, dictionary: SemanticDictionary
) -> Any:
    """Parse one textual cell into the typed value its semantics imply.

    Empty/None cells decode to None (sparse rows drop them).
    """
    if text is None or text == "":
        return None
    unit = dictionary.unit(sem.units)
    kind = unit.kind
    try:
        if kind in ("quantity", "rate"):
            return float(text)
        if kind == "count":
            return int(float(text))
        if kind == "identifier":
            stripped = text.strip()
            try:
                return int(stripped)
            except ValueError:
                return stripped
        if kind == "label":
            return text.strip()
        if kind == "datetime":
            stripped = text.strip()
            try:
                return Timestamp(float(stripped))
            except ValueError:
                return Timestamp.from_iso(stripped)
        if kind == "timespan":
            start_s, _, end_s = text.partition(SPAN_SEP)
            return TimeSpan(float(start_s), float(end_s))
        if kind == "list":
            element_units = unit.element
            assert element_units is not None
            element_sem = sem.with_units(element_units)
            return [
                decode_value(part, element_sem, dictionary)
                for part in text.split(LIST_SEP)
                if part != ""
            ]
    except (ValueError, TypeError) as exc:
        raise WrapperError(
            f"cannot decode {text!r} as {sem.units!r}: {exc}"
        ) from exc
    raise WrapperError(f"no decoder for unit kind {kind!r}")


def encode_value(
    value: Any, sem: SemanticType, dictionary: SemanticDictionary
) -> str:
    """Render one typed value back to its textual cell form."""
    if value is None:
        return ""
    unit = dictionary.unit(sem.units)
    kind = unit.kind
    if kind == "datetime":
        if not isinstance(value, Timestamp):
            raise WrapperError(f"expected Timestamp, got {type(value).__name__}")
        return repr(value.epoch)
    if kind == "timespan":
        if not isinstance(value, TimeSpan):
            raise WrapperError(f"expected TimeSpan, got {type(value).__name__}")
        return f"{value.start!r}{SPAN_SEP}{value.end!r}"
    if kind == "list":
        element_units = unit.element
        assert element_units is not None
        element_sem = sem.with_units(element_units)
        return LIST_SEP.join(
            encode_value(v, element_sem, dictionary) for v in value
        )
    return str(value)
