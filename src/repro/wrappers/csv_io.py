"""CSV data wrapper and unwrapper.

The most common interchange format in the paper's workflows: IPMI and
PAPI "recorded performance data directly into tabular files", and
derivation results are unwrapped "into a tabular file for analysis".
Cells are decoded/encoded according to the field semantics (see
:mod:`repro.wrappers.codec`); unknown columns are ignored, missing or
empty cells yield sparse rows.
"""

from __future__ import annotations

import csv
from typing import Any, Dict, List, Optional

from repro.errors import WrapperError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.wrappers.base import DataWrapper, Unwrapper
from repro.wrappers.codec import decode_value, encode_value


class CSVWrapper(DataWrapper):
    """Read a CSV file with a header row into an annotated dataset."""

    def __init__(
        self,
        path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        name: Optional[str] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        super().__init__(
            schema, dictionary, name or path, num_partitions
        )
        self.path = path

    def rows(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", newline="", encoding="utf-8") as f:
                reader = csv.DictReader(f)
                if reader.fieldnames is None:
                    raise WrapperError(f"{self.path}: empty CSV (no header)")
                known = [
                    c for c in reader.fieldnames if c in self.schema
                ]
                if not known:
                    raise WrapperError(
                        f"{self.path}: no CSV column matches the schema "
                        f"fields {self.schema.fields()}"
                    )
                for record in reader:
                    row: Dict[str, Any] = {}
                    for col in known:
                        value = decode_value(
                            record.get(col), self.schema[col], self.dictionary
                        )
                        if value is not None:
                            row[col] = value
                    if row:
                        out.append(row)
        except OSError as exc:
            raise WrapperError(f"cannot read {self.path}: {exc}") from exc
        return out


class CSVUnwrapper(Unwrapper):
    """Write a dataset to a CSV file (header = schema fields)."""

    def __init__(self, path: str, dictionary: SemanticDictionary) -> None:
        self.path = path
        self.dictionary = dictionary

    def save(self, dataset: ScrubJayDataset) -> str:
        fields = dataset.schema.fields()
        try:
            with open(self.path, "w", newline="", encoding="utf-8") as f:
                writer = csv.writer(f)
                writer.writerow(fields)
                for row in dataset.collect():
                    writer.writerow(
                        [
                            encode_value(
                                row.get(field),
                                dataset.schema[field],
                                self.dictionary,
                            )
                            for field in fields
                        ]
                    )
        except OSError as exc:
            raise WrapperError(f"cannot write {self.path}: {exc}") from exc
        return self.path
