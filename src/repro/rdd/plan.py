"""The scheduler: interprets RDD lineage and runs stages.

Evaluation walks the lineage graph from the requested RDD down to its
sources. Chains of narrow transformations are *pipelined* — composed
into a single per-partition task — while shuffles split the graph into
stages: a map stage that assigns records to output buckets (run on the
executor), a driver-side exchange that regroups buckets (standing in
for the network shuffle between cluster nodes), and a reduce stage
that merges each bucket (run on the executor). This is the same stage
structure Spark's DAG scheduler produces, and it is what gives the
benchmarks in the paper's Figure 3 their shape: transformations are
cheap and embarrassingly parallel, combinations pay for the shuffle.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, List

from repro.rdd.executors import Executor
from repro.rdd.partition import Partition
from repro.rdd.rdd import (
    RDD,
    CoalescedRDD,
    MappedPartitionsRDD,
    RangePartitionedRDD,
    RepartitionedRDD,
    ShuffledRDD,
    SourceRDD,
    UnionRDD,
)
from repro.rdd.shuffle import hash_bucket


class Scheduler:
    """Materializes RDDs by executing their lineage on an executor."""

    def __init__(self, executor: Executor) -> None:
        self.executor = executor

    def materialize(self, rdd: RDD) -> List[Partition]:
        """Compute (or fetch cached) partitions for ``rdd``."""
        if rdd._cached is not None:
            return rdd._cached
        parts = self._compute(rdd)
        if rdd._persist:
            rdd._cached = parts
        return parts

    # ------------------------------------------------------------------

    def _compute(self, rdd: RDD) -> List[Partition]:
        if isinstance(rdd, SourceRDD):
            return rdd.partitions
        if isinstance(rdd, MappedPartitionsRDD):
            return self._compute_narrow_chain(rdd)
        if isinstance(rdd, UnionRDD):
            return self._compute_union(rdd)
        if isinstance(rdd, CoalescedRDD):
            return self._compute_coalesce(rdd)
        if isinstance(rdd, RepartitionedRDD):
            return self._compute_repartition(rdd)
        if isinstance(rdd, ShuffledRDD):
            return self._compute_shuffle(rdd)
        if isinstance(rdd, RangePartitionedRDD):
            return self._compute_range_partition(rdd)
        raise TypeError(f"scheduler cannot materialize {type(rdd).__name__}")

    def _compute_narrow_chain(self, rdd: MappedPartitionsRDD) -> List[Partition]:
        """Pipeline consecutive narrow transformations into one task."""
        fns: List[Callable[[int, List[Any]], List[Any]]] = [rdd.fn]
        base: RDD = rdd.parent
        while (
            isinstance(base, MappedPartitionsRDD)
            and not base._persist
            and base._cached is None
        ):
            fns.append(base.fn)
            base = base.parent
        fns.reverse()
        base_parts = self.materialize(base)

        def composed(index: int, items: List[Any]) -> List[Any]:
            for fn in fns:
                items = fn(index, items)
            return items

        return self.executor.run_partition_tasks(composed, base_parts)

    def _compute_union(self, rdd: UnionRDD) -> List[Partition]:
        parts: List[Partition] = []
        for parent in rdd.rdds:
            for p in self.materialize(parent):
                parts.append(Partition(len(parts), p.data))
        return parts

    def _compute_coalesce(self, rdd: CoalescedRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        out: List[Partition] = [Partition(i, []) for i in range(n)]
        for p in parent_parts:
            out[p.index % n].data.extend(p.data)
        return out

    def _compute_repartition(self, rdd: RepartitionedRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        out: List[Partition] = [Partition(i, []) for i in range(n)]
        for p in parent_parts:
            for seq, item in enumerate(p.data):
                out[(p.index + seq) % n].data.append(item)
        return out

    def _compute_shuffle(self, rdd: ShuffledRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        create = rdd.create
        merge_value = rdd.merge_value
        merge_combiners = rdd.merge_combiners

        def map_task(_index: int, items: List[Any]) -> List[Any]:
            # One dict of partial combiners per output bucket: the
            # map-side combine that keeps shuffle volume proportional
            # to distinct keys rather than records.
            buckets: List[dict] = [dict() for _ in range(n)]
            for k, v in items:
                d = buckets[hash_bucket(k, n)]
                if k in d:
                    d[k] = merge_value(d[k], v)
                else:
                    d[k] = create(v)
            return [list(d.items()) for d in buckets]

        map_out = self.executor.run_partition_tasks(map_task, parent_parts)

        # Driver-side exchange: regroup bucket b from every map task.
        shuffle_parts = [
            Partition(
                b, [pair for mp in map_out for pair in mp.data[b]]
            )
            for b in range(n)
        ]

        def reduce_task(_index: int, items: List[Any]) -> List[Any]:
            merged: dict = {}
            for k, combiner in items:
                if k in merged:
                    merged[k] = merge_combiners(merged[k], combiner)
                else:
                    merged[k] = combiner
            return list(merged.items())

        return self.executor.run_partition_tasks(reduce_task, shuffle_parts)

    def _compute_range_partition(
        self, rdd: RangePartitionedRDD
    ) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        key_fn = rdd.key_fn
        ascending = rdd.ascending

        # Sample keys in the driver to pick range boundaries, as
        # Spark's RangePartitioner does with its sampling job.
        sample_keys: List[Any] = []
        for p in parent_parts:
            stride = max(1, len(p.data) // max(1, 32 * n // max(1, len(parent_parts))))
            sample_keys.extend(key_fn(x) for x in p.data[::stride])
        sample_keys.sort()
        boundaries = [
            sample_keys[(i + 1) * len(sample_keys) // n]
            for i in range(n - 1)
            if sample_keys
        ]

        def map_task(_index: int, items: List[Any]) -> List[Any]:
            buckets: List[List[Any]] = [[] for _ in range(n)]
            for x in items:
                b = bisect.bisect_right(boundaries, key_fn(x)) if boundaries else 0
                if not ascending:
                    b = n - 1 - b
                buckets[b].append(x)
            return buckets

        map_out = self.executor.run_partition_tasks(map_task, parent_parts)
        shuffle_parts = [
            Partition(b, [x for mp in map_out for x in mp.data[b]])
            for b in range(n)
        ]

        def reduce_task(_index: int, items: List[Any]) -> List[Any]:
            return sorted(items, key=key_fn, reverse=not ascending)

        return self.executor.run_partition_tasks(reduce_task, shuffle_parts)
