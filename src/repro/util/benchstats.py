"""Adaptive-stopping statistics for benchmark timings.

Fixed repeat counts are always wrong in one direction: too few repeats
on a noisy box report garbage, too many on a quiet box waste minutes.
Following the adaptive stopping rule of Mittal et al. (SC'23
workshops), :func:`measure` keeps collecting samples until the
confidence interval around the mean is *tight* — the 95% CI
half-width falls at or below a relative tolerance of the mean — or a
repeat cap is reached, and reports the bounds either way so a
``BENCH_*.json`` consumer can see how trustworthy each number is.

The t critical values are tabulated (two-sided 95%); a benchmark
harness must not grow a SciPy dependency for one quantile.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

#: two-sided 95% Student-t critical values by degrees of freedom
#: (1-30); beyond the table the normal approximation is within 2%.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
]
_Z95 = 1.960


def t_critical(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df <= 0:
        return float("inf")
    if df <= len(_T95):
        return _T95[df - 1]
    return _Z95


@dataclass
class TimingResult:
    """Samples plus the interval statistics the stopping rule used."""

    samples: List[float]
    mean: float
    std: float          #: sample standard deviation (ddof=1)
    ci_low: float       #: 95% CI lower bound on the mean
    ci_high: float      #: 95% CI upper bound on the mean
    rel_halfwidth: float  #: CI half-width / mean (the stopping metric)
    converged: bool     #: True when the rule stopped, False at the cap

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def repeats(self) -> int:
        return len(self.samples)

    def as_dict(self) -> Dict[str, Any]:
        """The JSON block benchmark payloads embed (``ci`` is the
        [low, high] bound pair)."""
        return {
            "mean_seconds": self.mean,
            "best_seconds": self.best,
            "std_seconds": self.std,
            "ci": [self.ci_low, self.ci_high],
            "rel_ci_halfwidth": self.rel_halfwidth,
            "repeats": self.repeats,
            "converged": self.converged,
            "samples": list(self.samples),
        }


def summarize(samples: List[float]) -> TimingResult:
    """Interval statistics over already-collected samples."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n < 2:
        return TimingResult(
            list(samples), mean, 0.0, mean, mean,
            float("inf"), False,
        )
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    std = math.sqrt(var)
    half = t_critical(n - 1) * std / math.sqrt(n)
    rel = half / mean if mean > 0 else float("inf")
    return TimingResult(
        list(samples), mean, std, mean - half, mean + half, rel, False,
    )


def measure(
    sample_fn: Callable[[], float],
    min_repeats: int = 3,
    max_repeats: int = 30,
    rel_ci: float = 0.05,
    warmup: int = 1,
) -> TimingResult:
    """Collect timing samples adaptively.

    ``sample_fn`` runs one measured iteration and returns its duration
    in seconds (self-timed, so callers keep setup out of the clock; a
    function returning None is timed wall-clock here as a
    convenience). Sampling repeats until the 95% CI half-width is at
    most ``rel_ci`` of the mean (with at least ``min_repeats``
    samples) or ``max_repeats`` is hit; ``warmup`` unmeasured calls
    run first to absorb cold caches and lazy imports.
    """
    if min_repeats < 2:
        raise ValueError("min_repeats must be >= 2 for an interval")
    if max_repeats < min_repeats:
        raise ValueError("max_repeats must be >= min_repeats")
    for _ in range(max(0, warmup)):
        sample_fn()
    samples: List[float] = []
    while len(samples) < max_repeats:
        start = time.perf_counter()
        out = sample_fn()
        elapsed = time.perf_counter() - start
        samples.append(float(out) if out is not None else elapsed)
        if len(samples) >= min_repeats:
            result = summarize(samples)
            if result.rel_halfwidth <= rel_ci:
                result.converged = True
                return result
    return summarize(samples)
