"""Metric queries over a sharded fleet: per-shard partials merged and
finalized once, router-side; metric subscriptions stay fresh across
fleet-wide advances."""

from __future__ import annotations

import pytest

from repro import ScrubJaySession
from repro.serve.sharded import ShardRouter

from tests.metrics.conftest import (
    RACK_POWER_SCHEMA,
    assert_groups_equal,
    power_rows,
)


def make_session(initial):
    sj = ScrubJaySession()
    sj.ingest().feed(RACK_POWER_SCHEMA, rows=initial).tail("rack_power")
    return sj


def metric_query(sj):
    return (sj.query()
            .measure("power", "mean").per("racks").grain("1h")
            .build())


def truth_at(rows):
    ref = make_session(rows)
    try:
        return ref.ask(metric_query(ref)).groups
    finally:
        ref.close()


@pytest.fixture()
def fleet():
    rows = power_rows()
    half = len(rows) // 2
    sj = make_session(rows[:half])
    router = ShardRouter(
        sj, shards=2, shard_on={"rack_power": ["rack"]}, num_workers=1
    )
    yield sj, router, rows, half
    router.close()
    sj.close()


def test_sharded_metric_query_merges_partials(fleet):
    sj, router, rows, half = fleet
    ans = router.query(metric_query(sj))
    assert ans.decision.route == "raw"
    assert_groups_equal(ans.groups, truth_at(rows[:half]))


def test_sharded_metric_query_after_advance(fleet):
    sj, router, rows, half = fleet
    router.advance("rack_power", rows=rows[half:])
    ans = router.query(metric_query(sj))
    assert_groups_equal(ans.groups, truth_at(rows))


def test_sharded_metric_subscription_follows_the_fleet(fleet):
    sj, router, rows, half = fleet
    sub = router.subscribe(metric_query(sj))
    first = sub.current()
    assert first.groups

    out = router.advance("rack_power", rows=rows[half:])
    assert out["subscriptions_refreshed"] == 1, out
    snap = sub.current()
    want = {k: v["power_mean"] for k, v in truth_at(rows).items()}
    assert_groups_equal(dict(snap.groups), want)
