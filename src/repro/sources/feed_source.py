"""An in-process push endpoint as an appendable DataSource.

The streaming analogue of :class:`~repro.sources.rows_source.RowsSource`:
producers ``push()`` typed rows, consumers tail them through the
append capability (``current_offset``/``append_scan``), and the scan
machinery sees a *stable* partition layout — ``partitions()`` always
returns ``num_partitions_hint`` slices over the current committed
length, so plans keep their shape while the data grows monotonically
underneath them.

Offsets are row counts; every offset is trivially a committed record
boundary. The source stays picklable (process executors receive a
frozen copy of the row list; the lock is driver-side only).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.semantics import Schema
from repro.errors import FeedRewoundError
from repro.sources.base import DataSource
from repro.sources.predicate import ColumnPredicate
from repro.sources.rows_source import RowsSource


class FeedSource(DataSource):
    """Push rows in; tail them back out as a growing scan source."""

    def __init__(
        self,
        schema: Schema,
        name: str = "feed",
        num_partitions: int = 4,
        rows: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> None:
        self._schema = schema
        self.name = name
        self.num_partitions_hint = max(1, num_partitions)
        self._rows: List[Dict[str, Any]] = [
            dict(r) for r in (rows or [])
        ]
        self._lock = threading.Lock()

    # the lock is a driver-side concern; worker copies are frozen
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def schema(self) -> Schema:
        return self._schema

    # -- producer side -------------------------------------------------

    def push(self, rows: Sequence[Dict[str, Any]]) -> int:
        """Append rows; returns the new committed offset (row count)."""
        copied = [dict(r) for r in rows]
        with self._lock:
            self._rows.extend(copied)
            return len(self._rows)

    # -- scan side -----------------------------------------------------

    def partitions(self) -> Sequence[Tuple[int, int]]:
        with self._lock:
            n = len(self._rows)
        k = self.num_partitions_hint
        step = -(-n // k) if n else 1
        return [
            (min(i * step, n), min((i + 1) * step, n)) for i in range(k)
        ]

    def read_partition(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ) -> List[Dict[str, Any]]:
        rows, _ = self.read_partition_stats(index, columns, predicate)
        return rows

    def read_partition_stats(
        self,
        index: int,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[ColumnPredicate] = None,
    ):
        start, end = self.partitions()[index]
        with self._lock:
            chunk = [dict(r) for r in self._rows[start:end]]
        wanted = set(columns) if columns is not None else None
        out: List[Dict[str, Any]] = []
        for row in chunk:
            if predicate is not None and not predicate.matches(row):
                continue
            if wanted is not None:
                row = {k: v for k, v in row.items() if k in wanted}
                if not row:
                    continue
            out.append(row)
        return out, {"rows_read": len(chunk), "bytes_scanned": 0}

    # -- append capability ---------------------------------------------

    def supports_append(self) -> bool:
        return True

    def current_offset(self) -> int:
        with self._lock:
            return len(self._rows)

    def append_scan(
        self,
        since_offset: Optional[int] = None,
        until_offset: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int]:
        lo = 0 if since_offset is None else since_offset
        with self._lock:
            n = len(self._rows)
            hi = n if until_offset is None else until_offset
            if lo > n or hi > n:
                raise FeedRewoundError(
                    f"{self.name}: tail offset {max(lo, hi)} is beyond "
                    f"the feed length {n}",
                    since_offset=lo, current_offset=n,
                )
            return [dict(r) for r in self._rows[lo:hi]], hi

    def bounded(self, offset: int) -> DataSource:
        rows, _ = self.append_scan(None, offset)
        snap = RowsSource(
            rows, self._schema, name=self.name,
            num_partitions=self.num_partitions_hint,
        )
        return snap
