"""ResultCache: a bounded, TTL'd in-memory tier over the §5.4 cache.

The on-disk :class:`~repro.core.cache.DerivationCache` memoizes plan
*subtrees* by content fingerprint so expensive prefixes are shared
across sessions. Serving adds a hotter, stricter need: a repeated
logical query should return without touching the executor at all, and
the entry must die the moment it can be stale. This tier provides
that:

- keyed **semantically** (:func:`repro.serve.keys.result_key`:
  plan fingerprint + session state fingerprint + catalog data
  version), so any register/drop/dictionary change orphans old
  entries;
- **TTL-bounded** — even a semantically valid entry expires after
  ``ttl`` seconds, putting a ceiling on staleness windows the version
  counters cannot see (e.g. an analyst re-running against wall-clock
  data feeds);
- **LRU-bounded** with hit/miss/eviction/expiration counters exposed
  through :meth:`stats` and the service's ``ServiceMetrics``;
- optionally **write-through** to a shared ``DerivationCache`` so a
  restarted service warms from disk.

All operations run under one lock: a read copies the entry reference
out before releasing it, so an eviction racing with that read can
never hand the caller a half-dropped entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.cache import CachedResult, DerivationCache
from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema


@dataclass
class ResultEntry:
    """One materialized result plus its bookkeeping."""

    rows: List[Dict[str, Any]]
    schema_json: dict
    name: str
    created_at: float
    #: catalog dataset names the producing plan read (dependency
    #: tracking for invalidate_dataset); empty = unknown provenance
    datasets: tuple = ()

    def to_dataset(self, ctx) -> ScrubJayDataset:
        return ScrubJayDataset.from_rows(
            ctx,
            self.rows,
            Schema.from_json_dict(self.schema_json),
            self.name,
        )


class ResultCache:
    """Semantic LRU+TTL result cache with an optional disk tier.

    Parameters
    ----------
    max_entries:
        In-memory bound; least recently used entries evict first.
    ttl:
        Seconds an entry stays servable; ``None`` disables expiry.
    backing:
        Optional :class:`DerivationCache`: misses fall through to it
        (promoting hits into memory) and puts write through to it.
        The TTL survives the round trip: write-throughs are stamped
        with a wall-clock creation time, promotion re-checks the
        entry's true age (stampless legacy entries are treated as
        expired when a TTL is set), and a memory expiration also
        invalidates the disk copy — the backing tier can never
        resurrect a stale result past the TTL ceiling.
    clock:
        Injectable monotonic clock for tests.
    wall_clock:
        Injectable wall clock (``time.time``) for the backing-entry
        age stamps, which must stay meaningful across restarts.
    """

    def __init__(
        self,
        max_entries: int = 128,
        ttl: Optional[float] = None,
        backing: Optional[DerivationCache] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.max_entries = max_entries
        self.ttl = ttl
        self.backing = backing
        self._clock = clock
        self._wall = wall_clock
        self._entries: "OrderedDict[str, ResultEntry]" = OrderedDict()
        #: dataset name -> keys of entries whose plan read it
        self._deps: Dict[str, set] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.backing_hits = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _expired(self, entry: ResultEntry) -> bool:
        return (
            self.ttl is not None
            and self._clock() - entry.created_at > self.ttl
        )

    def get(self, key: str, ctx) -> Optional[ScrubJayDataset]:
        """A live dataset for ``key`` (re-parallelized into ``ctx``),
        or None. Recency refresh is atomic with the read."""
        entry: Optional[ResultEntry] = None
        expired_here = False
        with self._lock:
            found = self._entries.get(key)
            if found is not None:
                if self._expired(found):
                    del self._entries[key]
                    self._unindex(key, found)
                    self.expirations += 1
                    expired_here = True
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    entry = found
        if entry is not None:
            return entry.to_dataset(ctx)
        if expired_here:
            # Kill the write-through copy too, or the fallthrough
            # below would re-promote the stale entry with a fresh TTL.
            if self.backing is not None:
                self.backing.invalidate(key)
            with self._lock:
                self.misses += 1
            return None

        # Fall through to the shared on-disk tier, if any.
        if self.backing is not None:
            cold = self.backing.get(key)
            if cold is not None:
                age = self._backing_age(cold)
                if self.ttl is not None and (age is None or age > self.ttl):
                    # Expired (or unknown-age legacy entry) on disk:
                    # the TTL ceiling holds across restarts too.
                    self.backing.invalidate(key)
                    with self._lock:
                        self.expirations += 1
                        self.misses += 1
                    return None
                promoted = ResultEntry(
                    rows=cold.rows,
                    schema_json=cold.schema_json,
                    name=cold.name,
                    # Back-date so the remaining TTL reflects the
                    # entry's true age, not the promotion instant.
                    created_at=self._clock() - (age or 0.0),
                )
                with self._lock:
                    self.hits += 1
                    self.backing_hits += 1
                    self._insert(key, promoted)
                return promoted.to_dataset(ctx)
        with self._lock:
            self.misses += 1
        return None

    def _backing_age(self, cold: CachedResult) -> Optional[float]:
        """Seconds since the backing entry was written, or None when
        the entry predates creation stamps."""
        stamp = getattr(cold, "created_at_wall", None)
        if stamp is None:
            return None
        return max(0.0, self._wall() - stamp)

    def put(
        self,
        key: str,
        dataset: ScrubJayDataset,
        datasets: Optional[List[str]] = None,
    ) -> None:
        """Materialize ``dataset`` under ``key`` (and write through to
        the disk tier when configured). ``datasets`` names the catalog
        inputs the producing plan read, so
        :meth:`invalidate_dataset` can evict exactly the dependents of
        an appended-to dataset."""
        entry = ResultEntry(
            rows=dataset.collect(),
            schema_json=dataset.schema.to_json_dict(),
            name=dataset.name,
            created_at=self._clock(),
            datasets=tuple(datasets or ()),
        )
        with self._lock:
            self._insert(key, entry)
        if self.backing is not None:
            self.backing.put_entry(
                key,
                CachedResult(
                    rows=entry.rows,
                    schema_json=entry.schema_json,
                    name=entry.name,
                    created_at_wall=self._wall(),
                ),
            )

    def _insert(self, key: str, entry: ResultEntry) -> None:
        # caller holds self._lock
        old = self._entries.get(key)
        if old is not None:
            self._unindex(key, old)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for name in entry.datasets:
            self._deps.setdefault(name, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._unindex(evicted_key, evicted)
            self.evictions += 1

    def _unindex(self, key: str, entry: ResultEntry) -> None:
        # caller holds self._lock
        for name in entry.datasets:
            keys = self._deps.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._deps[name]

    def invalidate_dataset(self, name: str) -> int:
        """Evict every entry whose producing plan read dataset
        ``name`` (and its write-through copies); unrelated entries
        survive. The fix for the append story: before this, growing a
        dataset meant drop + re-register, which bumps
        ``catalog_version`` and orphans *every* tenant's cached
        results fleet-wide. A feed advance calls this instead —
        eviction scoped to actual dependents. Returns how many
        entries were dropped.
        """
        with self._lock:
            keys = list(self._deps.get(name, ()))
            for key in keys:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._unindex(key, entry)
            self.invalidations += len(keys)
        if self.backing is not None:
            for key in keys:
                self.backing.invalidate(key)
        return len(keys)

    # ------------------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._deps.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "backing_hits": self.backing_hits,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / total) if total else None,
                "entries": len(self._entries),
                "ttl": self.ttl,
            }
