"""Actions: collect/count/take/reduce/fold/aggregate and friends."""

import pytest


def test_collect_preserves_partition_order(ctx):
    assert ctx.parallelize(range(10), 3).collect() == list(range(10))


def test_count(ctx):
    assert ctx.parallelize(range(17), 4).count() == 17
    assert ctx.emptyRDD().count() == 0


def test_take_and_first(ctx):
    r = ctx.parallelize(range(10), 4)
    assert r.take(3) == [0, 1, 2]
    assert r.take(100) == list(range(10))
    assert r.first() == 0


def test_first_on_empty_raises(ctx):
    with pytest.raises(ValueError):
        ctx.emptyRDD().first()


def test_reduce(ctx):
    assert ctx.parallelize(range(1, 6), 3).reduce(lambda a, b: a * b) == 120


def test_reduce_empty_raises(ctx):
    with pytest.raises(ValueError):
        ctx.emptyRDD().reduce(lambda a, b: a + b)


def test_reduce_with_empty_partitions(ctx):
    # more partitions than elements leaves empty partitions behind
    assert ctx.parallelize([5], 1).union(ctx.emptyRDD()).reduce(
        lambda a, b: a + b
    ) == 5


def test_fold(ctx):
    assert ctx.parallelize(range(4), 2).fold(10, lambda a, b: a + b) == 16


def test_aggregate(ctx):
    total, count = ctx.parallelize(range(10), 3).aggregate(
        (0, 0),
        lambda acc, x: (acc[0] + x, acc[1] + 1),
        lambda a, b: (a[0] + b[0], a[1] + b[1]),
    )
    assert (total, count) == (45, 10)


def test_sum_min_max_mean(ctx):
    r = ctx.parallelize([3, 1, 4, 1, 5], 2)
    assert r.sum() == 14
    assert r.min() == 1
    assert r.max() == 5
    assert r.mean() == pytest.approx(2.8)


def test_mean_empty_raises(ctx):
    with pytest.raises(ValueError):
        ctx.emptyRDD().mean()


def test_zipWithIndex_global_offsets(ctx):
    r = ctx.parallelize(list("abcde"), 3).zipWithIndex()
    assert r.collect() == [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)]


def test_top(ctx):
    r = ctx.parallelize([5, 1, 9, 3], 2)
    assert r.top(2) == [9, 5]
    assert r.top(2, key_fn=lambda x: -x) == [1, 3]


def test_foreach_side_effects(ctx):
    seen = []
    ctx.parallelize([1, 2, 3]).foreach(seen.append)
    assert seen == [1, 2, 3]
