"""Shared streaming fixtures: a small live-feed schema and row maker."""

from __future__ import annotations

from repro.core.semantics import Schema, domain, value

FEED_SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "tick": domain("time", "seconds"),
    "temp": value("temperature", "degrees Celsius"),
})


def feed_rows(start: int, n: int, nodes: int = 4):
    """``n`` rows with globally unique ``tick`` values from ``start``."""
    return [
        {
            "node": (start + i) % nodes,
            "tick": float(start + i),
            "temp": 20.0 + (start + i) % 11,
        }
        for i in range(n)
    ]


def row_multiset(rows):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items()))
        for row in rows
    )
