"""Wide-column store: data model, flush/scan, persistence."""

import pytest

from repro.errors import StoreError
from repro.store import WideColumnStore


@pytest.fixture()
def store(tmp_path):
    return WideColumnStore(str(tmp_path / "store"))


def test_create_and_insert_scan(store):
    t = store.create_table("perf", "ldms", ["node"], ["time"])
    t.insert({"node": 1, "time": 2.0, "v": 10})
    t.insert({"node": 1, "time": 1.0, "v": 9})
    t.insert({"node": 2, "time": 0.5, "v": 7})
    rows = list(t.scan())
    assert len(rows) == 3
    # within a partition, the memtable scan is clustering-ordered
    node1 = [r for r in rows if r["node"] == 1]
    assert [r["time"] for r in node1] == [1.0, 2.0]


def test_partition_scan(store):
    t = store.create_table("perf", "ldms", ["node"])
    t.insert_many([{"node": n, "v": n} for n in (1, 2, 1)])
    assert len(list(t.scan(partition=(1,)))) == 2
    assert len(list(t.scan(partition=1))) == 2  # scalar convenience
    assert list(t.scan(partition=(9,))) == []


def test_flush_creates_segments_and_scan_merges(store):
    t = store.create_table("perf", "ldms", ["node"], ["time"])
    t.insert({"node": 1, "time": 1.0})
    t.flush()
    t.insert({"node": 1, "time": 2.0})
    assert t.count() == 2
    t.flush()
    assert len(t._segment_paths()) == 2
    assert t.count() == 2


def test_segments_sorted_by_clustering(store):
    t = store.create_table("perf", "ldms", ["node"], ["time"])
    t.insert_many([{"node": 1, "time": t_} for t_ in (3.0, 1.0, 2.0)])
    t.flush()
    assert [r["time"] for r in t.scan()] == [1.0, 2.0, 3.0]


def test_memtable_auto_flush(store):
    t = store.create_table("perf", "ldms", ["node"], memtable_limit=5)
    t.insert_many([{"node": i} for i in range(7)])
    assert len(t._segment_paths()) == 1
    assert t.count() == 7


def test_missing_partition_key_rejected(store):
    t = store.create_table("perf", "ldms", ["node"])
    with pytest.raises(StoreError, match="partition key"):
        t.insert({"time": 1.0})


def test_table_requires_partition_key(store):
    with pytest.raises(StoreError):
        store.create_table("perf", "bad", [])


def test_duplicate_table_rejected(store):
    store.create_table("perf", "ldms", ["node"])
    with pytest.raises(StoreError, match="already exists"):
        store.create_table("perf", "ldms", ["node"])


def test_reopen_table_from_disk(tmp_path):
    root = str(tmp_path / "store")
    s1 = WideColumnStore(root)
    t = s1.create_table("perf", "ldms", ["node"], ["time"])
    t.insert({"node": 1, "time": 1.0})
    t.flush()
    s2 = WideColumnStore(root)
    t2 = s2.table("perf", "ldms")
    assert t2.partition_key == ("node",)
    assert t2.clustering == ("time",)
    assert t2.count() == 1


def test_unknown_table_raises(store):
    with pytest.raises(StoreError, match="no table"):
        store.table("perf", "ghost")


def test_keyspace_and_table_listing(store):
    store.create_table("perf", "ldms", ["node"])
    store.create_table("perf", "papi", ["node"])
    store.create_table("facility", "temps", ["rack"])
    assert store.keyspaces() == ["facility", "perf"]
    assert store.tables("perf") == ["ldms", "papi"]
    assert store.tables("ghost") == []


def test_partitions_listing(store):
    t = store.create_table("perf", "ldms", ["node"])
    t.insert_many([{"node": n} for n in (3, 1, 3)])
    assert t.partitions() == [(1,), (3,)]


def test_nosql_unwrapper_round_trip(ctx, dictionary, store):
    from repro.core.dataset import ScrubJayDataset
    from repro.core.semantics import Schema, domain, value
    from repro.sources import TableSource
    from repro.wrappers import NoSQLUnwrapper

    schema = Schema({
        "node": domain("compute nodes", "identifier"),
        "v": value("power", "watts"),
    })
    rows = [{"node": 1, "v": 5.0}, {"node": 2, "v": 6.0}]
    ds = ScrubJayDataset.from_rows(ctx, rows, schema, "t")
    NoSQLUnwrapper(store, "perf", "power", ["node"]).save(ds)
    src = TableSource(store, "perf", "power", schema)
    back = []
    for i in range(src.num_partitions()):
        back.extend(src.read_partition(i))
    assert sorted(back, key=lambda r: r["node"]) == rows
