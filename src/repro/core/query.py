"""The analyst-facing query (paper §5.1).

Unlike traditional query languages of table names and columns, a
ScrubJay query names only *dimensions*: the domain dimensions of
interest (what entities the answer should relate — CPUs, racks, jobs)
and the value dimensions of interest (what measurements to attach —
temperatures, frequencies, heat), with optional units. The derivation
engine finds a sequence of derivations producing a dataset containing
a relation between all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError

ValueSpec = Union[str, Tuple[str, str]]


@dataclass(frozen=True)
class ValueTerm:
    """One requested measurement: a dimension, optionally with units."""

    dimension: str
    units: Optional[str] = None

    def to_json_dict(self) -> dict:
        return {"dimension": self.dimension, "units": self.units}


@dataclass(frozen=True)
class FilterTerm:
    """One restriction on a queried dimension.

    Like the rest of the query, it names a *dimension*, not a field —
    the engine resolves it against the solved plan's schema and appends
    the corresponding filter derivation (which the pushdown rewrite
    then collapses into the leaf scans). ``op`` is ``"eq"`` (field ==
    value) or ``"range"`` (low ≤ field < high, either bound optional).
    """

    dimension: str
    op: str = "eq"
    value: object = None
    low: Optional[float] = None
    high: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in ("eq", "range"):
            raise QueryError(f"unknown filter op {self.op!r}")
        if self.op == "range" and self.low is None and self.high is None:
            raise QueryError(
                "a range filter needs at least one of low/high"
            )

    def to_json_dict(self) -> dict:
        out: dict = {"dimension": self.dimension, "op": self.op}
        if self.op == "eq":
            out["value"] = self.value
        else:
            out["low"] = self.low
            out["high"] = self.high
        return out

    @staticmethod
    def from_json_dict(d: dict) -> "FilterTerm":
        return FilterTerm(
            d["dimension"],
            d.get("op", "eq"),
            d.get("value"),
            d.get("low"),
            d.get("high"),
        )

    def __str__(self) -> str:
        if self.op == "eq":
            return f"{self.dimension} == {self.value!r}"
        lo = "" if self.low is None else f"{self.low} <= "
        hi = "" if self.high is None else f" < {self.high}"
        return f"{lo}{self.dimension}{hi}"


@dataclass(frozen=True)
class Query:
    """A set of domain dimensions and value dimensions of interest.

    Example — the paper's §7.2 heat query::

        Query(domains=("jobs", "racks"),
              values=("applications", "heat"))
    """

    domains: Tuple[str, ...]
    values: Tuple[ValueTerm, ...]
    #: optional restrictions on dimensions; the engine appends them to
    #: the solved plan (and the pushdown rewrite collapses them into
    #: the leaf scans). Default empty keeps pre-filter queries —
    #: including their JSON form and fingerprints — unchanged.
    filters: Tuple[FilterTerm, ...] = ()

    @staticmethod
    def of(
        domains: Sequence[str],
        values: Sequence[ValueSpec],
        filters: Sequence[FilterTerm] = (),
    ) -> "Query":
        """Build a query from plain strings / (dimension, units) pairs."""
        if not domains:
            raise QueryError("a query needs at least one domain dimension")
        if not values:
            raise QueryError("a query needs at least one value dimension")
        terms: List[ValueTerm] = []
        for v in values:
            if isinstance(v, str):
                terms.append(ValueTerm(v))
            else:
                dim, units = v
                terms.append(ValueTerm(dim, units))
        return Query(tuple(domains), tuple(terms), tuple(filters))

    def validate(self, dictionary) -> None:
        """Check every referenced dimension/unit keyword exists."""
        for dim in self.domains:
            if not dictionary.has_dimension(dim):
                raise QueryError(f"unknown domain dimension {dim!r}")
        for term in self.values:
            if not dictionary.has_dimension(term.dimension):
                raise QueryError(
                    f"unknown value dimension {term.dimension!r}"
                )
            if term.units is not None and not dictionary.has_unit(term.units):
                raise QueryError(f"unknown units {term.units!r}")
        for flt in self.filters:
            if not dictionary.has_dimension(flt.dimension):
                raise QueryError(
                    f"unknown filter dimension {flt.dimension!r}"
                )
            if flt.op == "range" and \
                    not dictionary.dimension(flt.dimension).ordered:
                raise QueryError(
                    f"range filter on unordered dimension "
                    f"{flt.dimension!r}"
                )

    def value_dimensions(self) -> List[str]:
        return [t.dimension for t in self.values]

    def to_json_dict(self) -> dict:
        out = {
            "domains": list(self.domains),
            "values": [t.to_json_dict() for t in self.values],
        }
        # Only present when used, so unfiltered queries serialize (and
        # hash, e.g. for serve-layer plan keys) exactly as before.
        if self.filters:
            out["filters"] = [f.to_json_dict() for f in self.filters]
        return out

    @staticmethod
    def from_json_dict(d: dict) -> "Query":
        return Query(
            tuple(d["domains"]),
            tuple(
                ValueTerm(t["dimension"], t.get("units"))
                for t in d["values"]
            ),
            tuple(
                FilterTerm.from_json_dict(f)
                for f in d.get("filters", ())
            ),
        )

    def __str__(self) -> str:
        vals = ", ".join(
            t.dimension + (f" [{t.units}]" if t.units else "")
            for t in self.values
        )
        out = f"Query(domains: {', '.join(self.domains)}; values: {vals}"
        if self.filters:
            out += "; where: " + ", ".join(str(f) for f in self.filters)
        return out + ")"


class QueryBuilder:
    """Fluent construction of a :class:`Query`.

    The builder is the primary analyst-facing way to phrase a
    question::

        q = (session.query()
             .across("jobs", "racks")
             .value("heat", units="W")
             .build())

    Each call appends and returns the builder; :meth:`build` freezes
    the accumulated terms into the immutable :class:`Query`
    (``Query.of`` remains as a thin one-shot delegate). Builders
    handed out by :meth:`ScrubJaySession.query` are session-bound and
    additionally offer the terminals :meth:`plan`, :meth:`ask`, and
    :meth:`explain`, which build and immediately hand the query to
    the session.
    """

    def __init__(self, session=None) -> None:
        self._session = session
        self._domains: List[str] = []
        self._values: List[ValueTerm] = []
        self._filters: List[FilterTerm] = []

    # -- accumulation --------------------------------------------------

    def across(self, *domains: str) -> "QueryBuilder":
        """Add domain dimensions the answer must relate."""
        self._domains.extend(domains)
        return self

    def value(
        self, dimension: str, units: Optional[str] = None
    ) -> "QueryBuilder":
        """Add one value dimension, optionally with requested units."""
        self._values.append(ValueTerm(dimension, units))
        return self

    def values(self, *dimensions: str) -> "QueryBuilder":
        """Add several value dimensions (default units)."""
        self._values.extend(ValueTerm(d) for d in dimensions)
        return self

    def where(
        self,
        dimension: str,
        equals: object = None,
        at_least: Optional[float] = None,
        below: Optional[float] = None,
        between: Optional[Tuple[float, float]] = None,
    ) -> "QueryBuilder":
        """Restrict a dimension: ``equals=`` for exact match, or
        ``at_least=``/``below=``/``between=(lo, hi)`` for a half-open
        range ``lo ≤ x < hi`` on an ordered dimension. The engine
        resolves the dimension against the answer's schema and the
        pushdown rewrite carries the restriction into the leaf scans.
        """
        range_args = [at_least, below, between]
        if equals is not None and any(a is not None for a in range_args):
            raise QueryError(
                "where() takes either equals= or range bounds, not both"
            )
        if between is not None and (at_least is not None
                                    or below is not None):
            raise QueryError(
                "where() takes either between= or at_least=/below=, "
                "not both"
            )
        if equals is not None:
            self._filters.append(FilterTerm(dimension, "eq", equals))
            return self
        if between is not None:
            at_least, below = between
        if at_least is None and below is None:
            raise QueryError(
                "where() needs equals=, at_least=, below=, or between="
            )
        # Timestamps compare by epoch in filter_range; accept them here.
        low = getattr(at_least, "epoch", at_least)
        high = getattr(below, "epoch", below)
        self._filters.append(FilterTerm(dimension, "range", None, low, high))
        return self

    # -- terminals -----------------------------------------------------

    def build(self) -> Query:
        """Freeze into an immutable :class:`Query`."""
        if not self._domains:
            raise QueryError("a query needs at least one domain dimension")
        if not self._values:
            raise QueryError("a query needs at least one value dimension")
        return Query(
            tuple(self._domains), tuple(self._values), tuple(self._filters)
        )

    def _require_session(self, what: str):
        if self._session is None:
            raise QueryError(
                f"this builder is not bound to a session; build() the "
                f"query and pass it to a session to {what} it"
            )
        return self._session

    def plan(self):
        """Build and plan (but do not execute) via the bound session."""
        return self._require_session("plan").plan(self.build())

    def ask(self):
        """Build, plan, and execute via the bound session; returns the
        session's :class:`~repro.core.answer.Answer`."""
        return self._require_session("ask").ask(self.build())

    def explain(self, analyze: bool = False) -> str:
        """Build and render the plan via the bound session (optionally
        EXPLAIN ANALYZE — see :meth:`ScrubJaySession.explain`)."""
        return self._require_session("explain").explain(
            self.build(), analyze=analyze
        )

    def __repr__(self) -> str:
        vals = ", ".join(
            t.dimension + (f"[{t.units}]" if t.units else "")
            for t in self._values
        )
        return (
            f"QueryBuilder(across: {', '.join(self._domains) or '-'}; "
            f"values: {vals or '-'})"
        )
