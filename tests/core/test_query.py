"""Query construction and validation."""

import pytest

from repro.core.query import Query, ValueTerm
from repro.errors import QueryError


def test_of_with_strings():
    q = Query.of(["jobs", "racks"], ["applications", "heat"])
    assert q.domains == ("jobs", "racks")
    assert q.value_dimensions() == ["applications", "heat"]
    assert all(t.units is None for t in q.values)


def test_of_with_units_pairs():
    q = Query.of(["cpus"], [("temperature", "degrees Fahrenheit")])
    assert q.values[0] == ValueTerm("temperature", "degrees Fahrenheit")


def test_requires_domains_and_values():
    with pytest.raises(QueryError):
        Query.of([], ["heat"])
    with pytest.raises(QueryError):
        Query.of(["racks"], [])


def test_validate_known_dimensions(dictionary):
    Query.of(["racks"], ["heat"]).validate(dictionary)


def test_validate_unknown_domain(dictionary):
    with pytest.raises(QueryError, match="unknown domain"):
        Query.of(["submarines"], ["heat"]).validate(dictionary)


def test_validate_unknown_value_dimension(dictionary):
    with pytest.raises(QueryError, match="unknown value"):
        Query.of(["racks"], ["vibes"]).validate(dictionary)


def test_validate_unknown_units(dictionary):
    with pytest.raises(QueryError, match="unknown units"):
        Query.of(["racks"], [("heat", "wibbles")]).validate(dictionary)


def test_json_round_trip():
    q = Query.of(["cpus"], ["active frequency",
                            ("temperature", "kelvin")])
    back = Query.from_json_dict(q.to_json_dict())
    assert back == q


def test_str_rendering():
    text = str(Query.of(["racks"], [("heat", "delta degrees Celsius")]))
    assert "racks" in text and "heat" in text and "delta" in text
