"""SQL (sqlite3) data wrapper and unwrapper.

The paper's first DAT sources — job-queue logs and OSIsoft PI sensor
feeds — are "continuously monitored and recorded in relational
databases", read through "a common data wrapper to extract column
names from their schemas and convert their rows to named tuples".
This wrapper does the same against sqlite3: column names come from
the live cursor description, values are decoded per field semantics.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Optional

from repro.errors import WrapperError
from repro.core.dataset import ScrubJayDataset
from repro.core.dictionary import SemanticDictionary
from repro.core.semantics import Schema
from repro.wrappers.base import DataWrapper, Unwrapper
from repro.wrappers.codec import decode_value, encode_value


class SQLWrapper(DataWrapper):
    """Read a table (or arbitrary SELECT) from a sqlite3 database."""

    def __init__(
        self,
        db_path: str,
        schema: Schema,
        dictionary: SemanticDictionary,
        table: Optional[str] = None,
        query: Optional[str] = None,
        name: Optional[str] = None,
        num_partitions: Optional[int] = None,
    ) -> None:
        if (table is None) == (query is None):
            raise WrapperError("provide exactly one of table= or query=")
        super().__init__(
            schema, dictionary, name or table or "sql", num_partitions
        )
        self.db_path = db_path
        self.table = table
        self.query = query

    def rows(self) -> List[Dict[str, Any]]:
        sql = self.query or f'SELECT * FROM "{self.table}"'
        out: List[Dict[str, Any]] = []
        try:
            with sqlite3.connect(self.db_path) as conn:
                cursor = conn.execute(sql)
                columns = [d[0] for d in cursor.description]
                known = [c for c in columns if c in self.schema]
                if not known:
                    raise WrapperError(
                        f"{self.db_path}: no column of {columns} matches "
                        f"the schema fields {self.schema.fields()}"
                    )
                for record in cursor:
                    named = dict(zip(columns, record))
                    row: Dict[str, Any] = {}
                    for col in known:
                        raw = named[col]
                        value = decode_value(
                            None if raw is None else str(raw),
                            self.schema[col],
                            self.dictionary,
                        )
                        if value is not None:
                            row[col] = value
                    if row:
                        out.append(row)
        except sqlite3.Error as exc:
            raise WrapperError(
                f"sqlite error reading {self.db_path}: {exc}"
            ) from exc
        return out


class SQLUnwrapper(Unwrapper):
    """Write a dataset into a sqlite3 table (replacing it)."""

    def __init__(
        self, db_path: str, table: str, dictionary: SemanticDictionary
    ) -> None:
        self.db_path = db_path
        self.table = table
        self.dictionary = dictionary

    def save(self, dataset: ScrubJayDataset) -> str:
        fields = dataset.schema.fields()
        cols = ", ".join(f'"{f}" TEXT' for f in fields)
        placeholders = ", ".join("?" for _ in fields)
        try:
            with sqlite3.connect(self.db_path) as conn:
                conn.execute(f'DROP TABLE IF EXISTS "{self.table}"')
                conn.execute(f'CREATE TABLE "{self.table}" ({cols})')
                conn.executemany(
                    f'INSERT INTO "{self.table}" VALUES ({placeholders})',
                    (
                        tuple(
                            encode_value(
                                row.get(field),
                                dataset.schema[field],
                                self.dictionary,
                            )
                            for field in fields
                        )
                        for row in dataset.collect()
                    ),
                )
        except sqlite3.Error as exc:
            raise WrapperError(
                f"sqlite error writing {self.db_path}: {exc}"
            ) from exc
        return self.table
