#!/usr/bin/env python3
"""Case study 1 (paper §7.2): application impact on rack heat.

Simulates the first dedicated-access-time session — SLURM job-queue
log, administrator-provided node/rack layout, and the 2-minute OSIsoft
PI rack temperature feed — then asks ScrubJay for *application names
over jobs* and *heat over racks*. The engine derives the Figure 5
pipeline (explode the job log, join the layout, derive heat from the
hot/cold aisle differential, interpolation-join in time); the analysis
then reproduces Figure 4: rank (application, rack) pairs by heat, spot
the AMG outlier on rack 17, and render its top/middle/bottom heat
profiles over time.

Run: python examples/rack_heat.py
"""

from repro import ScrubJaySession
from repro.analysis import rank_groups, time_series, zscore_outliers
from repro.datagen import generate_dat1
from repro.datagen.facility import FacilityConfig

AMG_RACK = 17


def sparkline(values, width=60) -> str:
    """Render a value series as a unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    stride = max(1, len(values) // width)
    sampled = values[::stride]
    lo, hi = min(sampled), max(sampled)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled
    )


def main() -> None:
    print("simulating the facility (20 racks × 8 nodes, 2.5 h DAT)...")
    dat = generate_dat1(
        facility_config=FacilityConfig(num_racks=20, nodes_per_rack=8),
        duration=2.5 * 3600.0,
        amg_rack=AMG_RACK,
        amg_start=1800.0,
        amg_duration=5400.0,
    )

    with ScrubJaySession() as sj:
        dat.register(sj)
        print(f"registered datasets: {', '.join(sorted(sj.schemas()))}\n")

        plan = (sj.query().across("jobs", "racks")
                .values("applications", "heat").plan())
        print("derivation sequence (the paper's Figure 5):")
        print(plan.describe())

        result = sj.execute(plan).persist()
        print(f"\nderived relation: {result.count()} rows")

        # Figure 4's analysis: sort by heat, identify the outlier
        ranked = rank_groups(result, ["job_name", "rack"], "heat", "max")
        print("\n(application, rack) ranked by peak heat:")
        for (app, rack), heat in ranked[:6]:
            marker = "  ← outlier" if (app, rack) == ("AMG", AMG_RACK) else ""
            print(f"  {app:>10} rack {rack:>3}: {heat:7.2f} ΔC{marker}")

        outliers = zscore_outliers(result, ["job_name", "rack"], "heat",
                                   "max", threshold=2.0)
        if outliers:
            (app, rack), heat, z = outliers[0]
            print(f"\nz-score outlier: {app} on rack {rack} "
                  f"(peak {heat:.1f} ΔC, z={z:+.1f})")

        # Figure 4's plot: rack-17 heat profile, top/middle/bottom
        # (look the time field up by dimension; the engine is free to
        # pick either join orientation, which changes field names)
        time_field = result.schema.domain_field("time")
        series = time_series(
            result.where(lambda r: r.get("rack") == AMG_RACK),
            ["location"], time_field, "heat",
        )
        print(f"\nrack {AMG_RACK} heat profile during the DAT "
              "(AMG's regular climb):")
        for loc in ("top", "middle", "bottom"):
            values = [h for _t, h in series[(loc,)]]
            print(f"  {loc:>7} {sparkline(values)} "
                  f"(min {min(values):5.1f}, max {max(values):5.1f})")


if __name__ == "__main__":
    main()
