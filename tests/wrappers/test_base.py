"""Unwrapper base class contract."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.wrappers import Unwrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [{"node": i, "temp": 20.0 + i} for i in range(10)]


def test_unwrapper_is_abstract():
    with pytest.raises(TypeError):
        Unwrapper()  # type: ignore[abstract]


def test_unwrapper_subclass_saves(ctx):
    class Collecting(Unwrapper):
        def save(self, dataset):
            self.rows = dataset.collect()
            return "handle"

    ds = ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "mem")
    u = Collecting()
    assert u.save(ds) == "handle"
    assert u.rows == ROWS


def test_eager_wrapper_shims_are_gone():
    # the DataWrapper/RowsWrapper ingestion shims were removed in favor
    # of session.ingest(); make sure they don't quietly come back
    import repro.wrappers as w
    for name in ("DataWrapper", "RowsWrapper", "CSVWrapper",
                 "SQLWrapper", "NoSQLWrapper"):
        assert not hasattr(w, name), name
