"""Shared fixtures: contexts, dictionaries, and small canonical datasets."""

from __future__ import annotations

import pytest

from repro import (
    DOMAIN,
    VALUE,
    Schema,
    ScrubJayDataset,
    ScrubJaySession,
    SemanticType,
    SJContext,
    TimeSpan,
    Timestamp,
    default_dictionary,
)


@pytest.fixture()
def ctx():
    c = SJContext(executor="serial", default_parallelism=4)
    yield c
    c.stop()


@pytest.fixture(scope="session")
def thread_ctx():
    c = SJContext(executor="threads", num_workers=2, default_parallelism=4)
    yield c
    c.stop()


@pytest.fixture(scope="session")
def process_ctx():
    c = SJContext(executor="processes", num_workers=2, default_parallelism=4)
    yield c
    c.stop()


@pytest.fixture()
def dictionary():
    return default_dictionary()


@pytest.fixture()
def session():
    sj = ScrubJaySession()
    yield sj
    sj.close()


# ----------------------------------------------------------------------
# canonical small datasets (the Figure 5 trio, miniaturized)
# ----------------------------------------------------------------------

JOBS_SCHEMA = Schema({
    "job_id": SemanticType(DOMAIN, "jobs", "identifier"),
    "job_name": SemanticType(VALUE, "applications", "label"),
    "nodelist": SemanticType(DOMAIN, "compute nodes", "list<identifier>"),
    "elapsed": SemanticType(VALUE, "time", "seconds"),
    "timespan": SemanticType(DOMAIN, "time", "timespan"),
})

LAYOUT_SCHEMA = Schema({
    "node": SemanticType(DOMAIN, "compute nodes", "identifier"),
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
})

TEMPS_SCHEMA = Schema({
    "rack": SemanticType(DOMAIN, "racks", "identifier"),
    "location": SemanticType(DOMAIN, "rack locations", "label"),
    "aisle": SemanticType(DOMAIN, "aisles", "label"),
    "time": SemanticType(DOMAIN, "time", "datetime"),
    "temp": SemanticType(VALUE, "temperature", "degrees Celsius"),
})


def jobs_rows():
    return [
        {"job_id": 1, "job_name": "AMG", "nodelist": [0, 1],
         "elapsed": 600.0, "timespan": TimeSpan(0.0, 600.0)},
        {"job_id": 2, "job_name": "LULESH", "nodelist": [2],
         "elapsed": 480.0, "timespan": TimeSpan(240.0, 720.0)},
    ]


def layout_rows():
    return [
        {"node": 0, "rack": 17},
        {"node": 1, "rack": 17},
        {"node": 2, "rack": 18},
    ]


def temps_rows():
    rows = []
    for t in range(0, 800, 120):
        for rack in (17, 18):
            for loc in ("top", "middle", "bottom"):
                base = 18.0
                heat = 6.0 if rack == 17 else 2.0
                rows.append({"rack": rack, "location": loc, "aisle": "cold",
                             "time": Timestamp(float(t)), "temp": base})
                rows.append({"rack": rack, "location": loc, "aisle": "hot",
                             "time": Timestamp(float(t)),
                             "temp": base + heat})
    return rows


@pytest.fixture()
def jobs_ds(ctx):
    return ScrubJayDataset.from_rows(ctx, jobs_rows(), JOBS_SCHEMA, "jobs")


@pytest.fixture()
def layout_ds(ctx):
    return ScrubJayDataset.from_rows(
        ctx, layout_rows(), LAYOUT_SCHEMA, "layout"
    )


@pytest.fixture()
def temps_ds(ctx):
    return ScrubJayDataset.from_rows(
        ctx, temps_rows(), TEMPS_SCHEMA, "temps"
    )


@pytest.fixture()
def fig5_session():
    sj = ScrubJaySession()
    sj.register_rows(jobs_rows(), JOBS_SCHEMA, "job_queue_log")
    sj.register_rows(layout_rows(), LAYOUT_SCHEMA, "node_layout")
    sj.register_rows(temps_rows(), TEMPS_SCHEMA, "rack_temperatures")
    yield sj
    sj.close()
