"""Zone-map sidecar lifecycle: backfill on open, stamps, staleness.

Pre-fix, opening a table re-derived nothing (segments written before
zone maps existed were never prunable) and a sidecar surviving a
segment rewrite was trusted blindly. These tests fail on that code.
"""

import os
import pickle

import pytest

from repro.store import WideColumnStore


@pytest.fixture()
def store(tmp_path):
    return WideColumnStore(str(tmp_path / "store"))


def _zone_paths(table):
    return [table._zone_path(p) for p in table._segment_paths()]


def test_fresh_sidecars_skipped_without_reads(store):
    t = store.create_table("perf", "temps", ["node"])
    t.insert_many([{"node": n, "v": float(n)} for n in range(6)])
    t.flush()
    # flush wrote a stamped sidecar: nothing to backfill
    assert t.ensure_zone_maps() == 0


def test_missing_sidecar_backfilled_on_open(tmp_path):
    root = str(tmp_path / "store")
    t = WideColumnStore(root).create_table("perf", "temps", ["node"])
    t.insert_many([{"node": n, "v": float(n)} for n in range(6)])
    t.flush()
    for zpath in _zone_paths(t):
        os.remove(zpath)
    assert all(z is None for _, z in t.segment_zones())

    # a second store opening the same directory must backfill
    reopened = WideColumnStore(root).table("perf", "temps")
    zones = reopened.segment_zones()
    assert zones and all(z is not None for _, z in zones)
    assert zones[0][1]["columns"]["v"]["max"] == 5.0
    assert reopened.ensure_zone_maps() == 0  # now all fresh


def test_sidecar_carries_segment_stamp(store):
    t = store.create_table("perf", "temps", ["node"])
    t.insert({"node": 1, "v": 1.0})
    t.flush()
    seg = t._segment_paths()[0]
    with open(t._zone_path(seg), "rb") as f:
        zone = pickle.load(f)
    st = os.stat(seg)
    assert zone["stamp"] == {"mtime": st.st_mtime, "size": st.st_size}


def test_stale_sidecar_distrusted_and_recomputed(store):
    t = store.create_table("perf", "temps", ["node"])
    t.insert({"node": 1, "v": 1.0})
    t.flush()
    seg = t._segment_paths()[0]
    # rewrite the segment behind the sidecar's back (different length,
    # so the stamp cannot match)
    with open(seg, "wb") as f:
        pickle.dump([{"node": 2, "v": 99.0}, {"node": 2, "v": 98.0}], f)
    assert t._load_zone(seg) is None  # stale sidecar must not be believed
    assert t.ensure_zone_maps() == 1
    zone = t._load_zone(seg)
    assert zone is not None
    assert zone["columns"]["v"]["max"] == 99.0
    assert zone["pkeys"] == [(2,)]
