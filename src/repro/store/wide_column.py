"""Wide-column store: keyspace / table / partition key / clustering key.

Mimics the slice of Cassandra's data model that HPC monitoring
ingestion uses (paper §7.1: "a distributed ingestion framework to
continuously collect LDMS data into a distributed NoSQL database
store"):

- a **partition key** (one or more columns) groups rows that are
  stored and scanned together — e.g. ``(node_id,)`` for node counters;
- **clustering columns** order rows inside a partition — e.g. the
  sample timestamp;
- writes append to a per-table **memtable**; ``flush()`` (or exceeding
  the memtable limit) writes an immutable, sorted **segment** file;
- ``scan()`` merge-reads segments plus the memtable, optionally
  restricted to one partition.

Values must be picklable; rows are plain dicts.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StoreError


class Table:
    """One wide-column table (created through :class:`WideColumnStore`)."""

    def __init__(
        self,
        directory: str,
        name: str,
        partition_key: Sequence[str],
        clustering: Sequence[str] = (),
        memtable_limit: int = 10_000,
    ) -> None:
        if not partition_key:
            raise StoreError(f"table {name!r} needs a partition key")
        self.directory = directory
        self.name = name
        self.partition_key = tuple(partition_key)
        self.clustering = tuple(clustering)
        self.memtable_limit = memtable_limit
        self._memtable: Dict[Tuple, List[dict]] = {}
        self._memtable_rows = 0
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _pkey(self, row: Dict[str, Any]) -> Tuple:
        try:
            return tuple(row[c] for c in self.partition_key)
        except KeyError as exc:
            raise StoreError(
                f"row missing partition key column {exc} for table "
                f"{self.name!r}"
            ) from None

    def _ckey(self, row: Dict[str, Any]) -> Tuple:
        return tuple(row.get(c) for c in self.clustering)

    def insert(self, row: Dict[str, Any]) -> None:
        """Append one row; flushes automatically at the memtable limit."""
        self._memtable.setdefault(self._pkey(row), []).append(dict(row))
        self._memtable_rows += 1
        if self._memtable_rows >= self.memtable_limit:
            self.flush()

    def insert_many(self, rows: Sequence[Dict[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def flush(self) -> Optional[str]:
        """Write the memtable as one sorted, immutable segment file."""
        if not self._memtable:
            return None
        seg_rows: List[dict] = []
        for pkey in sorted(self._memtable, key=repr):
            part = sorted(self._memtable[pkey], key=self._ckey)
            seg_rows.extend(part)
        seg_id = len(self._segment_paths())
        path = os.path.join(self.directory, f"segment-{seg_id:06d}.pkl")
        with open(path, "wb") as f:
            pickle.dump(seg_rows, f)
        self._memtable.clear()
        self._memtable_rows = 0
        return path

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _segment_paths(self) -> List[str]:
        return sorted(
            os.path.join(self.directory, f)
            for f in os.listdir(self.directory)
            if f.startswith("segment-") and f.endswith(".pkl")
        )

    def scan(
        self, partition: Optional[Tuple] = None
    ) -> Iterator[Dict[str, Any]]:
        """Iterate rows (all, or one partition), clustering-ordered
        within each source."""
        if partition is not None and not isinstance(partition, tuple):
            partition = (partition,)
        for path in self._segment_paths():
            with open(path, "rb") as f:
                for row in pickle.load(f):
                    if partition is None or self._pkey(row) == partition:
                        yield row
        for pkey, rows in self._memtable.items():
            if partition is None or pkey == partition:
                yield from sorted(rows, key=self._ckey)

    def count(self) -> int:
        return sum(1 for _ in self.scan())

    def partitions(self) -> List[Tuple]:
        """Distinct partition keys across segments and memtable."""
        seen = set()
        for row in self.scan():
            seen.add(self._pkey(row))
        return sorted(seen, key=repr)


class WideColumnStore:
    """A directory of keyspaces, each a directory of tables."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._tables: Dict[Tuple[str, str], Table] = {}

    def _table_dir(self, keyspace: str, table: str) -> str:
        return os.path.join(self.root, keyspace, table)

    def create_table(
        self,
        keyspace: str,
        name: str,
        partition_key: Sequence[str],
        clustering: Sequence[str] = (),
        memtable_limit: int = 10_000,
    ) -> Table:
        key = (keyspace, name)
        if key in self._tables:
            raise StoreError(
                f"table {keyspace}.{name} already exists in this store"
            )
        meta_path = os.path.join(self._table_dir(keyspace, name), "meta.pkl")
        table = Table(
            self._table_dir(keyspace, name),
            name,
            partition_key,
            clustering,
            memtable_limit,
        )
        with open(meta_path, "wb") as f:
            pickle.dump(
                {
                    "partition_key": tuple(partition_key),
                    "clustering": tuple(clustering),
                },
                f,
            )
        self._tables[key] = table
        return table

    def table(self, keyspace: str, name: str) -> Table:
        """Open a table, reading its metadata from disk if needed."""
        key = (keyspace, name)
        if key in self._tables:
            return self._tables[key]
        meta_path = os.path.join(self._table_dir(keyspace, name), "meta.pkl")
        if not os.path.exists(meta_path):
            raise StoreError(f"no table {keyspace}.{name} in this store")
        with open(meta_path, "rb") as f:
            meta = pickle.load(f)
        table = Table(
            self._table_dir(keyspace, name),
            name,
            meta["partition_key"],
            meta["clustering"],
        )
        self._tables[key] = table
        return table

    def keyspaces(self) -> List[str]:
        return sorted(
            d
            for d in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, d))
        )

    def tables(self, keyspace: str) -> List[str]:
        ks_dir = os.path.join(self.root, keyspace)
        if not os.path.isdir(ks_dir):
            return []
        return sorted(
            d
            for d in os.listdir(ks_dir)
            if os.path.isdir(os.path.join(ks_dir, d))
        )

    def flush_all(self) -> None:
        for table in self._tables.values():
            table.flush()
