"""The fluent ingestion builder: ``session.ingest()...register()``."""

import pytest

from repro import ScrubJaySession
from repro.core.semantics import Schema, domain, value
from repro.errors import SourceError
from repro.rdd.rdd import ScanRDD
from repro.sources import CSVSource, RowsSource
from repro.store import WideColumnStore
from repro.units.temporal import Timestamp
from repro.wrappers import CSVUnwrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})


def make_rows(n=12):
    return [
        {"node": i % 3, "time": Timestamp(float(i)), "temp": 20.0 + i}
        for i in range(n)
    ]


def key(row):
    return tuple(sorted((k, repr(v)) for k, v in row.items()))


def test_ingest_rows_register(session):
    rows = make_rows()
    ds = session.ingest().rows(rows, SCHEMA).register("temps")
    assert session.dataset("temps") is ds
    assert isinstance(ds.rdd, ScanRDD)
    assert isinstance(ds.source, RowsSource)
    assert sorted(ds.collect(), key=key) == sorted(rows, key=key)


def test_ingest_csv_lazy_and_partitioned(session, tmp_path, ctx, dictionary):
    path = str(tmp_path / "d.csv")
    from repro.core.dataset import ScrubJayDataset
    rows = make_rows()
    CSVUnwrapper(path, dictionary).save(
        ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    )
    ds = (
        session.ingest().csv(path, SCHEMA).partitions(3).register("temps")
    )
    assert isinstance(ds.source, CSVSource)
    assert ds.rdd.num_partitions() == 3
    assert sorted(ds.collect(), key=key) == sorted(rows, key=key)


def test_ingest_sql(session, tmp_path, ctx, dictionary):
    from repro.core.dataset import ScrubJayDataset
    from repro.wrappers import SQLUnwrapper
    db = str(tmp_path / "perf.db")
    rows = make_rows()
    SQLUnwrapper(db, "temps", dictionary).save(
        ScrubJayDataset.from_rows(ctx, rows, SCHEMA, "t")
    )
    ds = session.ingest().sql(db, SCHEMA, table="temps").register("temps")
    assert sorted(ds.collect(), key=key) == sorted(rows, key=key)


def test_ingest_table(session, tmp_path):
    store = WideColumnStore(str(tmp_path / "store"))
    t = store.create_table("perf", "temps", ["node"], ["time"])
    rows = make_rows()
    t.insert_many(rows)
    t.flush()
    ds = (
        session.ingest()
        .table(store, "perf", "temps", SCHEMA)
        .register("temps")
    )
    assert ds.rdd.num_partitions() == 3  # one per store partition key
    assert sorted(ds.collect(), key=key) == sorted(rows, key=key)


def test_ingest_load_without_register(session):
    ds = session.ingest().rows(make_rows(), SCHEMA).load("floating")
    assert ds.name == "floating"
    assert "floating" not in session.catalog
    assert ds.provenance["op"] == "scan"
    assert ds.provenance["source"] == "RowsSource"


def test_ingest_one_source_per_chain(session):
    chain = session.ingest().rows([], SCHEMA)
    with pytest.raises(SourceError, match="already has a source"):
        chain.rows([], SCHEMA)


def test_ingest_requires_a_source(session):
    with pytest.raises(SourceError, match="no source"):
        session.ingest().load()


def test_ingested_dataset_is_queryable(session):
    session.ingest().rows(make_rows(), SCHEMA).register("temps")
    answer = (
        session.query()
        .across("compute nodes")
        .value("temperature")
        .ask()
    )
    assert len(answer) > 0
    assert {"node", "temp"} <= set(answer.to_rows()[0])
