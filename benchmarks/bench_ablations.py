"""Ablations of the design choices DESIGN.md calls out.

1. **Binned interpolation join vs. brute force** — the paper's §5.3
   motivation: naively computing all pairwise distances is unscalable.
   The 2W/offset-W binning must beat an all-pairs scan as data grows,
   while producing identical matches.
2. **Engine memoization on/off** — Algorithm 1 caches CombineSet /
   CombinePair; disabling the pair memo must not change the plan.
3. **Map-side combine** — the shuffle's combiner keeps exchanged
   volume proportional to distinct keys, not records.
"""

from __future__ import annotations

import pytest

from repro import SJContext, ScrubJayDataset, default_dictionary
from repro.core.combinations import InterpolationJoin
from repro.datagen.synthetic import (
    TIMED_LEFT_SCHEMA,
    TIMED_RIGHT_SCHEMA,
    timed_tables,
)
from repro.util import Timer

_DICT = default_dictionary()
WINDOW = 2.0


def _brute_force_interp_join(left_rows, right_rows, window):
    """All-pairs oracle: per left row, right matches within the window
    (matching node), attached by nearest sample."""
    from collections import defaultdict

    by_node = defaultdict(list)
    for r in right_rows:
        by_node[r["node"]].append(r)
    out = []
    for lr in left_rows:
        lt = lr["time"].epoch
        matches = [
            rr for rr in by_node.get(lr["node"], [])
            if abs(rr["time"].epoch - lt) <= window
        ]
        if not matches:
            continue
        nearest = min(matches, key=lambda rr: abs(rr["time"].epoch - lt))
        row = dict(lr)
        row["metric_b"] = nearest["metric_b"]
        out.append(row)
    return out


@pytest.fixture(scope="module")
def recorder(recorder_factory):
    return recorder_factory("ablation_binned_vs_bruteforce",
                            "rows", "seconds")


def test_binned_join_matches_bruteforce_row_set(benchmark):
    left, right = timed_tables(4_000, num_keys=16)

    def run():
        with SJContext() as ctx:
            lds = ScrubJayDataset.from_rows(ctx, left, TIMED_LEFT_SCHEMA, "l")
            rds = ScrubJayDataset.from_rows(ctx, right, TIMED_RIGHT_SCHEMA, "r")
            return InterpolationJoin(WINDOW).apply(lds, rds, _DICT).collect()

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    want = _brute_force_interp_join(left, right, WINDOW)
    # same matched left rows (values may differ: binned interpolates
    # continuous values, the oracle takes nearest)
    got_keys = sorted((r["node"], r["time"].epoch) for r in got)
    want_keys = sorted((r["node"], r["time"].epoch) for r in want)
    assert got_keys == want_keys


def test_binned_join_beats_bruteforce_at_scale(benchmark, recorder):
    """Brute force is quadratic per key; the binned algorithm is
    ~linear in rows for a fixed window and density."""
    results = {}

    def run():
        # few keys + long streams: the regime where per-key all-pairs
        # explodes quadratically
        for n in (4_000, 16_000):
            left, right = timed_tables(n, num_keys=4)
            with SJContext() as ctx:
                lds = ScrubJayDataset.from_rows(
                    ctx, left, TIMED_LEFT_SCHEMA, "l"
                )
                rds = ScrubJayDataset.from_rows(
                    ctx, right, TIMED_RIGHT_SCHEMA, "r"
                )
                with Timer() as tb:
                    InterpolationJoin(WINDOW).apply(
                        lds, rds, _DICT
                    ).count()
            with Timer() as tf:
                _brute_force_interp_join(left, right, WINDOW)
            results[n] = (tb.elapsed, tf.elapsed)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, (binned_s, brute_s) in results.items():
        recorder.add(n, binned_s, "binned")
        recorder.add(n, brute_s, "brute force")
    # growth factor from 4k → 16k rows: binned should grow far slower
    binned_growth = results[16_000][0] / results[4_000][0]
    brute_growth = results[16_000][1] / results[4_000][1]
    assert brute_growth > 2.0 * binned_growth, (
        f"binned×{binned_growth:.1f} vs brute×{brute_growth:.1f}"
    )


def test_engine_memoization_plan_invariant(benchmark):
    """Clearing the pair memo between queries must not change plans."""
    from repro import DerivationEngine, Query
    from repro.datagen.dat import (
        JOB_LOG_SCHEMA, NODE_LAYOUT_SCHEMA, RACK_TEMPERATURE_SCHEMA,
        ensure_semantics,
    )

    d = default_dictionary()
    ensure_semantics(d)
    catalog = {
        "job_queue_log": JOB_LOG_SCHEMA,
        "node_layout": NODE_LAYOUT_SCHEMA,
        "rack_temperatures": RACK_TEMPERATURE_SCHEMA,
    }
    q = Query.of(["jobs", "racks"], ["applications", "heat"])

    def run():
        engine = DerivationEngine(d)
        with_memo = engine.solve(catalog, q).to_json()
        fresh = DerivationEngine(d)
        fresh._pair_memo.clear()
        without_memo = fresh.solve(catalog, q).to_json()
        return with_memo, without_memo

    with_memo, without_memo = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_memo == without_memo


def test_map_side_combine_bounds_shuffle_volume(benchmark):
    """reduceByKey's partial combiners keep the exchanged pair count at
    (#partitions × #keys), not #records."""
    with SJContext() as ctx:
        rdd = ctx.parallelize(
            [(i % 10, 1) for i in range(100_000)], 8
        ).reduceByKey(lambda a, b: a + b)

        # count pairs crossing the exchange by instrumenting the
        # scheduler's shuffle directly
        from repro.rdd.plan import Scheduler

        scheduler = ctx.scheduler
        parent_parts = scheduler.materialize(rdd.parent)
        n = rdd.num_partitions()
        from repro.rdd.shuffle import hash_bucket

        def count_exchanged():
            total = 0
            for p in parent_parts:
                buckets = [dict() for _ in range(n)]
                for k, v in p.data:
                    d = buckets[hash_bucket(k, n)]
                    d[k] = d.get(k, 0) + v
                total += sum(len(b) for b in buckets)
            return total

        exchanged = benchmark.pedantic(count_exchanged, rounds=1,
                                       iterations=1)
        assert exchanged <= 8 * 10  # partitions × keys
        assert dict(rdd.collect())[0] == 10_000
