"""Derivations backing the semantic metrics layer.

Two registered, serializable plan steps:

- :class:`BucketTime` — snap a datetime domain field to its grain
  bucket (row-local, delta-safe);
- :class:`RollupAggregate` — the *rollup* derivation kind: group by
  domain fields (+ time bucket) and reduce a measure set to one wide
  row per group, via the partial-aggregation machinery of
  :mod:`repro.analysis.aggregate`.

A materialized rollup's plan is ``base plan → bucket_time →
rollup_aggregate`` — an ordinary :class:`~repro.core.pipeline.
DerivationPlan`, so it serializes, renders in EXPLAIN, and fingerprints
like every other derivation sequence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import DerivationError
from repro.analysis.aggregate import (
    finalize_group_partials,
    group_aggregate_partials,
)
from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import Transformation, register_derivation
from repro.core.dictionary import SemanticDictionary
from repro.core.query import Measure
from repro.core.semantics import Schema, SemanticType, VALUE
from repro.units.temporal import Timestamp


@register_derivation
class BucketTime(Transformation):
    """Snap a datetime field to the start of its ``seconds``-wide
    bucket (``epoch // seconds * seconds``). Schema is unchanged; the
    field's values become bucket-start :class:`Timestamp`\\ s."""

    op_name = "bucket_time"

    def __init__(self, field: str, seconds: float) -> None:
        if seconds <= 0:
            raise DerivationError("bucket_time needs a positive width")
        self.field = field
        self.seconds = float(seconds)

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        if self.field not in schema:
            return False
        sem = schema[self.field]
        return (
            dictionary.has_unit(sem.units)
            and dictionary.unit(sem.units).kind == "datetime"
        )

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        return schema

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        field, seconds = self.field, self.seconds

        def bucket(row: Dict[str, Any]) -> Dict[str, Any]:
            if field not in row:
                return row
            epoch = getattr(row[field], "epoch", row[field])
            out = dict(row)
            out[field] = Timestamp((epoch // seconds) * seconds)
            return out

        return dataset.with_rdd(
            dataset.rdd.map(bucket),
            dataset.schema,
            name=f"{dataset.name}|{self.op_name}",
            provenance={"op": self.op_name, "field": field,
                        "seconds": seconds,
                        "input": dataset.provenance},
        )


@register_derivation
class RollupAggregate(Transformation):
    """Reduce a dataset to one wide row per group: the rollup
    derivation kind.

    ``group_fields`` (domain fields, typically per-dims plus an
    already-bucketed time field) key the output; each measure in
    ``measures`` (``{"dimension", "how", "window"}`` dicts — the JSON
    form of :class:`~repro.core.query.Measure`) lands as a value
    column named ``<dimension>_<how>``, reduced from the input's
    single value field on that dimension.

    The unfinalized partial states are attached to the result dataset
    as ``_rollup_partials`` (``{measure_key: {group_tuple:
    partial}}``), which is what makes materialized rollups
    incrementally maintainable: a feed delta's partials merge into the
    standing state without re-reading history.
    """

    op_name = "rollup_aggregate"

    def __init__(
        self, group_fields: List[str], measures: List[dict]
    ) -> None:
        if not group_fields:
            raise DerivationError(
                "rollup_aggregate needs at least one group field"
            )
        if not measures:
            raise DerivationError(
                "rollup_aggregate needs at least one measure"
            )
        self.group_fields = list(group_fields)
        self.measures = [
            m.to_json_dict() if isinstance(m, Measure) else dict(m)
            for m in measures
        ]

    def _measure_objs(self) -> List[Measure]:
        return [Measure.from_json_dict(m) for m in self.measures]

    def _value_field(self, schema: Schema, dimension: str) -> str:
        fields = schema.fields_for(dimension, VALUE)
        if len(fields) != 1:
            raise DerivationError(
                f"rollup measure on dimension {dimension!r} needs "
                f"exactly one value field in the input schema, found "
                f"{sorted(fields)}"
            )
        return fields[0]

    def applies(self, schema: Schema, dictionary: SemanticDictionary) -> bool:
        if any(f not in schema for f in self.group_fields):
            return False
        try:
            for m in self._measure_objs():
                self._value_field(schema, m.dimension)
        except DerivationError:
            return False
        return True

    def derive_schema(
        self, schema: Schema, dictionary: SemanticDictionary
    ) -> Schema:
        fields: Dict[str, SemanticType] = {
            f: schema[f] for f in self.group_fields
        }
        for m in self._measure_objs():
            src = schema[self._value_field(schema, m.dimension)]
            units = src.units
            if m.how == "count" and dictionary.has_unit("count"):
                units = "count"
            fields[m.key()] = SemanticType(VALUE, src.dimension, units)
        return Schema(fields)

    def apply(
        self, dataset: ScrubJayDataset, dictionary: SemanticDictionary
    ) -> ScrubJayDataset:
        self._check(dataset, dictionary)
        schema = dataset.schema
        partials: Dict[str, Dict[tuple, Any]] = {}
        finalized: Dict[str, Dict[tuple, Any]] = {}
        for m in self._measure_objs():
            vfield = self._value_field(schema, m.dimension)
            part = group_aggregate_partials(
                dataset, self.group_fields, vfield, m.how
            )
            partials[m.key()] = part
            finalized[m.key()] = finalize_group_partials(
                dict(part), m.how
            )
        groups = sorted(
            {g for per in finalized.values() for g in per},
            key=repr,
        )
        rows: List[Dict[str, Any]] = []
        for g in groups:
            row = dict(zip(self.group_fields, g))
            for mkey, values in finalized.items():
                if g in values and values[g] is not None:
                    row[mkey] = values[g]
            rows.append(row)
        out = ScrubJayDataset.from_rows(
            dataset.ctx,
            rows,
            self.derive_schema(schema, dictionary),
            f"{dataset.name}|{self.op_name}",
        )
        out.provenance = {
            "op": self.op_name,
            "group_fields": list(self.group_fields),
            "measures": [dict(m) for m in self.measures],
            "input": dataset.provenance,
        }
        out._rollup_partials = partials
        return out
