"""Property tests: the textual codec round-trips every unit kind."""

import pytest
from hypothesis import given, strategies as st

from repro.core.dictionary import default_dictionary
from repro.core.semantics import domain, value
from repro.units.temporal import TimeSpan, Timestamp
from repro.wrappers.codec import decode_value, encode_value

_DICT = default_dictionary()

finite = st.floats(-1e12, 1e12, allow_nan=False)


def _round_trip(v, sem):
    return decode_value(encode_value(v, sem, _DICT), sem, _DICT)


@given(finite)
def test_quantity_round_trip(v):
    sem = value("temperature", "degrees Celsius")
    assert _round_trip(v, sem) == pytest.approx(v)


@given(st.integers(0, 2**62))
def test_count_round_trip_small(v):
    # float()-parse in decode limits exact round trips to 2^53; counts
    # beyond that lose precision like any CSV float column would
    sem = value("event count", "count")
    got = _round_trip(v, sem)
    if v < 2**53:
        assert got == v
    else:
        assert got == pytest.approx(v, rel=1e-9)


@given(st.integers(-(2**53), 2**53))
def test_identifier_int_round_trip(v):
    sem = domain("compute nodes", "identifier")
    assert _round_trip(v, sem) == v


@given(st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"),
                           blacklist_characters=";,\n\r"),
    min_size=1, max_size=20,
))
def test_identifier_text_round_trip(s):
    sem = domain("compute nodes", "identifier")
    stripped = s.strip()
    if not stripped:
        return
    try:
        int(stripped)
        return  # numeric-looking strings legitimately decode to ints
    except ValueError:
        pass
    try:
        float(stripped)
        return  # "1e5"-like strings are out of scope for text ids
    except ValueError:
        pass
    assert _round_trip(stripped, sem) == stripped


@given(finite)
def test_timestamp_round_trip(epoch):
    sem = domain("time", "datetime")
    assert _round_trip(Timestamp(epoch), sem) == Timestamp(epoch)


@given(finite, st.floats(0, 1e9, allow_nan=False))
def test_timespan_round_trip(start, length):
    sem = domain("time", "timespan")
    span = TimeSpan(start, start + length)
    assert _round_trip(span, sem) == span


@given(st.lists(st.integers(0, 10**9), max_size=20))
def test_identifier_list_round_trip(ids):
    sem = domain("compute nodes", "list<identifier>")
    got = _round_trip(ids, sem)
    if ids:
        assert got == ids
    else:
        assert got is None  # empty cell decodes as missing
