"""Plan rewrite: push filters and projections into the leaf scans.

Walks a :class:`~repro.core.pipeline.DerivationPlan` top-down, absorbing
``filter_equals``/``filter_range`` nodes into descending predicate
terms and ``select_fields`` nodes into a required-column set, and
carries both through every transformation they commute with:

- ``rename_field`` retargets a term on the new name back to the old;
- ``convert_units`` blocks terms on the converted field (the stored
  value differs from the filtered one) and passes everything else;
- ``explode_*`` block terms on the exploded output field;
- ``derive_ratio`` blocks terms on the result field only;
- ``derive_rate`` (and any unregistered transformation) is opaque —
  every term is blocked and the required-column set collapses to "all".

At a combination the terms split per side. A natural join pushes a
term on a left field to the left input — and, when the field is a join
field, to the matching right field too (rows it removes could never
have produced a surviving output row). Terms on ``_r``-renamed right
fields are mapped back through the merge-rename and pushed right. An
interpolation join additionally widens a range on the left time field
by the join window before pushing it to the right time field (a right
sample further than the window from every selected left coordinate can
never be attached), but never pushes terms on right *value* fields —
their output values are interpolated, not raw.

A term blocked at a node is re-materialized as a filter transform just
above it, so the rewritten plan is always semantically identical to
the input plan. Whatever reaches a leaf turns its ``LoadNode`` into a
:class:`~repro.core.pipeline.ScanNode` carrying the collapsed
:class:`~repro.sources.predicate.ColumnPredicate` and column list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.combinations import (
    InterpolationJoin,
    NaturalJoin,
    _match_plan,
    _merge_rename,
)
from repro.core.dictionary import SemanticDictionary
from repro.core.pipeline import (
    CombineNode,
    DerivationPlan,
    LoadNode,
    PlanNode,
    ScanNode,
    TransformNode,
)
from repro.core.semantics import Schema
from repro.core.transformations import (
    ConvertUnits,
    DeriveRatio,
    ExplodeContinuous,
    ExplodeDiscrete,
    FilterEquals,
    FilterRange,
    RenameField,
    SelectFields,
)
from repro.sources.predicate import ColumnPredicate, EqTerm, RangeTerm

Term = object  # EqTerm | RangeTerm


def _retarget(term, column: str):
    if isinstance(term, EqTerm):
        return EqTerm(column, term.value)
    return RangeTerm(column, term.low, term.high)


def _term_to_filter(term):
    if isinstance(term, EqTerm):
        return FilterEquals(term.column, term.value)
    return FilterRange(term.column, term.low, term.high)


def _wrap_residual(node: PlanNode, terms: List[Term]) -> PlanNode:
    """Re-materialize blocked terms as filter nodes above ``node``,
    innermost-first so the original stacking order is preserved."""
    for term in reversed(terms):
        node = TransformNode(_term_to_filter(term), node)
    return node


class _Pushdown:
    def __init__(
        self,
        catalog: Dict[str, Schema],
        dictionary: SemanticDictionary,
        projection: bool = True,
    ) -> None:
        self.catalog = catalog
        self.dictionary = dictionary
        self.projection = projection
        self._schemas: Dict[int, Optional[Schema]] = {}

    # ------------------------------------------------------------------
    # bottom-up schema annotation (None = opaque: don't reason about it)
    # ------------------------------------------------------------------

    def schema_of(self, node: PlanNode) -> Optional[Schema]:
        key = id(node)
        if key in self._schemas:
            return self._schemas[key]
        schema: Optional[Schema] = None
        try:
            if isinstance(node, (LoadNode, ScanNode)):
                schema = self.catalog.get(node.dataset_name)
            elif isinstance(node, TransformNode):
                inner = self.schema_of(node.input)
                if inner is not None:
                    schema = node.derivation.derive_schema(
                        inner, self.dictionary
                    )
            elif isinstance(node, CombineNode):
                left = self.schema_of(node.left)
                right = self.schema_of(node.right)
                if left is not None and right is not None:
                    schema = node.derivation.derive_schema(
                        left, right, self.dictionary
                    )
        except Exception:
            schema = None
        self._schemas[key] = schema
        return schema

    # ------------------------------------------------------------------
    # top-down rewrite
    # ------------------------------------------------------------------

    def rewrite(
        self,
        node: PlanNode,
        preds: List[Term],
        required: Optional[Set[str]],
    ) -> PlanNode:
        if isinstance(node, (LoadNode, ScanNode)):
            return self._rewrite_leaf(node, preds, required)
        if isinstance(node, TransformNode):
            return self._rewrite_transform(node, preds, required)
        if isinstance(node, CombineNode):
            return self._rewrite_combine(node, preds, required)
        return _wrap_residual(node, preds)

    # -- leaves ---------------------------------------------------------

    def _rewrite_leaf(
        self,
        node: PlanNode,
        preds: List[Term],
        required: Optional[Set[str]],
    ) -> PlanNode:
        schema = self.schema_of(node)
        if schema is None:
            return _wrap_residual(node, preds)
        columns: Optional[List[str]] = None
        if self.projection and required is not None:
            columns = sorted(c for c in required if c in schema)
        if isinstance(node, ScanNode):
            predicate = node.predicate or ColumnPredicate(())
            if preds:
                predicate = predicate.also(ColumnPredicate(tuple(preds)))
            if columns is not None and node.columns is not None:
                columns = [c for c in columns if c in node.columns]
            elif columns is None:
                columns = node.columns
            return ScanNode(node.dataset_name, predicate, columns)
        if not preds and columns is None:
            return node
        return ScanNode(
            node.dataset_name, ColumnPredicate(tuple(preds)), columns
        )

    # -- transformations ------------------------------------------------

    def _rewrite_transform(
        self,
        node: TransformNode,
        preds: List[Term],
        required: Optional[Set[str]],
    ) -> PlanNode:
        d = node.derivation
        in_schema = self.schema_of(node.input)

        # Absorb applicable filters into the descending predicate; the
        # applicability check (field exists, dimension ordered) keeps
        # the rewritten plan's validation behaviour identical.
        if in_schema is not None and isinstance(d, FilterEquals) \
                and d.applies(in_schema, self.dictionary):
            return self.rewrite(
                node.input, preds + [EqTerm(d.field, d.value)], required
            )
        if in_schema is not None and isinstance(d, FilterRange) \
                and d.applies(in_schema, self.dictionary):
            term = RangeTerm(d.field, d.low, d.high)
            return self.rewrite(node.input, preds + [term], required)

        passed, blocked, new_required = self._through_transform(
            d, in_schema, preds, required
        )
        child = self.rewrite(node.input, passed, new_required)
        return _wrap_residual(TransformNode(d, child), blocked)

    def _through_transform(
        self,
        d,
        in_schema: Optional[Schema],
        preds: List[Term],
        required: Optional[Set[str]],
    ) -> Tuple[List[Term], List[Term], Optional[Set[str]]]:
        """Split ``preds`` into (pushed-through, blocked) and map the
        required-column set onto the transformation's input."""
        if in_schema is None:
            return [], list(preds), None

        if isinstance(d, (FilterEquals, FilterRange)):
            # A filter that was not absorbed (inapplicable as written):
            # values are unchanged, so everything passes, but the
            # filtered field must survive any projection.
            req = None if required is None else set(required) | {d.field}
            return list(preds), [], req

        if isinstance(d, RenameField):
            passed = [
                _retarget(t, d.field) if t.column == d.to else t
                for t in preds
            ]
            req = None
            if required is not None:
                req = {d.field if c == d.to else c for c in required}
                req.add(d.field)
            return passed, [], req

        if isinstance(d, ConvertUnits):
            passed = [t for t in preds if t.column != d.field]
            blocked = [t for t in preds if t.column == d.field]
            req = None
            if required is not None:
                req = set(required) | {d.field}
                req.update(t.column for t in blocked)
            return passed, blocked, req

        if isinstance(d, (ExplodeDiscrete, ExplodeContinuous)):
            out_field = f"{d.field}_exploded"
            passed = [t for t in preds if t.column != out_field]
            blocked = [t for t in preds if t.column == out_field]
            req = None
            if required is not None:
                req = (set(required) - {out_field}) | {d.field}
                req.update(t.column for t in blocked)
            return passed, blocked, req

        if isinstance(d, SelectFields):
            fields = set(d.fields)
            req = fields if required is None else (set(required) & fields)
            if not req:
                req = fields
            return list(preds), [], req

        if isinstance(d, DeriveRatio):
            result = d.result_field
            passed = [t for t in preds if t.column != result]
            blocked = [t for t in preds if t.column == result]
            req = None
            if required is not None:
                req = (set(required) - {result})
                req.update((d.numerator, d.denominator))
                req.update(t.column for t in blocked)
            return passed, blocked, req

        # derive_rate and anything unknown: opaque.
        return [], list(preds), None

    # -- combinations ---------------------------------------------------

    def _rewrite_combine(
        self,
        node: CombineNode,
        preds: List[Term],
        required: Optional[Set[str]],
    ) -> PlanNode:
        d = node.derivation
        lsch = self.schema_of(node.left)
        rsch = self.schema_of(node.right)
        lpreds: List[Term] = []
        rpreds: List[Term] = []
        blocked: List[Term] = []

        if lsch is None or rsch is None:
            blocked = list(preds)
        elif isinstance(d, InterpolationJoin):
            split = d._split_plan(lsch, rsch, self.dictionary)
            if split is None:
                blocked = list(preds)
            else:
                (_dim, ldt, rdt), exact = split
                drop = [rdt] + [rf for _, _, rf in exact]
                rename = _merge_rename(lsch, rsch, drop)
                inv = {v: k for k, v in rename.items()}
                exact_map = {lf: rf for _, lf, rf in exact}
                window = getattr(d, "window", InterpolationJoin.DEFAULT_WINDOW)
                for t in preds:
                    c = t.column
                    if c in lsch:
                        lpreds.append(t)
                        if c in exact_map:
                            rpreds.append(_retarget(t, exact_map[c]))
                        elif c == ldt:
                            widened = _widen_time_term(t, rdt, window)
                            if widened is not None:
                                rpreds.append(widened)
                    elif c in inv:
                        rf = inv[c]
                        if rsch[rf].is_value:
                            # attached values are interpolated at the
                            # left coordinate — the raw right value is
                            # not the output value, so never push
                            blocked.append(t)
                        else:
                            rpreds.append(_retarget(t, rf))
                    else:
                        blocked.append(t)
        elif isinstance(d, NaturalJoin):
            plan = _match_plan(lsch, rsch, self.dictionary)
            if plan is None:
                blocked = list(preds)
            else:
                rfields = [rf for _, rf, _ in plan.values()]
                rename = _merge_rename(lsch, rsch, drop=rfields)
                inv = {v: k for k, v in rename.items()}
                join_map = {lf: rf for lf, rf, _ in plan.values()}
                for t in preds:
                    c = t.column
                    if c in lsch:
                        lpreds.append(t)
                        if c in join_map:
                            rpreds.append(_retarget(t, join_map[c]))
                    elif c in inv:
                        rpreds.append(_retarget(t, inv[c]))
                    else:
                        blocked.append(t)
        else:
            blocked = list(preds)

        left = self.rewrite(node.left, lpreds, None)
        right = self.rewrite(node.right, rpreds, None)
        return _wrap_residual(CombineNode(d, left, right), blocked)


def _widen_time_term(term, rdt: str, window: float):
    """A range on the left time coordinate, widened by the join window
    and retargeted at the right time coordinate. Right samples outside
    it are further than ``window`` from every selected left coordinate
    (the join matches ``|Δt| < window``), so dropping them early can
    never change a surviving output row."""
    if isinstance(term, RangeTerm):
        low = term.low - window if term.low is not None else None
        high = term.high + window if term.high is not None else None
    else:
        at = getattr(term.value, "epoch", term.value)
        if not isinstance(at, (int, float)) or isinstance(at, bool):
            return None
        low, high = at - window, at + window
    if low is None and high is None:
        return None
    return RangeTerm(rdt, low, high)


def push_down_plan(
    plan: DerivationPlan,
    catalog_schemas: Dict[str, Schema],
    dictionary: SemanticDictionary,
    projection: bool = True,
) -> DerivationPlan:
    """Rewrite ``plan`` so leading filters/projections execute inside
    the leaf scans. Always returns an equivalent plan; when nothing can
    be pushed the rewritten plan is structurally identical."""
    rewriter = _Pushdown(catalog_schemas, dictionary, projection)
    return DerivationPlan(rewriter.rewrite(plan.root, [], None))
