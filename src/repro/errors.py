"""Exception hierarchy for the ScrubJay reproduction.

Every error raised deliberately by this package derives from
:class:`ScrubJayError` so callers can catch the whole family with one
``except`` clause while still distinguishing specific failure modes.
"""

from __future__ import annotations


class ScrubJayError(Exception):
    """Base class for all errors raised by this package."""


class SemanticError(ScrubJayError):
    """A dataset or annotation violates the semantic rules.

    Raised e.g. when a schema references a dimension or unit that is not
    present in the active semantic dictionary, or when a field's relation
    type is neither ``domain`` nor ``value``.
    """


class DictionaryError(ScrubJayError):
    """The semantic dictionary would become inconsistent.

    Raised when registering an entry that would introduce a synonym
    (two keywords for the same meaning) or a homonym (one keyword with
    two meanings), which the paper's dictionary explicitly forbids.
    """


class UnitError(ScrubJayError):
    """Invalid unit operation.

    Raised for conversions across dimensions, unknown units, or
    arithmetic between incompatible quantities.
    """


class DerivationError(ScrubJayError):
    """A derivation was applied to a dataset that does not satisfy its
    required semantics, or its execution produced inconsistent output."""


class QueryError(ScrubJayError):
    """A query is malformed — e.g. references unknown dimensions."""


class QueryValidationError(QueryError):
    """A query was rejected *before* planning.

    Raised by :meth:`~repro.core.query.QueryBuilder.build` (and the
    measure/grain terminals) when the accumulated terms cannot form a
    well-formed query — an empty builder, a filter on a dimension the
    query never mentions, a windowed measure without a grain. Carries
    the offending ``clause`` (e.g. ``"across"``, ``"where"``,
    ``"measure"``) so callers and tests can pinpoint what is missing
    without parsing the message.
    """

    def __init__(self, message: str, clause: "str | None" = None) -> None:
        super().__init__(message)
        self.clause = clause


class NoSolutionError(QueryError):
    """The derivation engine exhausted its search without finding a
    derivation sequence that satisfies the query.

    Mirrors the ``return no solution`` branch of Algorithm 1 in the
    paper: if a queried domain dimension exists in no dataset, or the
    datasets holding the queried dimensions cannot be combined, no
    sequence of derivations can ever satisfy the query.
    """


class PipelineError(ScrubJayError):
    """A serialized derivation sequence is malformed or refers to
    operations/datasets that are not registered in this session."""


class WrapperError(ScrubJayError):
    """A data wrapper failed to parse its source into rows."""


class SourceError(WrapperError):
    """A :class:`~repro.sources.base.DataSource` failed to read or
    describe its backing data. Subclasses :class:`WrapperError` so
    code written against the deprecated wrapper classes keeps catching
    ingestion failures unchanged."""


class FeedError(SourceError):
    """A streaming feed operation failed — the source is not
    appendable, a push was rejected, or tailing state is invalid."""


class FeedRewoundError(FeedError):
    """A tailed source moved *backwards* past a committed watermark.

    Raised when ``append_scan(since_offset)`` is asked to resume from
    an offset beyond the source's current end — the file was truncated
    or rewritten, or the store lost sealed segments. The feed cannot
    silently re-read: rows before the watermark were already delivered
    exactly once, so the caller must decide whether to reset the feed
    (replaying everything) or treat the source as corrupt.
    """

    def __init__(
        self,
        message: str,
        since_offset: "int | None" = None,
        current_offset: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.since_offset = since_offset
        self.current_offset = current_offset


class ConfigError(ScrubJayError):
    """A configuration knob was rejected at construction time.

    Raised by the typed configuration layer (:mod:`repro.config`) for
    unknown knob names, values of the wrong type, out-of-bounds
    values, or attempts to tune a pinned/untunable knob. Carries the
    offending ``knob`` name (when one was identified) so callers and
    tests can pinpoint the rejected setting without parsing the
    message.
    """

    def __init__(self, message: str, knob: "str | None" = None) -> None:
        super().__init__(message)
        self.knob = knob


class StoreError(ScrubJayError):
    """The wide-column store was used inconsistently (unknown table,
    missing partition key, schema mismatch on insert)."""


class ExecutorError(ScrubJayError):
    """A parallel executor failed to run tasks."""


class TaskError(ExecutorError):
    """A single task (one partition of one stage) failed.

    Carries the task's position so callers and logs can identify the
    failing unit of work: in this engine a stage runs exactly one task
    per partition, so ``task_index`` and ``partition_index`` usually
    coincide, but both are kept because a re-bucketed stage (shuffle
    reduce) numbers its tasks by output bucket.
    """

    def __init__(
        self,
        message: str,
        task_index: "int | None" = None,
        partition_index: "int | None" = None,
        attempts: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.partition_index = partition_index
        self.attempts = attempts

    def __reduce__(self):  # preserve attributes across process pickling
        return (
            type(self),
            (
                self.args[0] if self.args else "",
                self.task_index,
                self.partition_index,
                self.attempts,
            ),
        )


class TransientTaskError(TaskError):
    """A task failed for an environmental, retryable reason — a killed
    worker, a dropped connection, an injected fault. The retry machinery
    re-runs the task (same partition, same closure) up to the policy's
    attempt budget; determinism of the task function makes the retry
    exact replay."""


class FatalTaskError(TaskError):
    """A task failed for good: either its error was deterministic (an
    application exception would recur on every attempt) or its transient
    retry budget is exhausted. Not retried."""


class WorkerPoolError(ExecutorError):
    """An entire worker pool died mid-stage (as opposed to one task
    failing). Recoverable one level up: the scheduler replays the whole
    stage from its lineage inputs, and the process executor degrades to
    serial execution after repeated consecutive deaths."""


class ServiceError(ScrubJayError):
    """Base class for failures of the ``repro.serve`` query service."""


class ServiceOverloadError(ServiceError):
    """The service shed a query at admission.

    Raised when the bounded admission queue is full: accepting more
    work would only grow latency without bound, so excess load is
    rejected immediately (fail-fast load shedding) instead of queueing
    toward a deadlock or an OOM. Clients should back off and retry.
    """

    def __init__(
        self,
        message: str,
        queue_depth: "int | None" = None,
        max_queue: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue = max_queue


class QueryTimeoutError(ServiceError):
    """A served query exceeded its deadline (queue wait + execution).

    Execution is not preempted mid-task — cancellation is cooperative
    — but a query whose deadline passes while still queued is never
    dispatched, and one that finishes late delivers this error instead
    of its (stale) result.
    """


class QueryCancelledError(ServiceError):
    """The query's ticket was cancelled before a result was delivered."""


class ServiceClosedError(ServiceError):
    """The query service has been closed and accepts no new queries."""


class ProtocolVersionError(ServiceError):
    """Client and server speak incompatible wire-protocol versions.

    Raised on the ``hello`` handshake instead of letting a
    mixed-version router/shard fleet fail later with an opaque decode
    error mid-query. Carries both version numbers so the operator can
    see which side is behind.
    """

    def __init__(
        self, message: str, local: int = 0, remote: int = 0
    ) -> None:
        super().__init__(message)
        self.local = local
        self.remote = remote


class UnsupportedOpError(ServiceError):
    """The server does not implement the requested wire op.

    Returned as a typed response (op name + the server's supported op
    list) instead of killing the connection, so newer clients can
    degrade gracefully against older servers — e.g. fall back from
    ``subscribe`` to polling ``query`` when the fleet predates the
    streaming ops.
    """

    def __init__(
        self,
        message: str,
        op: "str | None" = None,
        supported: "tuple | None" = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.supported = tuple(supported or ())


class SubscriptionError(ServiceError):
    """A standing-query subscription was used inconsistently —
    unknown subscription id, subscribing over a dataset with no feed,
    or advancing a feed the session does not know."""


class StaleRefreshError(SubscriptionError):
    """A subscription refresh kept racing feed advances.

    The refresh machinery pins each refresh to explicit watermarks and
    retries (like :class:`ShardStaleReadError`) when a gathered shard
    answer carries different watermarks than the router pushed; this
    error surfaces only when the retries run out.
    """


class ShardError(ServiceError):
    """A shard of a sharded serve fleet failed to answer.

    Raised by the :class:`~repro.serve.sharded.ShardRouter` after a
    shard request could not be completed — connection refused/reset,
    the shard process died, or the shard returned a server-side
    internal error — and no replica could answer either.
    """

    def __init__(self, message: str, shard: "int | None" = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardStaleReadError(ShardError):
    """A scatter straddled a catalog change and read inconsistent
    shard states.

    Replication applies a mutation shard by shard; a query fanned out
    at just the wrong moment can see some shards before the mutation
    and some after. The router detects this from the
    ``catalog_version``/``state`` stamps every shard response carries
    and retries the whole query against the settled fleet; this error
    surfaces only when retries run out (sustained churn).
    """


class ShardStateError(ServiceError):
    """A shard's replicated catalog/dictionary state diverged from the
    router's.

    Every replicated mutation echoes the shard's resulting
    ``state_fingerprint``/``catalog_version``; a mismatch means the
    shard would plan or execute against different schemas than the
    router keyed its caches on, so the fleet fails loudly instead of
    serving silently inconsistent answers. The usual cause is
    router-side state that does not replicate (session-local expert
    derivations, ad-hoc dictionary edits made directly on the session
    instead of through the router).
    """


class ShardRoutingError(ServiceError):
    """A query's plan cannot be correctly scatter-gathered.

    Raised when a plan combines two datasets sharded on *different*
    key columns: their matching rows live on different shards, so
    per-shard execution plus concatenation would silently drop join
    matches. Co-shard the datasets (same ``shard_on`` columns) or
    replicate one of them.
    """


class ShuffleKeyError(ScrubJayError):
    """A shuffle key's type has no process-stable portable hash.

    Raised by multi-process executors instead of silently bucketing by
    Python's per-interpreter salted ``hash()``, under which equal keys
    land in different buckets on different workers and joins/groupByKey
    silently drop matches. Fix: use primitive/tuple/dataclass keys, or
    give the key type a ``__portable_hash__`` method."""


#: the one import surface for the whole stack's typed errors; the
#: subsystem packages (``repro.rdd``, ``repro.serve``) re-export their
#: families as deprecated aliases of these same classes.
__all__ = [
    "ScrubJayError",
    "SemanticError",
    "DictionaryError",
    "UnitError",
    "DerivationError",
    "QueryError",
    "QueryValidationError",
    "NoSolutionError",
    "ConfigError",
    "PipelineError",
    "WrapperError",
    "SourceError",
    "FeedError",
    "FeedRewoundError",
    "StoreError",
    "ExecutorError",
    "TaskError",
    "TransientTaskError",
    "FatalTaskError",
    "WorkerPoolError",
    "ServiceError",
    "ServiceOverloadError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "ServiceClosedError",
    "ProtocolVersionError",
    "UnsupportedOpError",
    "SubscriptionError",
    "StaleRefreshError",
    "ShardError",
    "ShardStaleReadError",
    "ShardStateError",
    "ShardRoutingError",
    "ShuffleKeyError",
]
