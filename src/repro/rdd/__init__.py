"""A from-scratch, Spark-like distributed dataset engine.

The paper implements ScrubJay on Apache Spark RDDs distributed across a
10-node data cluster. This package is the substitute substrate: a lazy,
partitioned, lineage-tracked dataset (:class:`~repro.rdd.rdd.RDD`) whose
operations pipeline within partitions and split into stages at shuffle
boundaries, executed by a pluggable executor (serial, thread pool, or a
process pool standing in for cluster nodes).

Public entry points::

    from repro.rdd import SJContext

    ctx = SJContext(executor="processes", num_workers=4)
    rdd = ctx.parallelize(range(1000), num_partitions=8)
    rdd.map(lambda x: (x % 10, x)).reduceByKey(lambda a, b: a + b).collect()
"""

# Deprecated aliases: the task/executor error family is defined in (and
# best imported from) repro.errors, the one import surface for the whole
# stack's typed errors; these names stay importable from here for code
# that learned them as rdd-level concepts.
from repro.errors import (
    ExecutorError,
    FatalTaskError,
    ShuffleKeyError,
    TaskError,
    TransientTaskError,
    WorkerPoolError,
)
from repro.rdd.context import SJContext
from repro.rdd.rdd import RDD
from repro.rdd.partition import Partition
from repro.rdd.executors import (
    Executor,
    FaultInjectingExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
    ThreadExecutor,
    ProcessExecutor,
    make_executor,
)
from repro.rdd.fault import DEFAULT_RETRY_POLICY, RetryPolicy, no_retry_policy
from repro.rdd.stats import (
    AdaptiveConfig,
    AdaptivePlanner,
    DeltaDecision,
    RollupDecision,
    ExecutionReport,
    JoinDecision,
    RDDStats,
    ShuffleDecision,
)

__all__ = [
    "SJContext",
    "RDD",
    "Partition",
    "AdaptiveConfig",
    "AdaptivePlanner",
    "DeltaDecision",
    "RollupDecision",
    "ExecutionReport",
    "JoinDecision",
    "RDDStats",
    "ShuffleDecision",
    "Executor",
    "FaultInjectingExecutor",
    "SerialExecutor",
    "SimulatedClusterExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "no_retry_policy",
    # deprecated aliases of the repro.errors classes
    "ExecutorError",
    "TaskError",
    "TransientTaskError",
    "FatalTaskError",
    "WorkerPoolError",
    "ShuffleKeyError",
]
