"""Filtered queries through the serve layer: submission, wire
transport, and filter-aware cache keys."""

from __future__ import annotations

import pytest

from repro.core.query import FilterTerm, Query
from repro.serve import InProcessClient, QueryClient, QueryServer, QueryService
from repro.serve.keys import normalize_query, plan_key

from tests.serve.conftest import (
    HOT_DOMAINS,
    HOT_VALUES,
    row_multiset,
)


@pytest.fixture()
def service(serve_session):
    svc = QueryService(serve_session, num_workers=2, max_queue=16)
    yield svc
    svc.close()


def node_filter(node=3):
    return FilterTerm("compute nodes", "eq", node)


def test_filtered_query_returns_filtered_rows(service, serve_session):
    everything = serve_session.ask(HOT_DOMAINS, HOT_VALUES).collect()
    filtered = service.query(
        HOT_DOMAINS, HOT_VALUES, filters=[node_filter()]
    ).collect()
    manual = [r for r in everything if r["node"] == 3]
    assert row_multiset(filtered) == row_multiset(manual)
    assert 0 < len(filtered) < len(everything)


def test_filtered_and_unfiltered_results_are_distinct_entries(service):
    full = service.query(HOT_DOMAINS, HOT_VALUES).collect()
    part = service.query(
        HOT_DOMAINS, HOT_VALUES, filters=[node_filter()]
    ).collect()
    # a filter-blind result cache would hand the full rows back
    assert len(part) < len(full)


def test_filters_travel_the_wire(service, serve_session):
    with QueryServer(service) as server:
        host, port = server.address
        with QueryClient(host, port) as remote:
            local = InProcessClient(service)
            r_rows, _ = remote.query(
                HOT_DOMAINS, HOT_VALUES,
                dictionary=serve_session.dictionary,
                filters=[node_filter()],
            )
            l_rows, _ = local.query(
                HOT_DOMAINS, HOT_VALUES,
                dictionary=serve_session.dictionary,
                filters=[node_filter()],
            )
    assert row_multiset(r_rows) == row_multiset(l_rows)
    assert all(r["node"] == 3 for r in r_rows)
    assert r_rows


def test_explain_accepts_filters(service):
    local = InProcessClient(service)
    reply = local.explain(HOT_DOMAINS, HOT_VALUES, filters=[node_filter()])
    plan_text = reply["plan"]
    assert "Scan" in plan_text or "filter" in plan_text.lower()


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------

def test_plan_key_distinguishes_filters():
    bare = Query.of(HOT_DOMAINS, HOT_VALUES)
    filtered = Query.of(HOT_DOMAINS, HOT_VALUES, [node_filter()])
    other = Query.of(HOT_DOMAINS, HOT_VALUES, [node_filter(4)])
    assert plan_key("s", filtered) != plan_key("s", bare)
    assert plan_key("s", filtered) != plan_key("s", other)


def test_plan_key_canonicalizes_filter_order():
    f1 = FilterTerm("compute nodes", "eq", 3)
    f2 = FilterTerm("temperature", "range", None, 10.0, 20.0)
    a = Query.of(HOT_DOMAINS, HOT_VALUES, [f1, f2])
    b = Query.of(HOT_DOMAINS, HOT_VALUES, [f2, f1])
    assert plan_key("s", a) == plan_key("s", b)


def test_unfiltered_key_unchanged_by_the_filters_field():
    # empty filters serialize to the historical JSON form, so keys for
    # pre-filter clients stay stable across the API addition
    q = normalize_query(Query.of(HOT_DOMAINS, HOT_VALUES))
    assert "filters" not in q.to_json_dict()
