"""Answer: the single result object of the analyst entry points.

``ask``/``execute`` used to return a bare
:class:`~repro.core.dataset.ScrubJayDataset`, which silently dropped
the two artifacts an analyst needs to *trust* the result: how the
engine decided to compute it (the plan) and what actually happened
while computing it (the trace). An :class:`Answer` bundles all three:

- :attr:`dataset` — the result data;
- :attr:`plan` — the executed :class:`~repro.core.pipeline.DerivationPlan`;
- :attr:`trace` — the root :class:`~repro.obs.Span` of the execution
  (``None`` when the session's tracer is disabled).

Iteration and unknown attributes delegate to the dataset, so code
written against the old return type (``result.collect()``,
``result.schema``, ``for row in result``) keeps working unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class Answer:
    """Result dataset + plan + trace from one executed query."""

    def __init__(self, dataset, plan=None, trace=None) -> None:
        # name-mangled slots so __getattr__ delegation stays clean
        self._dataset = dataset
        self._plan = plan
        self._trace = trace

    # -- the three artifacts -------------------------------------------

    @property
    def dataset(self):
        """The result :class:`~repro.core.dataset.ScrubJayDataset`."""
        return self._dataset

    @property
    def plan(self):
        """The :class:`~repro.core.pipeline.DerivationPlan` that
        produced the dataset (None for plan-less constructions)."""
        return self._plan

    @property
    def trace(self):
        """Root :class:`~repro.obs.Span` of this execution, or None
        when tracing was off."""
        return self._trace

    # -- dataset delegation --------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        return self._dataset.collect()

    def to_rows(self) -> List[Dict[str, Any]]:
        """The result rows as a plain list of dicts (alias of
        :meth:`collect` with a name that reads as a conversion)."""
        return self._dataset.collect()

    def __len__(self) -> int:
        """Number of result rows (materializes the dataset)."""
        return self._dataset.count()

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._dataset.collect())

    def __getattr__(self, name: str) -> Any:
        # Only reached for names not found on Answer itself. Fetch the
        # dataset through object.__getattribute__: if unpickling or a
        # subclass ever probes before __init__ ran, a plain
        # self._dataset would re-enter __getattr__ forever.
        try:
            dataset = object.__getattribute__(self, "_dataset")
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute "
                f"{name!r}"
            ) from None
        return getattr(dataset, name)

    def explain(self) -> str:
        """The plan rendering (Figure 5/7 style); empty without a plan."""
        return self._plan.describe() if self._plan is not None else ""

    def __repr__(self) -> str:
        return (
            f"Answer(dataset={self._dataset.name!r}, "
            f"plan={'yes' if self._plan is not None else 'no'}, "
            f"trace={'yes' if self._trace is not None else 'no'})"
        )
