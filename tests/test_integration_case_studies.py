"""End-to-end integration: the paper's two case studies at test scale.

These run the full stack — datagen → session registration → engine
planning → distributed execution → analysis — and assert the paper's
qualitative findings hold on the derived data.
"""

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.analysis import rank_groups, time_series
from repro.datagen import generate_dat1, generate_dat2
from repro.datagen.facility import FacilityConfig


@pytest.fixture(scope="module")
def dat1_result():
    dat = generate_dat1(
        facility_config=FacilityConfig(num_racks=6, nodes_per_rack=4),
        duration=3600.0,
        amg_rack=3,
        amg_start=600.0,
        amg_duration=2400.0,
    )
    with ScrubJaySession() as sj:
        dat.register(sj)
        plan = (sj.query().across("jobs", "racks")
                .values("applications", "heat").plan())
        result = sj.execute(plan)
        result.persist()
        yield dat, plan, result


def test_dat1_plan_matches_figure5(dat1_result):
    _dat, plan, _result = dat1_result
    ops = sorted(op for op in plan.operations() if not op.startswith("load"))
    assert ops == sorted([
        "explode_discrete", "explode_continuous", "natural_join",
        "derive_heat", "interpolation_join",
    ])


def test_dat1_result_schema(dat1_result):
    _dat, _plan, result = dat1_result
    dims = result.schema.domain_dimensions()
    assert {"jobs", "racks", "time", "compute nodes"} <= dims
    assert "heat" in result.schema.value_dimensions()
    assert "applications" in result.schema.value_dimensions()


def test_dat1_amg_is_the_heat_outlier(dat1_result):
    """Figure 4's headline: the most heat was on the AMG rack."""
    _dat, _plan, result = dat1_result
    ranked = rank_groups(result, ["job_name", "rack"], "heat", "max")
    (app, rack), _heat = ranked[0]
    assert app == "AMG"
    assert rack == 3


def test_dat1_amg_heat_profile_rises(dat1_result):
    """Figure 4's AMG signature: a fairly regularly increasing curve."""
    _dat, _plan, result = dat1_result
    amg = result.where(lambda r: r.get("job_name") == "AMG")
    time_field = result.schema.domain_field("time")
    series = time_series(amg, ["location"], time_field, "heat")
    assert set(series) == {("top",), ("middle",), ("bottom",)}
    for key, points in series.items():
        third = max(1, len(points) // 3)
        early = sum(v for _t, v in points[:third]) / third
        late = sum(v for _t, v in points[-third:]) / third
        assert late > early + 1.0, f"heat did not rise at {key}"
    # top of the rack runs hotter than the bottom
    top_mean = sum(v for _t, v in series[("top",)]) / len(series[("top",)])
    bot_mean = sum(v for _t, v in series[("bottom",)]) / \
        len(series[("bottom",)])
    assert top_mean > bot_mean


@pytest.fixture(scope="module")
def dat2_result():
    dat = generate_dat2(run_duration=240.0, gap=60.0, papi_period=4.0,
                        ipmi_period=6.0)
    with ScrubJaySession(
        TuningProfile(interpolation_window=8.0)
    ) as sj:
        dat.register(sj)
        plan = (
            sj.query()
            .across("cpus")
            .values("active frequency", "instructions per time",
                    "memory reads per time", "memory writes per time",
                    "temperature")
            .plan()
        )
        result = sj.execute(plan)
        result.persist()
        yield dat, plan, result


def test_dat2_plan_matches_figure7(dat2_result):
    _dat, plan, _result = dat2_result
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert ops.count("derive_rate") == 2
    assert "derive_active_frequency" in ops
    assert len([op for op in ops if op.endswith("_join")]) == 2


def _window_mean(rows, field, start, end):
    vals = [r[field] for r in rows
            if field in r and start <= r["time"].epoch < end]
    assert vals, f"no samples for {field} in [{start}, {end})"
    return sum(vals) / len(vals)


def test_dat2_workload_signatures(dat2_result):
    """Figure 6: mg.C at full frequency / low instruction rate, prime95
    throttled / high instruction rate."""
    dat, _plan, result = dat2_result
    rows = result.collect()
    runs = sorted(dat.scheduler.jobs, key=lambda j: j.start)
    mgc = [j for j in runs if j.workload.name == "mg.C"]
    p95 = [j for j in runs if j.workload.name == "prime95"]

    # settle margin: skip the first 60 s of each run
    mgc_freq = _window_mean(rows, "active_frequency",
                            mgc[0].start + 60, mgc[0].end)
    p95_freq = _window_mean(rows, "active_frequency",
                            p95[-1].start + 120, p95[-1].end)
    rated = dat.facility.base_frequency(0)
    assert mgc_freq == pytest.approx(rated, rel=0.05)
    assert p95_freq < 0.8 * rated

    mgc_instr = _window_mean(rows, "instructions_rate",
                             mgc[0].start + 60, mgc[0].end)
    p95_instr = _window_mean(rows, "instructions_rate",
                             p95[-1].start + 120, p95[-1].end)
    assert p95_instr > 2 * mgc_instr

    mgc_mem = _window_mean(rows, "mem_reads_rate",
                           mgc[0].start + 60, mgc[0].end)
    p95_mem = _window_mean(rows, "mem_reads_rate",
                           p95[-1].start + 120, p95[-1].end)
    assert mgc_mem > 3 * p95_mem

    # thermal margin tighter under prime95
    mgc_margin = _window_mean(rows, "thermal_margin",
                              mgc[0].start + 60, mgc[0].end)
    p95_margin = _window_mean(rows, "thermal_margin",
                              p95[-1].start + 120, p95[-1].end)
    assert p95_margin < mgc_margin - 5.0


def test_dat2_every_run_covered(dat2_result):
    dat, _plan, result = dat2_result
    rows = result.collect()
    for job in dat.scheduler.jobs:
        n = sum(1 for r in rows
                if job.start + 30 <= r["time"].epoch < job.end)
        assert n > 0, f"no derived samples during {job.workload.name}"
