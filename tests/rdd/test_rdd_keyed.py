"""Shuffle (key-based) transformations against dict-based oracles."""

from collections import defaultdict

import pytest


def _kv(ctx, n=100, k=7, parts=5):
    return ctx.parallelize([(i % k, i) for i in range(n)], parts)


def test_reduceByKey_matches_oracle(ctx):
    got = dict(_kv(ctx).reduceByKey(lambda a, b: a + b).collect())
    want = defaultdict(int)
    for i in range(100):
        want[i % 7] += i
    assert got == dict(want)


def test_groupByKey_groups_all_values(ctx):
    got = {k: sorted(v) for k, v in _kv(ctx).groupByKey().collect()}
    want = defaultdict(list)
    for i in range(100):
        want[i % 7].append(i)
    assert got == {k: sorted(v) for k, v in want.items()}


def test_aggregateByKey(ctx):
    # count and sum per key with an asymmetric zero
    got = dict(
        _kv(ctx)
        .aggregateByKey(
            (0, 0),
            lambda acc, v: (acc[0] + 1, acc[1] + v),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        .collect()
    )
    for k, (count, total) in got.items():
        vals = [i for i in range(100) if i % 7 == k]
        assert count == len(vals)
        assert total == sum(vals)


def test_aggregateByKey_zero_not_shared_between_keys(ctx):
    # mutable zero must be deep-copied per key
    r = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 2)
    got = dict(
        r.aggregateByKey([], lambda acc, v: acc + [v],
                         lambda a, b: a + b).collect()
    )
    assert sorted(got[1]) == ["a", "c"]
    assert got[2] == ["b"]


def test_combineByKey_custom_combiner(ctx):
    r = ctx.parallelize([("x", 1), ("x", 5), ("y", 2)], 2)
    got = dict(
        r.combineByKey(
            lambda v: (v, v),
            lambda c, v: (min(c[0], v), max(c[1], v)),
            lambda a, b: (min(a[0], b[0]), max(a[1], b[1])),
        ).collect()
    )
    assert got == {"x": (1, 5), "y": (2, 2)}


def test_join_inner(ctx):
    a = ctx.parallelize([(1, "a"), (2, "b"), (2, "c")], 2)
    b = ctx.parallelize([(2, "x"), (3, "y"), (2, "z")], 2)
    got = sorted(a.join(b).collect())
    assert got == [(2, ("b", "x")), (2, ("b", "z")),
                   (2, ("c", "x")), (2, ("c", "z"))]


def test_join_no_overlap_empty(ctx):
    a = ctx.parallelize([(1, "a")])
    b = ctx.parallelize([(2, "b")])
    assert a.join(b).collect() == []


def test_leftOuterJoin(ctx):
    a = ctx.parallelize([(1, "a"), (2, "b")])
    b = ctx.parallelize([(2, "x")])
    got = sorted(a.leftOuterJoin(b).collect())
    assert got == [(1, ("a", None)), (2, ("b", "x"))]


def test_cogroup(ctx):
    a = ctx.parallelize([(1, "a"), (1, "b")])
    b = ctx.parallelize([(1, "x"), (2, "y")])
    got = {k: (sorted(l), sorted(r)) for k, (l, r) in
           a.cogroup(b).collect()}
    assert got == {1: (["a", "b"], ["x"]), 2: ([], ["y"])}


def test_partitionBy_colocates_keys(ctx):
    r = _kv(ctx, 50, 5).partitionBy(3)
    for part in r.glom().collect():
        keys_here = {k for k, _v in part}
        # every key appears in exactly one partition overall
    all_parts = r.glom().collect()
    placement = defaultdict(set)
    for idx, part in enumerate(all_parts):
        for k, _v in part:
            placement[k].add(idx)
    assert all(len(s) == 1 for s in placement.values())


def test_countByKey(ctx):
    got = _kv(ctx, 20, 3).countByKey()
    assert got == {0: 7, 1: 7, 2: 6}


def test_countByValue(ctx):
    got = ctx.parallelize([1, 1, 2], 2).countByValue()
    assert got == {1: 2, 2: 1}


def test_lookup(ctx):
    r = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 2)
    assert sorted(r.lookup(1)) == ["a", "c"]
    assert r.lookup(9) == []


def test_shuffle_with_tuple_keys(ctx):
    r = ctx.parallelize([((1, "a"), 1), ((1, "a"), 2), ((2, "b"), 3)], 3)
    got = dict(r.reduceByKey(lambda a, b: a + b).collect())
    assert got == {(1, "a"): 3, (2, "b"): 3}


def test_shuffle_num_partitions_respected(ctx):
    r = _kv(ctx).reduceByKey(lambda a, b: a + b, num_partitions=3)
    assert r.getNumPartitions() == 3


@pytest.mark.parametrize("executor_fixture", ["thread_ctx", "process_ctx"])
def test_keyed_ops_consistent_across_executors(request, executor_fixture):
    cx = request.getfixturevalue(executor_fixture)
    r = cx.parallelize([(i % 5, i) for i in range(200)], 8)
    got = dict(r.reduceByKey(lambda a, b: a + b).collect())
    want = defaultdict(int)
    for i in range(200):
        want[i % 5] += i
    assert got == dict(want)


def test_subtract(ctx):
    a = ctx.parallelize([1, 2, 2, 3, 4], 2)
    b = ctx.parallelize([2, 4, 9], 2)
    assert sorted(a.subtract(b).collect()) == [1, 3]


def test_subtract_keeps_duplicates(ctx):
    a = ctx.parallelize([5, 5, 6], 2)
    b = ctx.parallelize([6], 1)
    assert sorted(a.subtract(b).collect()) == [5, 5]


def test_subtract_disjoint_and_empty(ctx):
    a = ctx.parallelize([1, 2], 2)
    assert sorted(a.subtract(ctx.emptyRDD()).collect()) == [1, 2]
    assert a.subtract(a).collect() == []


def test_intersection(ctx):
    a = ctx.parallelize([1, 2, 2, 3], 2)
    b = ctx.parallelize([2, 3, 3, 4], 2)
    assert sorted(a.intersection(b).collect()) == [2, 3]


def test_intersection_empty(ctx):
    a = ctx.parallelize([1], 1)
    assert a.intersection(ctx.parallelize([9])).collect() == []
