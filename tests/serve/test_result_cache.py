"""ResultCache: TTL, LRU accounting, counters, disk write-through."""

from __future__ import annotations

from repro.core.cache import DerivationCache
from repro.serve import ResultCache

from tests.serve.conftest import row_multiset


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def _dataset(session, name="samples"):
    return session.dataset(name)


def test_round_trip(serve_session):
    cache = ResultCache(max_entries=4)
    ds = _dataset(serve_session)
    cache.put("k", ds)
    out = cache.get("k", serve_session.ctx)
    assert out is not None
    assert row_multiset(out.collect()) == row_multiset(ds.collect())
    assert out.schema == ds.schema
    s = cache.stats()
    assert s["hits"] == 1 and s["misses"] == 0


def test_miss_counts(serve_session):
    cache = ResultCache()
    assert cache.get("absent", serve_session.ctx) is None
    assert cache.stats()["misses"] == 1


def test_ttl_expiry(serve_session):
    clock = FakeClock()
    cache = ResultCache(ttl=10.0, clock=clock)
    cache.put("k", _dataset(serve_session))
    clock.advance(5.0)
    assert cache.get("k", serve_session.ctx) is not None
    clock.advance(6.0)  # 11s old now
    assert cache.get("k", serve_session.ctx) is None
    s = cache.stats()
    assert s["expirations"] == 1
    assert s["entries"] == 0


def test_lru_bound_and_recency_refresh(serve_session):
    cache = ResultCache(max_entries=2)
    ds = _dataset(serve_session)
    cache.put("a", ds)
    cache.put("b", ds)
    assert cache.get("a", serve_session.ctx) is not None  # refresh a
    cache.put("c", ds)  # evicts b (least recently used), not a
    assert cache.get("a", serve_session.ctx) is not None
    assert cache.get("b", serve_session.ctx) is None
    assert cache.stats()["evictions"] == 1


def test_write_through_and_warm_start(serve_session, tmp_path):
    disk = DerivationCache(str(tmp_path / "cache"), max_entries=8)
    warm = ResultCache(backing=disk)
    ds = _dataset(serve_session)
    warm.put("k", ds)
    assert len(disk) == 1  # write-through happened

    # A fresh in-memory tier (service restart) warms from disk.
    cold = ResultCache(backing=disk)
    out = cold.get("k", serve_session.ctx)
    assert out is not None
    assert cold.stats()["backing_hits"] == 1
    # and the entry was promoted into memory
    assert cold.stats()["entries"] == 1


def test_ttl_not_defeated_by_backing(serve_session, tmp_path):
    """Regression: an entry that expired in memory used to be re-read
    from the write-through disk tier and re-promoted with a fresh
    created_at, serving the stale result forever."""
    clock = FakeClock()
    disk = DerivationCache(str(tmp_path / "cache"), max_entries=8)
    cache = ResultCache(ttl=10.0, backing=disk, clock=clock, wall_clock=clock)
    cache.put("k", _dataset(serve_session))
    clock.advance(11.0)
    assert cache.get("k", serve_session.ctx) is None
    # the disk copy was invalidated too: still a miss, forever
    assert cache.get("k", serve_session.ctx) is None
    assert len(disk) == 0
    assert cache.stats()["backing_hits"] == 0


def test_ttl_enforced_on_promotion_across_restart(serve_session, tmp_path):
    """A restarted service warming from disk must honor the entry's
    true age, not restart its TTL at promotion time."""
    clock = FakeClock()
    disk = DerivationCache(str(tmp_path / "cache"), max_entries=8)
    warm = ResultCache(ttl=10.0, backing=disk, clock=clock, wall_clock=clock)
    warm.put("k", _dataset(serve_session))

    clock.advance(6.0)
    fresh = ResultCache(ttl=10.0, backing=disk, clock=clock, wall_clock=clock)
    # 6s old: promoted with 4s of TTL left
    assert fresh.get("k", serve_session.ctx) is not None
    clock.advance(5.0)  # 11s old in total — past the ceiling
    assert fresh.get("k", serve_session.ctx) is None

    # an entry already past the TTL on disk is never served at all
    warm.put("k2", _dataset(serve_session))
    clock.advance(11.0)
    late = ResultCache(ttl=10.0, backing=disk, clock=clock, wall_clock=clock)
    assert late.get("k2", serve_session.ctx) is None
    assert late.stats()["backing_hits"] == 0
    assert late.stats()["expirations"] == 1


def test_stampless_backing_entry_expired_when_ttl_set(
    serve_session, tmp_path
):
    """Legacy disk entries with no creation stamp have unknown age:
    with a TTL configured they must be treated as expired, and without
    one they stay servable."""
    from repro.core.cache import CachedResult

    disk = DerivationCache(str(tmp_path / "cache"), max_entries=8)
    ds = _dataset(serve_session)
    disk.put_entry(
        "k",
        CachedResult(
            rows=ds.collect(),
            schema_json=ds.schema.to_json_dict(),
            name=ds.name,
        ),
    )
    bounded = ResultCache(ttl=10.0, backing=disk)
    assert bounded.get("k", serve_session.ctx) is None
    assert bounded.stats()["expirations"] == 1

    disk.put_entry(
        "j",
        CachedResult(
            rows=ds.collect(),
            schema_json=ds.schema.to_json_dict(),
            name=ds.name,
        ),
    )
    unbounded = ResultCache(backing=disk)
    assert unbounded.get("j", serve_session.ctx) is not None


def test_derivation_cache_counters_exposed(tmp_path, serve_session):
    disk = DerivationCache(str(tmp_path / "c"), max_entries=2)
    ds = _dataset(serve_session)
    for i in range(4):
        disk.put(f"fp{i}", ds)
    s = disk.stats()
    assert s["evictions"] == 2
    assert s["entries"] == 2
    assert disk.get("fp3") is not None
    assert disk.stats()["hits"] == 1
    assert disk.get("fp0") is None  # evicted
    assert disk.stats()["misses"] == 1
