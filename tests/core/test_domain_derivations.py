"""Expert-provided derivations: heat and active frequency."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.domain_derivations import DeriveActiveFrequency, DeriveHeat
from repro.core.semantics import Schema, domain, value
from repro.errors import DerivationError
from repro.units.temporal import Timestamp

TEMPS = Schema({
    "rack": domain("racks", "identifier"),
    "location": domain("rack locations", "label"),
    "aisle": domain("aisles", "label"),
    "time": domain("time", "datetime"),
    "temp": value("temperature", "degrees Celsius"),
})


def _temp_rows():
    return [
        {"rack": 1, "location": "top", "aisle": "hot",
         "time": Timestamp(0.0), "temp": 30.0},
        {"rack": 1, "location": "top", "aisle": "cold",
         "time": Timestamp(0.0), "temp": 18.0},
        {"rack": 1, "location": "bottom", "aisle": "hot",
         "time": Timestamp(0.0), "temp": 24.0},
        {"rack": 1, "location": "bottom", "aisle": "cold",
         "time": Timestamp(0.0), "temp": 18.0},
        # missing cold reading → no heat row for this group
        {"rack": 2, "location": "top", "aisle": "hot",
         "time": Timestamp(0.0), "temp": 40.0},
    ]


def test_derive_heat_schema(dictionary):
    out = DeriveHeat().derive_schema(TEMPS, dictionary)
    assert "heat" in out
    assert out["heat"].dimension == "heat"
    assert "aisle" not in out and "temp" not in out


def test_derive_heat_values(ctx, dictionary):
    ds = ScrubJayDataset.from_rows(ctx, _temp_rows(), TEMPS, "t")
    rows = sorted(
        DeriveHeat().apply(ds, dictionary).collect(),
        key=lambda r: r["location"],
    )
    assert [(r["rack"], r["location"], r["heat"]) for r in rows] == [
        (1, "bottom", 6.0),
        (1, "top", 12.0),
    ]


def test_derive_heat_applies_requirements(dictionary):
    no_aisle = TEMPS.without_field("aisle")
    assert not DeriveHeat().applies(no_aisle, dictionary)
    no_temp = TEMPS.without_field("temp")
    assert not DeriveHeat().applies(no_temp, dictionary)
    no_time = TEMPS.without_field("time")
    assert not DeriveHeat().applies(no_time, dictionary)
    assert DeriveHeat().applies(TEMPS, dictionary)


def test_derive_heat_apply_rejects_invalid(ctx, dictionary):
    ds = ScrubJayDataset.from_rows(
        ctx, [], TEMPS.without_field("aisle"), "t"
    )
    with pytest.raises(DerivationError):
        DeriveHeat().apply(ds, dictionary)


def test_derive_heat_averages_duplicate_sensors(ctx, dictionary):
    rows = _temp_rows()[:2] + [
        {"rack": 1, "location": "top", "aisle": "hot",
         "time": Timestamp(0.0), "temp": 34.0},
    ]
    ds = ScrubJayDataset.from_rows(ctx, rows, TEMPS, "t")
    out = DeriveHeat().apply(ds, dictionary).collect()
    assert out[0]["heat"] == pytest.approx((30.0 + 34.0) / 2 - 18.0)


# ----------------------------------------------------------------------
# active frequency
# ----------------------------------------------------------------------

FREQ = Schema({
    "nodeid": domain("compute nodes", "identifier"),
    "cpuid": domain("cpus", "identifier"),
    "time": domain("time", "datetime"),
    "aperf_rate": value("aperf events per time", "count per second"),
    "mperf_rate": value("mperf events per time", "count per second"),
    "base_frequency": value("rated frequency", "rated gigahertz"),
})


def test_active_frequency_schema(dictionary):
    out = DeriveActiveFrequency().derive_schema(FREQ, dictionary)
    assert out["active_frequency"].dimension == "active frequency"


def test_active_frequency_math(ctx, dictionary):
    rows = [
        {"nodeid": 0, "cpuid": 0, "time": Timestamp(0.0),
         "aperf_rate": 2.4e9, "mperf_rate": 3.2e9, "base_frequency": 3.2},
        {"nodeid": 0, "cpuid": 1, "time": Timestamp(0.0),
         "aperf_rate": 3.2e9, "mperf_rate": 3.2e9, "base_frequency": 3.2},
        {"nodeid": 0, "cpuid": 2, "time": Timestamp(0.0),
         "aperf_rate": 1.0, "mperf_rate": 0.0, "base_frequency": 3.2},
    ]
    ds = ScrubJayDataset.from_rows(ctx, rows, FREQ, "f")
    out = {r["cpuid"]: r.get("active_frequency")
           for r in DeriveActiveFrequency().apply(ds, dictionary).collect()}
    assert out[0] == pytest.approx(2.4)  # throttled to 75%
    assert out[1] == pytest.approx(3.2)  # full tilt
    assert 2 not in out  # zero mperf rate row dropped


def test_active_frequency_requires_all_inputs(dictionary):
    assert DeriveActiveFrequency().applies(FREQ, dictionary)
    for missing in ("aperf_rate", "mperf_rate", "base_frequency"):
        assert not DeriveActiveFrequency().applies(
            FREQ.without_field(missing), dictionary
        )


def test_instantiations_only_when_applicable(dictionary):
    assert DeriveActiveFrequency.instantiations(FREQ, dictionary)
    assert not DeriveActiveFrequency.instantiations(
        FREQ.without_field("aperf_rate"), dictionary
    )
    assert DeriveHeat.instantiations(TEMPS, dictionary)
    assert not DeriveHeat.instantiations(
        TEMPS.without_field("aisle"), dictionary
    )
