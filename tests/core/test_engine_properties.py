"""Property-based soundness of the derivation engine.

For randomized catalogs (entity chains with sensor streams, layout
tables, and optionally span/list-shaped logs) and randomized queries,
every plan the engine returns must be *sound*:

- its schema-level execution (``plan.derive_schema``) contains every
  queried domain dimension as a domain and every queried value
  dimension as a value;
- its data-level execution on generated rows succeeds and produces
  rows whose fields are exactly drawn from that schema;
- it survives a JSON round trip with identical structure;
- schema-level and data-level execution agree.

When the engine instead raises NoSolutionError, that is acceptable for
non-adjacent queries; adjacency (one layout hop) must always solve.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import SJContext
from repro.core.dataset import ScrubJayDataset
from repro.core.derivation import GLOBAL_REGISTRY
from repro.core.dictionary import default_dictionary
from repro.core.engine import DerivationEngine
from repro.core.pipeline import DerivationPlan
from repro.core.query import Query
from repro.core.semantics import Schema, domain, value
from repro.errors import NoSolutionError
from repro.units.temporal import TimeSpan, Timestamp

_CTX = SJContext(executor="serial")

MAX_ENTITIES = 4


def _dictionary():
    d = default_dictionary()
    for i in range(MAX_ENTITIES):
        d.define_dimension(f"entity{i}", continuous=False, ordered=False)
        d.define_dimension(f"metric{i}", continuous=True, ordered=True)
        d.define_unit(f"metric{i} units", "quantity", f"metric{i}",
                      scale=float(i + 1))
    d.define_dimension("group", continuous=False, ordered=False)
    return d


_DICT = _dictionary()


def _build_catalog(num_entities, with_log, rng_seed):
    """Schemas + generated rows for an entity chain."""
    import random

    rng = random.Random(rng_seed)
    schemas, data = {}, {}
    ids = [0, 1, 2]
    for i in range(num_entities):
        name = f"stream{i}"
        schemas[name] = Schema({
            "id": domain(f"entity{i}", "identifier"),
            "time": domain("time", "datetime"),
            "value": value(f"metric{i}", f"metric{i} units"),
        })
        data[name] = [
            {"id": e, "time": Timestamp(float(t)),
             "value": rng.random() * 100}
            for e in ids for t in range(0, 100, 10)
        ]
        if i > 0:
            lname = f"layout{i}"
            schemas[lname] = Schema({
                "child": domain(f"entity{i}", "identifier"),
                "parent": domain(f"entity{i - 1}", "identifier"),
            })
            data[lname] = [
                {"child": e, "parent": rng.choice(ids)} for e in ids
            ]
    if with_log:
        schemas["log"] = Schema({
            "gid": domain("group", "identifier"),
            "members": domain("entity0", "list<identifier>"),
            "span": domain("time", "timespan"),
        })
        data["log"] = [
            {"gid": g, "members": rng.sample(ids, 2),
             "span": TimeSpan(0.0, 60.0)}
            for g in range(2)
        ]
    return schemas, data


def _datasets(schemas, data):
    return {
        name: ScrubJayDataset.from_rows(_CTX, data[name], schemas[name],
                                        name)
        for name in schemas
    }


@given(
    num_entities=st.integers(2, MAX_ENTITIES),
    with_log=st.booleans(),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_returned_plans_are_sound(num_entities, with_log, seed, data):
    schemas, rows = _build_catalog(num_entities, with_log, seed)
    i = data.draw(st.integers(0, num_entities - 1))
    j = data.draw(st.integers(0, num_entities - 1))
    metric_of = data.draw(st.sampled_from([i, j]))
    query = Query.of(
        domains=sorted({f"entity{i}", f"entity{j}"}),
        values=[f"metric{metric_of}"],
    )
    engine = DerivationEngine(_DICT)
    try:
        plan = engine.solve(schemas, query)
    except NoSolutionError:
        # adjacency must always solve: one layout hop + streams
        assert abs(i - j) > 2, (
            f"engine failed a near query: {query}"
        )
        return

    # 1. schema-level soundness
    out_schema = plan.derive_schema(schemas, _DICT)
    assert {f"entity{i}", f"entity{j}"} <= out_schema.domain_dimensions()
    assert f"metric{metric_of}" in out_schema.value_dimensions()

    # 2. JSON round trip preserves structure
    back = DerivationPlan.from_json(plan.to_json(), GLOBAL_REGISTRY)
    assert back.to_json() == plan.to_json()
    assert back.derive_schema(schemas, _DICT) == out_schema

    # 3. data-level execution succeeds and agrees with the schema
    result = plan.execute(_datasets(schemas, rows), _DICT)
    assert result.schema == out_schema
    collected = result.collect()
    fields = set(out_schema.fields())
    for row in collected:
        assert set(row) <= fields
    # with identical deterministic inputs the adjacent-stream join is
    # never empty
    if abs(i - j) <= 1:
        assert collected


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_log_queries_explode_and_solve(seed):
    """Queries over the group/log dataset force the explode path."""
    schemas, rows = _build_catalog(2, True, seed)
    engine = DerivationEngine(_DICT)
    query = Query.of(domains=["group", "entity0"], values=["metric0"])
    plan = engine.solve(schemas, query)
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert "explode_discrete" in ops
    result = plan.execute(_datasets(schemas, rows), _DICT)
    out_schema = plan.derive_schema(schemas, _DICT)
    assert result.schema == out_schema
    assert "group" in result.schema.domain_dimensions()
    assert result.collect()


@given(num_entities=st.integers(2, MAX_ENTITIES), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_plans_are_deterministic(num_entities, seed):
    """Same catalog + query ⇒ byte-identical plan, across fresh engines."""
    schemas, _rows = _build_catalog(num_entities, False, seed)
    query = Query.of(domains=["entity0", "entity1"], values=["metric1"])
    a = DerivationEngine(_DICT).solve(schemas, query).to_json()
    b = DerivationEngine(_DICT).solve(schemas, query).to_json()
    assert a == b
