"""SimulatedClusterExecutor: correctness and timing-model properties."""

import pytest

from repro.rdd import SJContext, SimulatedClusterExecutor
from repro.rdd.executors import make_executor
from repro.rdd.partition import Partition


def test_results_identical_to_serial():
    data = list(range(500))
    with SJContext(executor="serial") as s, \
            SJContext(executor="simulated", num_workers=4) as sim:
        serial = (s.parallelize(data, 8)
                  .map(lambda x: (x % 7, x))
                  .reduceByKey(lambda a, b: a + b).collect())
        simulated = (sim.parallelize(data, 8)
                     .map(lambda x: (x % 7, x))
                     .reduceByKey(lambda a, b: a + b).collect())
    assert sorted(serial) == sorted(simulated)


def test_simulated_elapsed_accumulates():
    ex = SimulatedClusterExecutor(num_workers=2)
    parts = [Partition(i, list(range(1000))) for i in range(4)]
    ex.run_partition_tasks(lambda _i, items: [sum(items)], parts)
    assert ex.simulated_elapsed > 0.0
    before = ex.simulated_elapsed
    ex.run_partition_tasks(lambda _i, items: items, parts)
    assert ex.simulated_elapsed > before


def test_reset_clears_clock():
    ex = SimulatedClusterExecutor(num_workers=2)
    parts = [Partition(0, [1, 2, 3])]
    ex.run_partition_tasks(lambda _i, items: items, parts)
    ex.reset()
    assert ex.simulated_elapsed == 0.0


def test_more_workers_never_slower_within_one_stage():
    """For a single stage of equal tasks, the LPT critical path is
    non-increasing in workers (the stage part is max-load; no driver
    gap is involved on the first stage)."""

    def burn(_i, items):
        total = 0.0
        for x in items:
            total += x ** 0.5
        return [total]

    parts = [Partition(i, list(range(20000))) for i in range(8)]
    elapsed = {}
    for w in (1, 2, 4, 8):
        ex = SimulatedClusterExecutor(num_workers=w)
        ex.run_partition_tasks(burn, parts)
        elapsed[w] = ex.simulated_elapsed
    # allow small measurement noise between runs
    assert elapsed[8] < elapsed[1] * 0.6
    assert elapsed[2] < elapsed[1] * 1.1


def test_empty_stage_costs_nothing():
    ex = SimulatedClusterExecutor(num_workers=4)
    out = ex.run_partition_tasks(lambda _i, items: items, [])
    assert out == []
    assert ex.simulated_elapsed == 0.0


def test_make_executor_builds_simulated():
    ex = make_executor("simulated", 5)
    assert isinstance(ex, SimulatedClusterExecutor)
    assert ex.num_workers == 5


def test_think_time_between_jobs_not_charged():
    # Regression: _last_return survived across jobs, so any driver
    # think-time between two actions was billed as shuffle-exchange
    # time of the later job.
    import time

    ex = SimulatedClusterExecutor(num_workers=2)
    with SJContext(executor=ex, default_parallelism=4) as ctx:
        ctx.parallelize(range(100), 4).map(lambda x: x + 1).collect()
        after_first = ex.simulated_elapsed
        time.sleep(0.3)  # analyst reads the first result...
        ctx.parallelize(range(100), 4).map(lambda x: x + 1).collect()
        delta = ex.simulated_elapsed - after_first
    assert delta < 0.25, (
        f"driver think-time leaked into the simulated clock: {delta:.3f}s"
    )
