"""SLURM-like scheduler: allocation rules, timeline, log rows."""

import pytest

from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler, ScheduleConfig
from repro.units.temporal import TimeSpan


@pytest.fixture()
def fac():
    return Facility(FacilityConfig(num_racks=4, nodes_per_rack=4))


def test_pin_places_exact_job(fac):
    sched = JobScheduler(fac)
    job = sched.pin("AMG", [1, 2, 3], start=100.0, duration=500.0)
    assert job.nodes == (1, 2, 3)
    assert job.duration == 500.0
    assert sched.job_at(2, 300.0) is job
    assert sched.job_at(2, 700.0) is None
    assert sched.job_at(9, 300.0) is None


def test_random_schedule_no_node_overlap(fac):
    sched = JobScheduler(fac, ScheduleConfig(duration=7200.0, seed=3))
    jobs = sched.schedule_random()
    assert jobs
    for n in fac.nodes():
        intervals = sorted(
            (j.start, j.end) for j in jobs if n in j.nodes
        )
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, f"overlap on node {n}"


def test_random_schedule_respects_exclusions(fac):
    sched = JobScheduler(fac, ScheduleConfig(duration=7200.0))
    reserved = fac.nodes_in_rack(0)
    jobs = sched.schedule_random(exclude_nodes=reserved)
    used = {n for j in jobs for n in j.nodes}
    assert used.isdisjoint(reserved)


def test_random_schedule_deterministic(fac):
    a = JobScheduler(fac, ScheduleConfig(seed=9)).schedule_random()
    b = JobScheduler(fac, ScheduleConfig(seed=9)).schedule_random()
    assert [(j.workload.name, j.nodes, j.start) for j in a] == \
        [(j.workload.name, j.nodes, j.start) for j in b]


def test_jobs_within_duration(fac):
    cfg = ScheduleConfig(duration=3600.0)
    sched = JobScheduler(fac, cfg)
    for j in sched.schedule_random():
        assert j.end <= cfg.start + cfg.duration + 1e-9
        assert j.duration > 0


def test_job_at_boundary_semantics(fac):
    sched = JobScheduler(fac)
    job = sched.pin("mg.C", [0], start=10.0, duration=10.0)
    assert sched.job_at(0, 10.0) is job  # inclusive start
    assert sched.job_at(0, 20.0) is None  # exclusive end


def test_timeline_rebuilt_after_pin(fac):
    sched = JobScheduler(fac)
    sched.pin("mg.C", [0], 0.0, 10.0)
    assert sched.job_at(0, 5.0) is not None
    # index is built lazily; pins after a query are still respected if
    # the index is invalidated by construction order — pin first in
    # production code, but guard the simple case here
    sched2 = JobScheduler(fac)
    sched2.pin("mg.C", [0], 0.0, 10.0)
    sched2.pin("prime95", [0], 20.0, 10.0)
    assert sched2.job_at(0, 25.0).workload.name == "prime95"


def test_job_log_rows_shape(fac):
    sched = JobScheduler(fac)
    sched.pin("AMG", [1, 2], 0.0, 600.0)
    rows = sched.job_log_rows()
    assert len(rows) == 1
    row = rows[0]
    assert row["job_name"] == "AMG"
    assert row["nodelist"] == [1, 2]
    assert row["num_nodes"] == 2
    assert row["elapsed"] == 600.0
    assert row["timespan"] == TimeSpan(0.0, 600.0)


def test_job_log_sorted_by_start(fac):
    sched = JobScheduler(fac)
    sched.pin("AMG", [1], 500.0, 100.0)
    sched.pin("mg.C", [2], 0.0, 100.0)
    rows = sched.job_log_rows()
    assert [r["job_name"] for r in rows] == ["mg.C", "AMG"]
