#!/usr/bin/env python3
"""Continuous ingestion into the NoSQL store, tailed live (§7.1).

The paper: "we employed a distributed ingestion framework to
continuously collect LDMS data into a distributed NoSQL database
store." This example replays that pipeline end to end on the
wide-column store — and keeps it *running*:

1. stream the first hour of LDMS node samples into a keyspace/table
   partitioned by node and clustered by time;
2. register the table as a **live** dataset
   (`session.ingest().table(...).tail("ldms")`): the feed's watermark
   is the sealed-segment count, and every later `append_rows()` seals
   fresh immutable segments without rewriting old ones;
3. install a standing query {jobs, compute nodes} → {applications,
   cpu utilization} as a serve-tier subscription;
4. keep collecting: each new batch of samples is appended to the
   store and `advance()`d through the service — the subscription's
   answer refreshes to the new watermark (incrementally when the
   derivation is delta-safe, by scoped replay otherwise) instead of
   being recomputed from a cold start;
5. correlate the final derived utilization with jobs' presence.

Run: python examples/nosql_ingestion.py
"""

import tempfile

from repro import ScrubJaySession, TuningProfile
from repro.analysis import group_aggregate
from repro.datagen.counters import CounterSimulator
from repro.datagen.dat import JOB_LOG_SCHEMA, LDMS_SCHEMA, ensure_semantics
from repro.datagen.facility import Facility, FacilityConfig
from repro.datagen.scheduler import JobScheduler
from repro.store import WideColumnStore


def main() -> None:
    facility = Facility(FacilityConfig(num_racks=1, nodes_per_rack=4))
    sched = JobScheduler(facility)
    sched.pin("Kripke", [0, 1], 300.0, 2300.0)
    sched.pin("prime95", [2], 600.0, 2200.0)
    # node 3 stays idle for contrast

    # ------------------------------------------------------------------
    # 1. the first hour of ingestion into the wide-column store
    # ------------------------------------------------------------------
    store = WideColumnStore(tempfile.mkdtemp(prefix="scrubjay-store-"))
    table = store.create_table(
        "perf", "ldms", partition_key=["nodeid"], clustering=["time"],
        memtable_limit=2000,
    )
    sim = CounterSimulator(facility, sched, seed=5)
    backfill = sim.ldms_rows(facility.nodes(), 0.0, 1200.0, period=5.0)
    table.insert_many(backfill)
    table.flush()   # seal: only sealed segments are feed-visible
    print(f"backfilled {table.count()} LDMS samples into perf.ldms "
          f"({len(table.partitions())} partitions, "
          f"{table.segment_count()} sealed segments)")

    # ------------------------------------------------------------------
    # 2-3. tail the table as a live dataset, subscribe a standing query
    # ------------------------------------------------------------------
    with ScrubJaySession(
        TuningProfile(interpolation_window=10.0)
    ) as sj:
        ensure_semantics(sj.dictionary)
        feed = sj.ingest().table(store, "perf", "ldms", LDMS_SCHEMA) \
                 .tail("ldms")
        sj.register_rows(sched.job_log_rows(), JOB_LOG_SCHEMA,
                         "job_queue_log")

        plan = (sj.query().across("jobs", "compute nodes")
                .values("applications", "cpu utilization").plan())
        print("\nderivation sequence:")
        print(plan.describe())

        with sj.serve(num_workers=2) as svc:
            sub = svc.subscribe(["jobs", "compute nodes"],
                                ["applications", "cpu utilization"])
            print(f"\nstanding query installed: "
                  f"{len(sub.current().rows)} rows at "
                  f"watermark {feed.watermark} "
                  f"(sealed segments)")

            # ----------------------------------------------------------
            # 4. ingestion keeps running: append, seal, advance, refresh
            # ----------------------------------------------------------
            for t0 in (1200.0, 1500.0, 1800.0, 2100.0):
                batch = sim.ldms_rows(facility.nodes(), t0, t0 + 300.0,
                                      period=5.0)
                store.append_rows("perf", "ldms", batch)
                out = svc.advance("ldms")
                upd = sub.current()
                print(f"  t={t0:6.0f}s  +{len(batch)} samples  "
                      f"watermark {out['since']} -> {out['watermark']}  "
                      f"answer v{upd.version}: {len(upd.rows)} rows")

            print(f"\nrefreshes: {sub.delta_refreshes} incremental, "
                  f"{sub.replay_refreshes} scoped replays")

            # the standing answer equals a from-scratch query at the
            # same watermark — the exactly-once-per-watermark guarantee
            fresh = sj.ask(["jobs", "compute nodes"],
                           ["applications", "cpu utilization"])
            result = fresh.dataset.persist()
            assert len(sub.current().rows) == result.count(), \
                "subscription answer must match a fresh query"

            # ----------------------------------------------------------
            # 5. analysis: utilization per application
            # ----------------------------------------------------------
            agg = group_aggregate(result, ["job_name"], "cpu_util",
                                  "mean")
            print("\nmean CPU utilization while each application ran:")
            for (app,), util in sorted(agg.items(),
                                       key=lambda kv: -kv[1]):
                print(f"  {app:>9}: {util:5.1f} %")
            assert all(util > 80.0 for util in agg.values()), \
                "busy nodes should show high utilization"
            print("\n(idle node 3 never appears: no job-instant "
                  "relates to it)")


if __name__ == "__main__":
    main()
