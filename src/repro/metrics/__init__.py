"""The semantic metrics layer: first-class measures, time-grain
rollups, and rollup routing.

ScrubJay's base query model answers *"relate these dimensions"*; this
package answers *"summarize a value dimension over time"* as a
first-class query concept:

- :class:`~repro.core.query.Measure` / :class:`~repro.core.query.
  Grain` — what to aggregate and at which time bucket / grouping
  domain, attached to a :class:`~repro.core.query.Query` via the
  builder's ``.measure() / .per() / .grain()`` terminals;
- :mod:`repro.metrics.compute` — measure evaluation over the engine's
  answer to the query's base relation (mergeable partials everywhere,
  finalize once);
- :mod:`repro.metrics.derive` — the ``bucket_time`` and
  ``rollup_aggregate`` derivations that make a rollup an ordinary,
  serializable derivation plan;
- :mod:`repro.metrics.rollup` — materialized :class:`Rollup` tables
  (``session.rollup(...)``) kept fresh incrementally as feeds
  advance, and :func:`choose_rollup`, the router that answers each
  metric query from the coarsest rollup that can — recorded as a
  :class:`~repro.rdd.stats.RollupDecision`.
"""

from repro.core.query import Grain, Measure

# Importing registers the bucket_time / rollup_aggregate derivations.
import repro.metrics.derive  # noqa: F401

from repro.metrics.compute import (
    MetricAnswer,
    finalize_metric,
    merge_metric_partials,
    metric_group_fields,
    metric_partials,
)
from repro.metrics.derive import BucketTime, RollupAggregate
from repro.metrics.rollup import Rollup, choose_rollup, rows_from_state

__all__ = [
    "Measure",
    "Grain",
    "MetricAnswer",
    "Rollup",
    "BucketTime",
    "RollupAggregate",
    "choose_rollup",
    "finalize_metric",
    "merge_metric_partials",
    "metric_group_fields",
    "metric_partials",
    "rows_from_state",
]
