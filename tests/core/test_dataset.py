"""ScrubJayDataset: access, selection, validation."""

import pytest

from repro.core.dataset import ScrubJayDataset
from repro.core.semantics import Schema, domain, value
from repro.errors import SemanticError

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [
    {"node": 1, "temp": 20.0},
    {"node": 2, "temp": 25.0},
    {"node": 3},  # sparse: temp missing
]


@pytest.fixture()
def ds(ctx):
    return ScrubJayDataset.from_rows(ctx, ROWS, SCHEMA, "t")


def test_collect_take_count(ds):
    assert ds.collect() == ROWS
    assert ds.take(2) == ROWS[:2]
    assert ds.count() == 3


def test_column_skips_sparse_rows(ds):
    assert ds.column("temp") == [20.0, 25.0]
    assert ds.column("node") == [1, 2, 3]


def test_column_unknown_field(ds):
    with pytest.raises(SemanticError):
        ds.column("humidity")


def test_select_projects_rows_and_schema(ds):
    sel = ds.select("node")
    assert sel.schema.fields() == ["node"]
    assert sel.collect() == [{"node": 1}, {"node": 2}, {"node": 3}]
    # original untouched
    assert ds.schema.fields() == ["node", "temp"]


def test_select_unknown_field(ds):
    with pytest.raises(SemanticError):
        ds.select("nope")


def test_where_filters(ds):
    hot = ds.where(lambda r: r.get("temp", 0) > 21)
    assert hot.collect() == [{"node": 2, "temp": 25.0}]
    assert hot.schema == ds.schema


def test_validate_against_dictionary(ds, dictionary):
    assert ds.validate(dictionary) is ds


def test_validate_rejects_bad_schema(ctx, dictionary):
    bad = ScrubJayDataset.from_rows(
        ctx, [], Schema({"x": domain("no such dim", "identifier")}), "bad"
    )
    with pytest.raises(SemanticError):
        bad.validate(dictionary)


def test_provenance_tracks_operations(ds):
    sel = ds.select("node")
    assert sel.provenance["op"] == "select"
    assert sel.provenance["input"]["op"] == "source"


def test_persist_chains(ds):
    assert ds.persist() is ds
