"""The streaming write path: ``append_rows`` seals appends into fresh
immutable segments — never rewriting sealed ones — with zone-map
sidecars landing at seal time."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.store import WideColumnStore


@pytest.fixture()
def table(tmp_path):
    store = WideColumnStore(str(tmp_path / "store"))
    return store.create_table("perf", "ldms", ["node"], ["time"])


def _rows(start, n):
    return [
        {"node": (start + i) % 3, "time": float(start + i),
         "v": start + i}
        for i in range(n)
    ]


def _file_state(paths):
    out = {}
    for p in paths:
        with open(p, "rb") as f:
            out[p] = (f.read(), os.stat(p).st_mtime_ns)
    return out


def test_append_seals_immediately_below_memtable_limit(table):
    out = table.append_rows(_rows(0, 3))
    assert out["segment_count"] == 1
    assert len(out["sealed"]) == 1
    assert out["rows"] == 3
    assert table._memtable_rows == 0  # nothing left unsealed
    assert table.segment_count() == 1


def test_append_never_rewrites_sealed_segments(table):
    table.append_rows(_rows(0, 4))
    table.append_rows(_rows(4, 4))
    before = _file_state(table._segment_paths())
    out = table.append_rows(_rows(8, 5))
    after = _file_state(table._segment_paths())
    # the old segment files are byte-identical and untouched on disk
    for path, state in before.items():
        assert after[path] == state
    # only the new segment is new
    assert set(after) - set(before) == set(out["sealed"])


def test_every_sealed_segment_gets_a_zone_sidecar(table):
    table.append_rows(_rows(0, 4))
    out = table.append_rows(_rows(4, 4))
    for seg in table._segment_paths():
        zone_path = table._zone_path(seg)
        assert os.path.exists(zone_path)
    # the fresh sidecar covers the appended rows' ranges
    with open(table._zone_path(out["sealed"][0]), "rb") as f:
        zone = pickle.load(f)
    assert zone  # non-empty zone map for a non-empty segment


def test_segment_count_is_the_feed_offset(table):
    assert table.segment_count() == 0
    table.append_rows(_rows(0, 2))
    table.append_rows(_rows(2, 2))
    assert table.segment_count() == 2
    got = table.read_segment_range(1, 2)
    assert sorted(r["time"] for r in got) == [2.0, 3.0]
    # the full range replays every appended row exactly once
    assert len(table.read_segment_range(0, 2)) == 4


def test_append_sweeps_pending_memtable_rows(table):
    table.insert_many(_rows(0, 2))  # unsealed, not feed-visible
    assert table.segment_count() == 0
    out = table.append_rows(_rows(2, 2))
    assert out["flushed_memtable"] is True
    assert out["segment_count"] == 1
    # the sealed segment carries both the pending and appended rows
    assert len(table.read_segment_range(0, 1)) == 4


def test_append_rows_via_store_handle(tmp_path):
    store = WideColumnStore(str(tmp_path / "s"))
    store.create_table("perf", "power", ["node"])
    out = store.append_rows("perf", "power", _rows(0, 3))
    assert out["segment_count"] == 1
    assert store.table("perf", "power").count() == 3
