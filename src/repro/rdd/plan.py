"""The scheduler: interprets RDD lineage and runs stages.

Evaluation walks the lineage graph from the requested RDD down to its
sources. Chains of narrow transformations are *pipelined* — composed
into a single per-partition task — while shuffles split the graph into
stages: a map stage that assigns records to output buckets (run on the
executor), a driver-side exchange that regroups buckets (standing in
for the network shuffle between cluster nodes), and a reduce stage
that merges each bucket (run on the executor). This is the same stage
structure Spark's DAG scheduler produces, and it is what gives the
benchmarks in the paper's Figure 3 their shape: transformations are
cheap and embarrassingly parallel, combinations pay for the shuffle.

Adaptive execution: materialization happens bottom-up, so by the time
a shuffle or join node is computed its inputs already exist driver-side
— statistics collected from them (see :mod:`repro.rdd.stats`) are
*actual* sizes, not estimates from a static plan. The scheduler uses
them to (1) pick broadcast-hash vs shuffle for
:class:`~repro.rdd.rdd.AdaptiveJoinRDD` nodes, (2) size the reduce
partition count of auto shuffles, and (3) detect skewed shuffle
buckets and split them at key granularity. Every choice is recorded in
the context's :class:`~repro.rdd.stats.ExecutionReport`.

Fault tolerance: each stage submission goes through
:meth:`Scheduler._run_stage`. When the executor reports a whole-pool
death (:class:`~repro.errors.WorkerPoolError`), the stage is replayed
from its input partitions — which the scheduler materialized from
lineage and still holds driver-side — after an exponential backoff,
up to ``retry_policy.max_stage_attempts`` total attempts. Because
tasks are deterministic functions of their input partitions, replay
is exact: a re-run stage sees identical inputs and produces identical
shuffle buckets (asserted by tests/rdd/test_fault_tolerance.py).
Per-task retry for single-task faults happens one level down, inside
the executors (see :mod:`repro.rdd.fault`).
"""

from __future__ import annotations

import bisect
import logging
import os
import time
from typing import Any, Callable, List, Optional

from repro.columnar.batch import ColumnBatch, count_rows
from repro.errors import WorkerPoolError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.rdd.executors import Executor
from repro.rdd.fault import DEFAULT_RETRY_POLICY
from repro.rdd.partition import Partition
from repro.rdd.rdd import (
    RDD,
    AdaptiveJoinRDD,
    CoalescedRDD,
    MappedPartitionsRDD,
    RangePartitionedRDD,
    RepartitionedRDD,
    ScanRDD,
    ShuffledRDD,
    SourceRDD,
    UnionRDD,
)
from repro.rdd.shuffle import hash_bucket, portable_hash
from repro.rdd.stats import (
    AdaptivePlanner,
    JoinDecision,
    ShuffleDecision,
    collect_stats,
)

logger = logging.getLogger("repro.rdd.plan")

#: per-partition sample budget for range-partition boundary picking;
#: a fixed cap keeps the driver-side sample bounded regardless of how
#: rows distribute over partitions (the old stride formula degenerated
#: to stride 1 — sampling everything — on skewed partition counts)
RANGE_SAMPLE_BUDGET = 32

#: sentinel tag marking a traced task's return value — a plain string
#: compared by equality, so it survives any pickle round trip through
#: process executors unchanged
_TASK_META = "__repro.obs.task_meta__"


def _traced_task(
    fn: Callable[[int, List[Any]], List[Any]],
) -> Callable[[int, List[Any]], List[Any]]:
    """Wrap a stage function to report per-task timings and row counts
    back through its *return value* — the result side-channel.

    Executor workers (including forked/spawned processes) cannot
    mutate driver-side spans; instead each task returns
    ``[_TASK_META, meta, real_output]`` and the scheduler unwraps the
    envelope on the driver, turning the meta into task spans. Works
    identically under every executor because the envelope rides the
    same path as the data. ``perf_counter`` is CLOCK_MONOTONIC on
    Linux — system-wide, so worker timestamps land on the driver's
    time axis.
    """

    def traced(index: int, items: List[Any]) -> List[Any]:
        t0 = time.perf_counter()
        out = fn(index, items)
        t1 = time.perf_counter()
        return [
            _TASK_META,
            {
                "index": index,
                "t0": t0,
                "t1": t1,
                "rows_in": _logical_rows(items),
                "rows_out": _logical_rows(out),
                "pid": os.getpid(),
            },
            out,
        ]

    return traced


def _logical_rows(items: List[Any]) -> int:
    """Row count of a partition payload; partitions carrying columnar
    batches count the rows *inside* the batches, so stats and spans
    report data volume, not element counts."""
    if items and isinstance(items[0], ColumnBatch):
        return count_rows(items)
    return len(items)


class Scheduler:
    """Materializes RDDs by executing their lineage on an executor.

    ``planner`` (an :class:`~repro.rdd.stats.AdaptivePlanner`) drives
    the statistics-based choices; without one the scheduler falls back
    to fixed partition counts and shuffle joins, recording nothing.

    ``tracer``/``metrics`` instrument stage submissions: every stage
    run while the tracer is enabled produces a ``stage`` span holding
    one retroactive ``task`` span per partition (timed inside the
    executor via the result side-channel, see :func:`_traced_task`);
    the registry counts stages, replays, and rows regardless of the
    tracer switch — those few increments per *stage* are noise next
    to per-row work.
    """

    def __init__(
        self,
        executor: Executor,
        planner: Optional[AdaptivePlanner] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.executor = executor
        self.planner = planner
        self.tracer = tracer
        self.metrics = metrics
        self._depth = 0  # materialize() recursion depth; 0 = a new job

    def materialize(self, rdd: RDD) -> List[Partition]:
        """Compute (or fetch cached) partitions for ``rdd``."""
        if self._depth == 0:
            # a fresh action: tell stateful executors a new job starts
            self.executor.job_boundary()
        self._depth += 1
        try:
            if rdd._cached is not None:
                return rdd._cached
            parts = self._compute(rdd)
            if rdd._persist:
                rdd._cached = parts
                # persisted partitions will be reused: collect their
                # statistics now so later planning decisions are free
                if rdd._stats is None and self.planner is not None:
                    rdd._stats = collect_stats(parts, self.planner.config)
            return parts
        finally:
            self._depth -= 1

    # ------------------------------------------------------------------

    def _run_stage(
        self,
        fn: Callable[[int, List[Any]], List[Any]],
        parts: List[Partition],
        origin: str,
    ) -> List[Partition]:
        """Submit one stage, tracing it when the tracer is enabled.

        The untraced path is one attribute check away from the
        original code — the <5% no-op overhead budget rides on that.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._submit(fn, parts, origin)
        with tracer.span(
            f"stage:{origin}", kind="stage", origin=origin
        ) as stage:
            out = self._submit(_traced_task(fn), parts, origin)
            return self._absorb_task_meta(out, stage, origin)

    def _absorb_task_meta(
        self, out: List[Partition], stage, origin: str
    ) -> List[Partition]:
        """Unwrap ``_traced_task`` envelopes: turn each task's meta
        into a retroactive ``task`` span under ``stage`` and restore
        the partitions' real payloads."""
        tracer = self.tracer
        rows_in = rows_out = 0
        tasks = 0
        unwrapped: List[Partition] = []
        for p in out:
            data = p.data
            if (
                isinstance(data, list)
                and len(data) == 3
                and data[0] == _TASK_META
            ):
                meta = data[1]
                task = tracer.record(
                    f"task:{origin}[{meta['index']}]",
                    meta["t0"],
                    meta["t1"],
                    kind="task",
                    parent=stage,
                    index=meta["index"],
                    worker=meta["pid"],
                )
                task.add("rows_in", meta["rows_in"])
                task.add("rows_out", meta["rows_out"])
                rows_in += meta["rows_in"]
                rows_out += meta["rows_out"]
                tasks += 1
                unwrapped.append(Partition(p.index, data[2]))
            else:
                # an executor that synthesized a partition without
                # running the task fn (e.g. an empty stage)
                unwrapped.append(p)
        stage.add("tasks", tasks)
        stage.add("rows_in", rows_in)
        stage.add("rows_out", rows_out)
        return unwrapped

    def _submit(
        self,
        fn: Callable[[int, List[Any]], List[Any]],
        parts: List[Partition],
        origin: str,
    ) -> List[Partition]:
        """Submit one stage, replaying it from lineage on pool death.

        ``parts`` are the stage's lineage inputs, still materialized in
        the driver, so a replay re-runs the same deterministic tasks on
        identical inputs — Spark's recompute-from-lineage, with the
        recompute already in hand.
        """
        if self.metrics is not None:
            self.metrics.inc("rdd.stages", labels={"origin": origin})
        policy = self.executor.retry_policy or DEFAULT_RETRY_POLICY
        attempt = 1
        while True:
            try:
                return self.executor.run_partition_tasks(fn, parts)
            except WorkerPoolError as exc:
                if attempt >= policy.max_stage_attempts:
                    logger.error(
                        "stage %s: worker pool died on final attempt "
                        "%d/%d: %s",
                        origin, attempt, policy.max_stage_attempts, exc,
                    )
                    raise
                logger.warning(
                    "stage %s: worker pool died (attempt %d/%d), "
                    "replaying stage from lineage inputs: %s",
                    origin, attempt, policy.max_stage_attempts, exc,
                )
                if self.metrics is not None:
                    self.metrics.inc(
                        "rdd.stage.replays", labels={"origin": origin}
                    )
                policy.sleep(policy.backoff(attempt))
                attempt += 1

    def _compute(self, rdd: RDD) -> List[Partition]:
        if isinstance(rdd, SourceRDD):
            return rdd.partitions
        if isinstance(rdd, ScanRDD):
            return self._compute_scan(rdd)
        if isinstance(rdd, MappedPartitionsRDD):
            return self._compute_narrow_chain(rdd)
        if isinstance(rdd, UnionRDD):
            return self._compute_union(rdd)
        if isinstance(rdd, CoalescedRDD):
            return self._compute_coalesce(rdd)
        if isinstance(rdd, RepartitionedRDD):
            return self._compute_repartition(rdd)
        if isinstance(rdd, ShuffledRDD):
            return self._compute_shuffle(rdd)
        if isinstance(rdd, AdaptiveJoinRDD):
            return self._compute_adaptive_join(rdd)
        if isinstance(rdd, RangePartitionedRDD):
            return self._compute_range_partition(rdd)
        raise TypeError(f"scheduler cannot materialize {type(rdd).__name__}")

    def _compute_scan(self, rdd: ScanRDD) -> List[Partition]:
        """Materialize a ScanRDD: prune driver-side, read worker-side.

        The source decides which partitions can possibly match
        (``source.prune``); each surviving partition becomes one task
        that calls ``source.read_partition_stats`` inside the worker.
        Scan statistics ride the result side-channel (the same
        ``_TASK_META`` envelope as traced tasks — always on here,
        because the ``scan.*`` metrics are cheap and load-bearing) and
        are aggregated into ``rdd.last_scan`` plus the metrics
        registry; when the tracer is enabled each task also becomes a
        retroactive span carrying its per-partition read stats.
        """
        source, columns = rdd.source, rdd.columns
        predicate = rdd.predicate
        batched = getattr(rdd, "batched", False)
        selection = source.prune(predicate)
        placeholders = [
            Partition(i, [src_index])
            for i, src_index in enumerate(selection.indices)
        ]

        def scan_task(index: int, items: List[Any]) -> List[Any]:
            t0 = time.perf_counter()
            if batched:
                out, st = source.read_partition_batches_stats(
                    items[0], columns, predicate
                )
                n = count_rows(out)
            else:
                out, st = source.read_partition_stats(
                    items[0], columns, predicate
                )
                n = len(out)
            t1 = time.perf_counter()
            return [
                _TASK_META,
                {
                    "index": index,
                    "t0": t0,
                    "t1": t1,
                    "rows_in": 0,
                    "rows_out": n,
                    "pid": os.getpid(),
                    "scan": st,
                },
                out,
            ]

        agg = {
            "rows_read": 0,
            "bytes_scanned": 0,
            "segments_read": 0,
            "segments_skipped": 0,
        }
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        if placeholders:
            if traced:
                with tracer.span(
                    "stage:scan", kind="stage", origin="scan",
                    source=source.name,
                ) as stage:
                    raw = self._submit(scan_task, placeholders, "scan")
                    out = self._absorb_scan_meta(raw, stage, agg)
                    stage.add(
                        "scan.partitions_total", selection.total
                    )
                    stage.add(
                        "scan.partitions_scanned", len(placeholders)
                    )
                    for key, value in agg.items():
                        stage.add(f"scan.{key}", value)
            else:
                raw = self._submit(scan_task, placeholders, "scan")
                out = self._absorb_scan_meta(raw, None, agg)
        else:
            out = [Partition(0, [])]
        agg["partitions_total"] = selection.total
        agg["partitions_scanned"] = len(placeholders)
        agg["partitions_pruned"] = selection.skipped
        rdd.last_scan = agg
        if self.metrics is not None:
            labels = {"source": source.name}
            self.metrics.inc("scan.rows_read", agg["rows_read"],
                             labels=labels)
            self.metrics.inc("scan.bytes_scanned", agg["bytes_scanned"],
                             labels=labels)
            self.metrics.inc("scan.segments_skipped",
                             agg["segments_skipped"], labels=labels)
            self.metrics.inc("scan.partitions_pruned", selection.skipped,
                             labels=labels)
        # leaf statistics come free here — downstream join planning
        # (broadcast-vs-shuffle) sees real post-scan sizes
        if rdd._stats is None and self.planner is not None:
            rdd._stats = collect_stats(out, self.planner.config)
        return out

    def _absorb_scan_meta(
        self, out: List[Partition], stage, agg: dict
    ) -> List[Partition]:
        """Unwrap scan-task envelopes, summing per-partition read stats
        into ``agg`` (and emitting task spans when ``stage`` is set)."""
        tracer = self.tracer
        unwrapped: List[Partition] = []
        rows_out = 0
        for p in out:
            data = p.data
            if (
                isinstance(data, list)
                and len(data) == 3
                and data[0] == _TASK_META
            ):
                meta = data[1]
                st = meta.get("scan") or {}
                for key in agg:
                    agg[key] += st.get(key, 0)
                rows_out += meta["rows_out"]
                if stage is not None:
                    task = tracer.record(
                        f"task:scan[{meta['index']}]",
                        meta["t0"],
                        meta["t1"],
                        kind="task",
                        parent=stage,
                        index=meta["index"],
                        worker=meta["pid"],
                    )
                    task.add("rows_out", meta["rows_out"])
                    for key, value in st.items():
                        task.add(f"scan.{key}", value)
                unwrapped.append(Partition(p.index, data[2]))
            else:
                unwrapped.append(p)
        if stage is not None:
            stage.add("tasks", len(unwrapped))
            stage.add("rows_out", rows_out)
        return unwrapped

    def _compute_narrow_chain(self, rdd: MappedPartitionsRDD) -> List[Partition]:
        """Pipeline consecutive narrow transformations into one task."""
        fns: List[Callable[[int, List[Any]], List[Any]]] = [rdd.fn]
        base: RDD = rdd.parent
        while (
            isinstance(base, MappedPartitionsRDD)
            and not base._persist
            and base._cached is None
        ):
            fns.append(base.fn)
            base = base.parent
        fns.reverse()
        base_parts = self.materialize(base)

        def composed(index: int, items: List[Any]) -> List[Any]:
            for fn in fns:
                items = fn(index, items)
            return items

        return self._run_stage(composed, base_parts, "narrow")

    def _compute_union(self, rdd: UnionRDD) -> List[Partition]:
        parts: List[Partition] = []
        for parent in rdd.rdds:
            for p in self.materialize(parent):
                # defensive copy: a persisted (or source) parent keeps
                # its own `data` lists alive, and downstream stages may
                # extend/consume union partitions in place — aliasing
                # them would corrupt the parent's cached partitions
                parts.append(Partition(len(parts), list(p.data)))
        return parts

    def _compute_coalesce(self, rdd: CoalescedRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        out: List[Partition] = [Partition(i, []) for i in range(n)]
        for p in parent_parts:
            out[p.index % n].data.extend(p.data)
        return out

    def _compute_repartition(self, rdd: RepartitionedRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        out: List[Partition] = [Partition(i, []) for i in range(n)]
        for p in parent_parts:
            for seq, item in enumerate(p.data):
                out[(p.index + seq) % n].data.append(item)
        return out

    def _choose_shuffle_partitions(
        self, rdd: ShuffledRDD, parent_parts: List[Partition]
    ) -> tuple:
        """Pick the reduce partition count: explicit, stats, or default."""
        if rdd._n is not None:
            return rdd._n, "explicit"
        planner = self.planner
        if planner is not None and planner.config.enabled:
            stats = collect_stats(
                parent_parts, planner.config, keyed=True
            )
            n = planner.choose_reduce_partitions(
                stats.total_rows, stats.distinct_keys
            )
            return n, (
                f"stats: {stats.total_rows} rows,"
                f" ~{stats.distinct_keys} distinct keys,"
                f" target {planner.config.target_partition_rows} rows/part"
            )
        return rdd.ctx.default_parallelism, "default-parallelism"

    def _compute_shuffle(self, rdd: ShuffledRDD) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        shuffle_t0 = time.perf_counter()
        n, n_reason = self._choose_shuffle_partitions(rdd, parent_parts)
        create = rdd.create
        merge_value = rdd.merge_value
        merge_combiners = rdd.merge_combiners
        # multi-process executors need process-stable key hashing; the
        # salted builtin hash would silently mis-bucket equal keys
        strict_hash = self.executor.portable_hash_required

        def map_task(_index: int, items: List[Any]) -> List[Any]:
            # One dict of partial combiners per output bucket: the
            # map-side combine that keeps shuffle volume proportional
            # to distinct keys rather than records. Bucket indices are
            # memoized per key: composite keys (tuples of strings,
            # dataclasses) pay a recursive portable_hash once per
            # distinct key per task, not once per record.
            buckets: List[dict] = [dict() for _ in range(n)]
            bucket_of: dict = {}
            for k, v in items:
                b = bucket_of.get(k)
                if b is None:
                    b = bucket_of[k] = hash_bucket(k, n, strict_hash)
                d = buckets[b]
                if k in d:
                    d[k] = merge_value(d[k], v)
                else:
                    d[k] = create(v)
            return [list(d.items()) for d in buckets]

        map_out = self._run_stage(map_task, parent_parts, "shuffle-map")
        exchange_t0 = time.perf_counter()

        # Driver-side exchange: regroup bucket b from every map task,
        # splitting skewed buckets at key granularity so one hot bucket
        # does not serialize the whole reduce stage.
        bucket_sizes = [
            sum(len(mp.data[b]) for mp in map_out) for b in range(n)
        ]
        total_pairs = sum(bucket_sizes)
        planner = self.planner
        skewed: List[int] = []
        if planner is not None and planner.config.enabled:
            skewed = planner.detect_skew(bucket_sizes)
        skewed_set = frozenset(skewed)

        shuffle_parts: List[Partition] = []
        mean = total_pairs / n if n else 0.0
        for b in range(n):
            pairs = [pair for mp in map_out for pair in mp.data[b]]
            if b in skewed_set:
                m = planner.skew_splits(len(pairs), mean)
                # secondary hash on the high bits: equal keys stay
                # together (reduce merges whole keys), distinct keys
                # spread over m sub-buckets
                sub: List[List[Any]] = [[] for _ in range(m)]
                for pair in pairs:
                    h = portable_hash(pair[0], strict_hash)
                    sub[(h // n) % m].append(pair)
                nonempty = [s for s in sub if s]
                if len(nonempty) > 1:
                    for s in nonempty:
                        shuffle_parts.append(
                            Partition(len(shuffle_parts), s)
                        )
                    continue
                # a single hot key cannot be split without breaking
                # reduce-side merge; fall through to one partition
            shuffle_parts.append(Partition(len(shuffle_parts), pairs))

        shuffle_decision: Optional[ShuffleDecision] = None
        if planner is not None:
            shuffle_decision = ShuffleDecision(
                origin="shuffle",
                requested_partitions=rdd._n,
                chosen_partitions=n,
                output_partitions=len(shuffle_parts),
                input_rows=sum(len(p.data) for p in parent_parts),
                shuffled_pairs=total_pairs,
                skewed_buckets=skewed,
                reason=n_reason,
            )
            planner.report.add(shuffle_decision)

        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            # retroactive span: the exchange just happened, between the
            # map and reduce stage spans on the current thread's span
            exchange = tracer.record(
                "shuffle-exchange",
                exchange_t0,
                time.perf_counter(),
                kind="stage",
                origin="exchange",
            )
            exchange.add("shuffled_pairs", total_pairs)
            exchange.add("buckets", n)
            exchange.add("output_partitions", len(shuffle_parts))
            if skewed:
                exchange.add("skewed_buckets", len(skewed))
            cfg = planner.config if planner is not None else None
            exchange.add(
                "approx_bytes",
                collect_stats(shuffle_parts, cfg).approx_bytes,
            )

        def reduce_task(_index: int, items: List[Any]) -> List[Any]:
            merged: dict = {}
            for k, combiner in items:
                if k in merged:
                    merged[k] = merge_combiners(merged[k], combiner)
                else:
                    merged[k] = combiner
            return list(merged.items())

        out = self._run_stage(reduce_task, shuffle_parts, "shuffle-reduce")
        if planner is not None:
            dt = time.perf_counter() - shuffle_t0
            shuffle_decision.measured_s = dt
            planner.report.add_timing("shuffle", dt)
        return out

    def _compute_adaptive_join(self, rdd: AdaptiveJoinRDD) -> List[Partition]:
        """Materialize inputs, then pick broadcast-hash vs shuffle.

        Statistics come from the just-materialized partitions — actual
        sizes, not estimates — and are cached on the parents. The
        broadcast path builds a driver-side hash map from the small
        side and streams the big side through one narrow stage (no
        shuffle, no portable-hash requirement); the fallback reuses
        the ordinary cogroup join lineage over the materialized
        inputs.
        """
        left_parts = self.materialize(rdd.left)
        right_parts = self.materialize(rdd.right)
        planner = self.planner or AdaptivePlanner()
        cfg = planner.config
        if rdd.left._stats is None or rdd.left._stats.distinct_keys is None:
            rdd.left._stats = collect_stats(left_parts, cfg, keyed=True)
        if rdd.right._stats is None or rdd.right._stats.distinct_keys is None:
            rdd.right._stats = collect_stats(right_parts, cfg, keyed=True)
        decision: JoinDecision = planner.decide_join(
            rdd.left._stats, rdd.right._stats, hint=rdd.strategy
        )
        join_t0 = time.perf_counter()
        if decision.strategy == "broadcast":
            if decision.build_side == "right":
                build_parts, stream_parts = right_parts, left_parts
            else:
                build_parts, stream_parts = left_parts, right_parts
            build: dict = {}
            for p in build_parts:
                for k, v in p.data:
                    build.setdefault(k, []).append(v)
            if decision.build_side == "right":
                def probe(_index: int, items: List[Any]) -> List[Any]:
                    return [
                        (k, (v, w))
                        for k, v in items
                        for w in build.get(k, ())
                    ]
            else:
                def probe(_index: int, items: List[Any]) -> List[Any]:
                    return [
                        (k, (w, v))
                        for k, v in items
                        for w in build.get(k, ())
                    ]
            out = self._run_stage(probe, stream_parts, "broadcast-join")
        else:
            # shuffle fallback: the classic cogroup plan over the
            # inputs we already hold (SourceRDD wrappers make them
            # lineage roots)
            lsrc = SourceRDD(rdd.ctx, left_parts)
            rsrc = SourceRDD(rdd.ctx, right_parts)
            out = self.materialize(lsrc.join(rsrc, rdd._n))
        # the measured strategy cost is the tuner's regret input
        dt = time.perf_counter() - join_t0
        decision.measured_s = dt
        planner.report.add_timing(f"join.{decision.strategy}", dt)
        return out

    def _compute_range_partition(
        self, rdd: RangePartitionedRDD
    ) -> List[Partition]:
        parent_parts = self.materialize(rdd.parent)
        n = rdd.num_partitions()
        key_fn = rdd.key_fn
        ascending = rdd.ascending

        # Sample keys in the driver to pick range boundaries, as
        # Spark's RangePartitioner does with its sampling job. A fixed
        # per-partition budget bounds the sample: the old formula
        # (32 * n // num_partitions) degenerated to stride 1 — sampling
        # every row — when partitions outnumbered 32 * n, and
        # oversampled tiny partitions next to huge ones.
        sample_keys: List[Any] = []
        for p in parent_parts:
            if not p.data:
                continue
            stride = max(1, -(-len(p.data) // RANGE_SAMPLE_BUDGET))
            sample_keys.extend(key_fn(x) for x in p.data[::stride])
        sample_keys.sort()
        boundaries = [
            sample_keys[(i + 1) * len(sample_keys) // n]
            for i in range(n - 1)
            if sample_keys
        ]

        def map_task(_index: int, items: List[Any]) -> List[Any]:
            buckets: List[List[Any]] = [[] for _ in range(n)]
            for x in items:
                b = bisect.bisect_right(boundaries, key_fn(x)) if boundaries else 0
                if not ascending:
                    b = n - 1 - b
                buckets[b].append(x)
            return buckets

        map_out = self._run_stage(map_task, parent_parts, "range-map")
        shuffle_parts = [
            Partition(b, [x for mp in map_out for x in mp.data[b]])
            for b in range(n)
        ]

        def reduce_task(_index: int, items: List[Any]) -> List[Any]:
            return sorted(items, key=key_fn, reverse=not ascending)

        return self._run_stage(reduce_task, shuffle_parts, "range-sort")
