"""Wrapper base classes: RowsWrapper and load() behaviour."""

import pytest

from repro.core.semantics import Schema, domain, value
from repro.wrappers import RowsWrapper

SCHEMA = Schema({
    "node": domain("compute nodes", "identifier"),
    "temp": value("temperature", "degrees Celsius"),
})

ROWS = [{"node": i, "temp": 20.0 + i} for i in range(10)]


def test_rows_wrapper_load(ctx, dictionary):
    ds = RowsWrapper(ROWS, SCHEMA, dictionary, "mem").load(ctx)
    assert ds.collect() == ROWS
    assert ds.name == "mem"
    assert ds.schema == SCHEMA


def test_rows_wrapper_provenance(ctx, dictionary):
    ds = RowsWrapper(ROWS, SCHEMA, dictionary, "mem").load(ctx)
    assert ds.provenance == {
        "op": "wrap", "wrapper": "RowsWrapper", "name": "mem",
    }


def test_rows_wrapper_num_partitions(ctx, dictionary):
    ds = RowsWrapper(ROWS, SCHEMA, dictionary, "mem",
                     num_partitions=5).load(ctx)
    assert ds.rdd.getNumPartitions() == 5


def test_rows_wrapper_registers_in_session(session):
    wrapper = RowsWrapper(ROWS, SCHEMA, session.dictionary, "mem")
    ds = session.register_wrapper(wrapper, "mem")
    assert session.dataset("mem") is ds
