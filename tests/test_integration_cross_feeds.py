"""Cross-feed analyses: relations the facility data implies but no
single source exposes — power↔heat, humidity independence, and the
frequency↔temperature link of §5.1's motivating example.
"""

import pytest

from repro import ScrubJaySession, TuningProfile
from repro.analysis import correlate
from repro.datagen import generate_dat1, generate_dat2
from repro.datagen.facility import FacilityConfig


@pytest.fixture(scope="module")
def dat1_session():
    dat = generate_dat1(
        facility_config=FacilityConfig(num_racks=6, nodes_per_rack=4),
        duration=3600.0, amg_rack=2, amg_start=300.0, amg_duration=2700.0,
        include_aux_feeds=True,
    )
    with ScrubJaySession() as sj:
        dat.register(sj)
        yield dat, sj


def test_power_and_heat_positively_correlate(dat1_session):
    """Racks drawing more power shed more heat: a relation spanning two
    sensor feeds, joined on (rack, time) by the engine."""
    _dat, sj = dat1_session
    result = sj.ask(domains=["racks"], values=["heat", "power"])
    assert "power" in result.schema.value_dimensions()
    r = correlate(result, "heat", "power")
    assert r > 0.5, f"heat and power should track each other, r={r}"


def test_humidity_uncorrelated_with_heat(dat1_session):
    """Humidity is driven by the machine-room climate, not workload —
    the derived relation must NOT show a strong link."""
    _dat, sj = dat1_session
    result = sj.ask(domains=["racks"], values=["heat", "humidity"])
    r = correlate(result, "heat", "humidity")
    assert abs(r) < 0.4, f"spurious humidity correlation r={r}"


def test_power_query_plan_joins_two_feeds(dat1_session):
    _dat, sj = dat1_session
    plan = sj.query().across("racks").values("heat", "power").plan()
    ops = [op for op in plan.operations() if not op.startswith("load")]
    assert "interpolation_join" in ops
    assert "derive_heat" in ops
    loads = {op for op in plan.operations() if op.startswith("load")}
    assert loads == {"load:rack_temperatures", "load:rack_power"}


def test_frequency_temperature_motivating_query():
    """§5.1's example query: 'CPU active frequencies and rack
    temperatures ... the domain dimensions are CPUs and racks' — here
    run over the DAT-2 node feeds (thermal margin as the temperature
    value)."""
    dat = generate_dat2(run_duration=240.0, gap=60.0, papi_period=4.0,
                        ipmi_period=5.0)
    with ScrubJaySession(
        TuningProfile(interpolation_window=10.0)
    ) as sj:
        dat.register(sj)
        result = sj.ask(domains=["cpus"],
                        values=["active frequency", "temperature"])
        rows = [r for r in result.collect()
                if "active_frequency" in r and "thermal_margin" in r]
        assert rows
        # throttled (low-frequency) samples coincide with small thermal
        # margins: positive frequency↔margin correlation
        r = correlate(result.where(
            lambda row: "active_frequency" in row
            and "thermal_margin" in row
        ), "active_frequency", "thermal_margin")
        assert r > 0.5, f"throttling should track thermal margin, r={r}"


def test_four_dataset_query(dat1_session):
    """A query needing four datasets (job log, layout, temperatures,
    power) still plans at interactive rates and executes."""
    import time

    _dat, sj = dat1_session
    t0 = time.perf_counter()
    plan = (sj.query().across("jobs", "racks")
            .values("applications", "heat", "power").plan())
    assert time.perf_counter() - t0 < 5.0
    loads = {op for op in plan.operations() if op.startswith("load")}
    assert loads == {"load:job_queue_log", "load:node_layout",
                     "load:rack_temperatures", "load:rack_power"}
    rows = sj.execute(plan).collect()
    assert rows
    assert all("heat" in r and "power" in r and "job_name" in r
               for r in rows)
